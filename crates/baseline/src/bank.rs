//! The brute-force matcher: a bank of plain sequence automata executed in
//! lock-step (paper §5.2).
//!
//! For each variable sequence (one permutation per event set pattern) the
//! baseline builds an SES pattern of singleton event-set patterns
//! `⟨{v1}, …, {vk}⟩` carrying the original conditions and window, compiles
//! it through the same `ses-core` machinery, and then iterates the input
//! **once**, offering each event to every automaton — exactly the paper's
//! "executes all automata in parallel, i.e., iterates for each input event
//! over these automata". The measured `|Ω|` is the sum over the bank.
//!
//! # Semantic caveats (inherent to the brute-force approach)
//!
//! * **Group variables**: in a sequence automaton a group variable only
//!   loops at its own position, so its events must be *consecutive*
//!   (no other matching variable in between). SES patterns allow group
//!   bindings to interleave with other variables of the same set. The
//!   paper notes the sequence count "considerably increases" with group
//!   variables; [`BruteForce::is_exact`] is `false` for such patterns.
//! * **Timestamp ties**: the chain concatenation inserts strict
//!   `v'.T < v.T` constraints between *every* consecutive pair, so two
//!   same-set events with equal timestamps match the SES automaton but
//!   not the brute-force bank. Exactness additionally requires distinct
//!   timestamps (demonstrated in `tests/baseline_vs_ses.rs`).

use ses_core::{CoreError, ExecOptions, Execution, Match, NoProbe, Probe, RawMatch};
use ses_event::{Relation, Schema};
use ses_pattern::{Pattern, Rhs, VarId};

use crate::permute::{sequence_count, sequences};

/// The brute-force baseline matcher.
#[derive(Debug)]
pub struct BruteForce {
    pattern: Pattern,
    compiled: ses_pattern::CompiledPattern,
    automata: Vec<ses_core::Automaton>,
    /// `var_maps[j][i]` is the original-pattern [`VarId`] of chain
    /// automaton `j`'s variable `i` (chains re-number variables in
    /// sequence order).
    var_maps: Vec<Vec<VarId>>,
    options: ses_core::MatcherOptions,
}

impl BruteForce {
    /// Compiles one sequence automaton per permutation with default
    /// options.
    pub fn compile(pattern: &Pattern, schema: &Schema) -> Result<BruteForce, CoreError> {
        BruteForce::with_options(pattern, schema, ses_core::MatcherOptions::default())
    }

    /// Compiles the bank with explicit options.
    pub fn with_options(
        pattern: &Pattern,
        schema: &Schema,
        options: ses_core::MatcherOptions,
    ) -> Result<BruteForce, CoreError> {
        let mut automata = Vec::new();
        let mut var_maps = Vec::new();
        for seq in sequences(pattern) {
            let chain = chain_pattern(pattern, &seq)?;
            let compiled = chain.compile(schema)?;
            automata.push(ses_core::Automaton::build_with_limit(
                compiled,
                options.max_states,
            )?);
            var_maps.push(seq);
        }
        Ok(BruteForce {
            pattern: pattern.clone(),
            compiled: pattern.compile(schema)?,
            automata,
            var_maps,
            options,
        })
    }

    /// Number of automata in the bank (`|V1|!·…·|Vm|!`).
    pub fn num_automata(&self) -> usize {
        self.automata.len()
    }

    /// The compiled sequence automata.
    pub fn automata(&self) -> &[ses_core::Automaton] {
        &self.automata
    }

    /// `true` iff the bank is semantically equivalent to the SES automaton
    /// for relations with pairwise distinct timestamps (i.e. the pattern
    /// has no group variables).
    pub fn is_exact(&self) -> bool {
        self.pattern.group_vars().next().is_none()
    }

    /// Predicted bank size without compiling: `|V1|!·…·|Vm|!`.
    pub fn predicted_bank_size(pattern: &Pattern) -> u64 {
        sequence_count(pattern)
    }

    /// Finds all matching substitutions (union over the bank, deduplicated
    /// and passed through the configured match semantics).
    pub fn find(&self, relation: &Relation) -> Vec<Match> {
        self.find_with_probe(relation, &mut NoProbe)
    }

    /// Finds all matching substitutions, reporting engine events to
    /// `probe`. The bank executes in lock-step: `probe.omega` receives the
    /// **summed** `|Ω|` across all automata after each event, matching the
    /// paper's experiment-1 measurement.
    pub fn find_with_probe<P: Probe>(&self, relation: &Relation, probe: &mut P) -> Vec<Match> {
        let exec_opts = ExecOptions {
            filter: self.options.filter,
            selection: self.options.selection,
            flush_at_end: self.options.flush_at_end,
            type_precheck: self.options.type_precheck,
            max_instances: self.options.max_instances,
            spawn_start: true,
            columnar: self.options.columnar,
        };
        let mut executions: Vec<Execution<'_>> = self
            .automata
            .iter()
            .map(|a| Execution::new(a, relation, &exec_opts))
            .collect();

        let mut suppressed = SuppressOmega { inner: probe };
        for _ in 0..relation.len() {
            for exec in &mut executions {
                exec.step(&mut suppressed);
            }
            let total: usize = executions.iter().map(Execution::omega_len).sum();
            suppressed.inner.omega(total);
        }

        // Translate each chain automaton's local variable ids back to the
        // original pattern's ids before merging the banks' results.
        let mut raw: Vec<RawMatch> = Vec::new();
        for (exec, var_map) in executions.into_iter().zip(&self.var_maps) {
            for m in exec.finish(&mut suppressed) {
                let mut bindings: Vec<(VarId, ses_event::EventId)> = m
                    .bindings
                    .into_iter()
                    .map(|(v, e)| (var_map[v.index()], e))
                    .collect();
                bindings.sort_unstable_by_key(|&(var, ev)| (ev, var));
                raw.push(RawMatch { bindings });
            }
        }
        // Negations (gap constraints) are enforced on the remapped union
        // against the *original* pattern — the chains need no knowledge
        // of them.
        let raw = ses_core::filter_negations(raw, relation, &self.compiled);
        ses_core::select(raw, relation, &self.compiled, self.options.semantics)
    }
}

/// Builds the chain pattern `⟨{v1}, …, {vk}⟩` for one variable sequence,
/// preserving quantifiers, conditions, and the window.
fn chain_pattern(
    pattern: &Pattern,
    sequence: &[ses_pattern::VarId],
) -> Result<Pattern, ses_pattern::PatternError> {
    let mut b = Pattern::builder();
    for &v in sequence {
        let var = pattern.var(v);
        let name = var.name().to_string();
        let group = var.is_group();
        b = b.set(move |s| {
            if group {
                s.plus(name.clone())
            } else {
                s.var(name.clone())
            }
        });
    }
    for c in pattern.conditions() {
        let lhs_name = pattern.var(c.lhs.var).name().to_string();
        b = match &c.rhs {
            Rhs::Const(v) => b.cond_const(lhs_name, c.lhs.attr.to_string(), c.op, v.clone()),
            Rhs::Attr(r) => b.cond_vars(
                lhs_name,
                c.lhs.attr.to_string(),
                c.op,
                pattern.var(r.var).name().to_string(),
                r.attr.to_string(),
            ),
        };
    }
    b.within(pattern.within()).build()
}

/// Forwards every probe callback except `omega`, which the bank reports
/// itself as the sum over all executions.
struct SuppressOmega<'p, P: Probe> {
    inner: &'p mut P,
}

impl<P: Probe> Probe for SuppressOmega<'_, P> {
    fn event_read(&mut self) {
        // The bank reads each event once per automaton; forwarding would
        // overcount. Reads are reported by the first automaton only —
        // callers interested in event counts should use relation length.
    }
    fn event_filtered(&mut self) {}
    fn instance_spawned(&mut self) {
        self.inner.instance_spawned();
    }
    fn instance_branched(&mut self) {
        self.inner.instance_branched();
    }
    fn instance_expired(&mut self) {
        self.inner.instance_expired();
    }
    fn transition_evaluated(&mut self) {
        self.inner.transition_evaluated();
    }
    fn transition_taken(&mut self) {
        self.inner.transition_taken();
    }
    fn match_emitted(&mut self) {
        self.inner.match_emitted();
    }
    fn omega(&mut self, _n: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::Matcher;
    use ses_event::{AttrType, CmpOp, Duration, Timestamp, Value};

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn rel(rows: &[(i64, i64, &str)]) -> Relation {
        let mut r = Relation::new(schema());
        for (ts, id, l) in rows {
            r.push_values(Timestamp::new(*ts), [Value::from(*id), Value::from(*l)])
                .unwrap();
        }
        r
    }

    fn two_set_pattern() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("c").var("p").var("d"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("d", "L", CmpOp::Eq, "D")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(100))
            .build()
            .unwrap()
    }

    #[test]
    fn bank_size_matches_figure_10() {
        let bf = BruteForce::compile(&two_set_pattern(), &schema()).unwrap();
        assert_eq!(bf.num_automata(), 6);
        assert!(bf.is_exact());
        // Each chain automaton has 5 states (∅ + 4 variables) and 4
        // transitions.
        for a in bf.automata() {
            assert_eq!(a.num_states(), 5);
            assert_eq!(a.num_transitions(), 4);
        }
    }

    #[test]
    fn bank_finds_any_permutation_order() {
        let bf = BruteForce::compile(&two_set_pattern(), &schema()).unwrap();
        for order in [["C", "P", "D"], ["P", "D", "C"], ["D", "C", "P"]] {
            let r = rel(&[
                (0, 1, order[0]),
                (1, 1, order[1]),
                (2, 1, order[2]),
                (3, 1, "B"),
            ]);
            let ms = bf.find(&r);
            assert_eq!(ms.len(), 1, "order {order:?}");
            assert_eq!(ms[0].bindings().len(), 4);
        }
    }

    #[test]
    fn bank_agrees_with_ses_matcher() {
        let p = two_set_pattern();
        let bf = BruteForce::compile(&p, &schema()).unwrap();
        let ses = Matcher::compile(&p, &schema()).unwrap();
        let r = rel(&[
            (0, 1, "P"),
            (1, 1, "C"),
            (2, 1, "X"),
            (3, 1, "D"),
            (4, 1, "B"),
            (5, 1, "C"),
            (6, 1, "D"),
            (7, 1, "P"),
            (9, 1, "B"),
        ]);
        let mut a = bf.find(&r);
        let mut b = ses.find(&r);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn group_variable_bank_is_inexact() {
        let p = Pattern::builder()
            .set(|s| s.var("c").plus("p"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let bf = BruteForce::compile(&p, &schema()).unwrap();
        assert!(!bf.is_exact());
        // Interleaved P C P: SES matches {p/e1, c/e2, p/e3, b/e4}; the
        // bank's two chains (c→p+→b, p+→c→b) cannot interleave and find
        // only sub-patterns.
        let r = rel(&[(0, 1, "P"), (1, 1, "C"), (2, 1, "P"), (3, 1, "B")]);
        let ses = Matcher::compile(&p, &schema()).unwrap();
        let full = ses
            .find(&r)
            .iter()
            .map(|m| m.bindings().len())
            .max()
            .unwrap();
        assert_eq!(full, 4); // c + two p's + b
        let bank_best = bf
            .find(&r)
            .iter()
            .map(|m| m.bindings().len())
            .max()
            .unwrap();
        assert!(bank_best < 4, "chains cannot interleave group bindings");
    }

    #[test]
    fn predicted_bank_size_saturates() {
        let mut b = Pattern::builder();
        b = b.set(|s| {
            for i in 0..25 {
                s.var(format!("v{i}"));
            }
            s
        });
        let p = b.build().unwrap();
        assert_eq!(BruteForce::predicted_bank_size(&p), u64::MAX);
    }
}
