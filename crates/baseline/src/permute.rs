//! Permutation and sequence enumeration for the brute-force baseline.
//!
//! Paper §5.2: "A sequence of all event variables in P is a concatenation
//! of one permutation of each event set pattern Vi. The number of all
//! possible sequences of event variables is |V1|!·|V2|!···|Vn|!."

use ses_pattern::{Pattern, VarId};

/// All permutations of `items`, in lexicographic order of positions
/// (deterministic, so the generated automaton bank is reproducible).
pub fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..items.len()).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i].clone()).collect());
        if !next_permutation(&mut idx) {
            break;
        }
    }
    out
}

/// Standard in-place next-permutation; returns `false` after the last one.
fn next_permutation(idx: &mut [usize]) -> bool {
    if idx.len() < 2 {
        return false;
    }
    let mut i = idx.len() - 1;
    while i > 0 && idx[i - 1] >= idx[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = idx.len() - 1;
    while idx[j] <= idx[i - 1] {
        j -= 1;
    }
    idx.swap(i - 1, j);
    idx[i..].reverse();
    true
}

/// The variable sequences of the brute-force baseline: the cartesian
/// product of one permutation per event set pattern, concatenated in set
/// order.
pub fn sequences(pattern: &Pattern) -> Vec<Vec<VarId>> {
    let per_set: Vec<Vec<Vec<VarId>>> =
        pattern.sets().iter().map(|set| permutations(set)).collect();
    let mut out: Vec<Vec<VarId>> = vec![Vec::new()];
    for perms in &per_set {
        let mut next = Vec::with_capacity(out.len() * perms.len());
        for prefix in &out {
            for perm in perms {
                let mut seq = prefix.clone();
                seq.extend_from_slice(perm);
                next.push(seq);
            }
        }
        out = next;
    }
    out
}

/// `|V1|!·|V2|!···|Vm|!`, saturating.
pub fn sequence_count(pattern: &Pattern) -> u64 {
    pattern
        .sets()
        .iter()
        .map(|s| factorial(s.len() as u64))
        .try_fold(1u64, |a, b| a.checked_mul(b))
        .unwrap_or(u64::MAX)
}

fn factorial(n: u64) -> u64 {
    (1..=n)
        .try_fold(1u64, |a, b| a.checked_mul(b))
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_pattern::Pattern;

    #[test]
    fn permutation_counts() {
        assert_eq!(permutations(&[1]).len(), 1);
        assert_eq!(permutations(&[1, 2]).len(), 2);
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations(&[1, 2, 3, 4]).len(), 24);
        assert_eq!(permutations::<i32>(&[]).len(), 1); // the empty sequence
    }

    #[test]
    fn permutations_are_distinct_and_complete() {
        let mut ps = permutations(&[1, 2, 3]);
        ps.sort();
        ps.dedup();
        assert_eq!(ps.len(), 6);
        for p in &ps {
            let mut q = p.clone();
            q.sort();
            assert_eq!(q, vec![1, 2, 3]);
        }
    }

    #[test]
    fn sequences_match_figure_10() {
        // Paper Example 11: ⟨{c, p, d}, {b}⟩ → 3!·1! = 6 sequences, each
        // ending in b.
        let p = Pattern::builder()
            .set(|s| s.var("c").var("p").var("d"))
            .set(|s| s.var("b"))
            .build()
            .unwrap();
        let seqs = sequences(&p);
        assert_eq!(seqs.len(), 6);
        assert_eq!(sequence_count(&p), 6);
        let b = p.var_id("b").unwrap();
        for s in &seqs {
            assert_eq!(s.len(), 4);
            assert_eq!(*s.last().unwrap(), b);
        }
        // All distinct.
        let mut sorted = seqs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn sequence_count_multiplies_factorials() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b").var("c"))
            .set(|s| s.var("d").var("e"))
            .build()
            .unwrap();
        assert_eq!(sequence_count(&p), 12);
        assert_eq!(sequences(&p).len(), 12);
    }

    #[test]
    fn experiment1_counts() {
        // |V1| = 2…6 with V2 = {b}: 2, 6, 24, 120, 720 automata.
        for (n, expect) in [(2u16, 2u64), (3, 6), (4, 24), (5, 120), (6, 720)] {
            let mut b = Pattern::builder();
            b = b.set(|s| {
                for i in 0..n {
                    s.var(format!("v{i}"));
                }
                s
            });
            b = b.set(|s| s.var("b"));
            let p = b.build().unwrap();
            assert_eq!(sequence_count(&p), expect);
        }
    }
}
