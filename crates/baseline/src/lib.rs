//! Brute-force baseline for sequenced event set pattern matching
//! (paper §5.2).
//!
//! The baseline answers the question the paper's experiment 1 poses: what
//! does it cost to express an SES pattern with *existing* sequence-only
//! automata? It enumerates every variable sequence (one permutation per
//! event set pattern), compiles each into a plain chain automaton through
//! the same `ses-core` machinery (no divergent implementation tricks), and
//! executes the whole bank in lock-step over the input.
//!
//! ```
//! use ses_event::{AttrType, CmpOp, Duration, Schema};
//! use ses_pattern::Pattern;
//! use ses_baseline::BruteForce;
//!
//! let schema = Schema::builder().attr("L", AttrType::Str).build().unwrap();
//! let pattern = Pattern::builder()
//!     .set(|s| s.var("c").var("p").var("d"))
//!     .set(|s| s.var("b"))
//!     .cond_const("c", "L", CmpOp::Eq, "C")
//!     .cond_const("p", "L", CmpOp::Eq, "P")
//!     .cond_const("d", "L", CmpOp::Eq, "D")
//!     .cond_const("b", "L", CmpOp::Eq, "B")
//!     .within(Duration::hours(264))
//!     .build()
//!     .unwrap();
//!
//! let bank = BruteForce::compile(&pattern, &schema).unwrap();
//! assert_eq!(bank.num_automata(), 6); // 3!·1! — Figure 10(b)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod permute;

pub use bank::BruteForce;
pub use permute::{permutations, sequence_count, sequences};
