//! Push-based, bounded-memory streaming matching.
//!
//! The paper evaluates finite relations, but event pattern matching is a
//! streaming technique at heart. [`StreamMatcher`] owns a relation and
//! exposes `push`: feed events one at a time (in timestamp order) and
//! receive **finalized matches** — matches that are already correct under
//! the configured [`crate::MatchSemantics`] and that no future event can
//! add, remove, or change. [`StreamMatcher::finish`] flushes whatever is
//! still undecided; concatenating every `push` result with the `finish`
//! result yields exactly the batch [`crate::Matcher::find`] answer
//! (each match exactly once).
//!
//! # Watermarks and eager emission
//!
//! The latest pushed timestamp is the stream's *watermark* `w`. Because
//! timestamps are non-decreasing and every match spans at most the
//! window `τ`, a candidate whose first binding is at `minT` is complete
//! once `w − minT > τ`: no run starting at `minT` can still grow. The
//! Definition-2 filters (conditions 4–5) and maximality are closed
//! within *first-binding groups* adjudicated in ascending order (see
//! [`crate::semantics`]), so each group is emitted the moment the
//! watermark passes `minT + τ` — not deferred to end of stream.
//!
//! # Bounded memory
//!
//! Three retained structures are pruned against the watermark:
//!
//! * **Events** — once no live run can bind or compare against an event
//!   (its timestamp precedes `w − τ`), it is evicted from the relation.
//!   Eviction keeps event ids stable ([`Relation::evict_before`]) and is
//!   on by default; disable it with [`StreamMatcher::with_eviction`] to
//!   trade memory for a fully replayable relation.
//! * **Instances** — automaton runs whose window can no longer close are
//!   swept on *every* push (even filtered ones), emitting accepting
//!   buffers into the pending candidate set.
//! * **Killer matches** — Definition-2 survivors retained for maximality
//!   checks are dropped once `minT < w − 2τ` (no later group can reach
//!   back that far).
//!
//! With eviction on, steady-state memory is proportional to the number
//! of events inside one window `τ` (times a small constant for the
//! compaction hysteresis) — independent of stream length.

use std::collections::BTreeMap;

use ses_event::{Event, EventError, Relation, Schema, Timestamp, Value};
use ses_pattern::Pattern;

use crate::columnar::{ColumnarBatch, ColumnarMode, ColumnarPlan};
use crate::engine::{process_event, sweep_expired, ExecOptions, Instance, RawMatch};
use crate::filter::EventFilter;
use crate::matcher::MatcherOptions;
use crate::matches::Match;
use crate::negation::passes_negations;
use crate::probe::{NoProbe, Probe};
use crate::semantics::{Adjudicator, GroupKey};
use crate::snapshot::{matcher_fingerprint, InstanceSnapshot, StreamSnapshot};
use crate::state::StateId;
use crate::{Automaton, Buffer, CoreError};
use ses_event::EventId;

/// An incremental, push-based matcher with watermark-driven eviction.
#[derive(Debug)]
pub struct StreamMatcher {
    automaton: Automaton,
    options: MatcherOptions,
    filter: EventFilter,
    relation: Relation,
    omega: Vec<Instance>,
    scratch: Vec<Instance>,
    /// Per-push engine output buffer, drained into `pending`.
    results: Vec<RawMatch>,
    /// Emitted accepting runs awaiting adjudication, grouped by first
    /// binding. `BTreeMap` gives the ascending group order adjudication
    /// requires.
    pending: BTreeMap<GroupKey, Vec<RawMatch>>,
    adjudicator: Adjudicator,
    watermark: Option<Timestamp>,
    evict: bool,
    emitted: usize,
    /// `false` for a shared-prefix *member* matcher: no fresh start
    /// instances are spawned; runs enter via
    /// [`StreamMatcher::inject_instances_at`] instead.
    spawn_start: bool,
    /// Columnar admission plan for [`StreamMatcher::push_batch`];
    /// `None` when the mode is `Off`.
    columnar: Option<ColumnarPlan>,
    /// Pooled micro-batch admission buffers, reused across batches.
    columnar_batch: ColumnarBatch,
    /// Conservative lower bound on the earliest first-binding timestamp
    /// across `omega` (`None` when no instance has bound an event).
    /// While the watermark is within `τ` of it, no window can have
    /// closed, so the per-push `O(|Ω|)` expiry sweep is provably a
    /// no-op and is skipped — see [`StreamMatcher::sweep_if_due`].
    expiry_floor: Option<Timestamp>,
}

impl StreamMatcher {
    /// Compiles `pattern` against `schema` with default options.
    pub fn compile(pattern: &Pattern, schema: &Schema) -> Result<StreamMatcher, CoreError> {
        StreamMatcher::with_options(pattern, schema, MatcherOptions::default())
    }

    /// Compiles with explicit options.
    pub fn with_options(
        pattern: &Pattern,
        schema: &Schema,
        options: MatcherOptions,
    ) -> Result<StreamMatcher, CoreError> {
        let compiled = crate::matcher::compile_pattern(pattern, schema, &options)?;
        let automaton = Automaton::build_with_limit(compiled, options.max_states)?;
        Ok(StreamMatcher::from_automaton(automaton, options))
    }

    /// Builds a stream matcher around an already constructed automaton —
    /// the sharded matcher clones one automaton per shard through here.
    pub(crate) fn from_automaton(automaton: Automaton, options: MatcherOptions) -> StreamMatcher {
        let filter = EventFilter::new(automaton.pattern(), options.filter);
        let adjudicator = Adjudicator::new(options.semantics, options.adjudication);
        let columnar =
            (options.columnar != ColumnarMode::Off).then(|| ColumnarPlan::new(automaton.pattern()));
        StreamMatcher {
            relation: Relation::new(automaton.pattern().schema().clone()),
            automaton,
            options,
            filter,
            columnar,
            columnar_batch: ColumnarBatch::default(),
            omega: Vec::new(),
            scratch: Vec::new(),
            results: Vec::new(),
            pending: BTreeMap::new(),
            adjudicator,
            watermark: None,
            evict: true,
            emitted: 0,
            spawn_start: true,
            expiry_floor: None,
        }
    }

    /// Runs the expiry sweep only when an instance can actually have
    /// expired. Skipping is exact, never approximate: `expiry_floor`
    /// lower-bounds every live window's start, so within `τ` of it the
    /// sweep would provably drop and emit nothing — emission timing is
    /// bit-identical to sweeping on every push.
    fn sweep_if_due<P: Probe>(&mut self, watermark: Timestamp, probe: &mut P) {
        let due = match self.expiry_floor {
            Some(floor) => watermark.distance(floor) > self.automaton.tau(),
            None => false,
        };
        if due {
            self.expiry_floor = sweep_expired(
                &self.automaton,
                &mut self.omega,
                watermark,
                &mut self.results,
                probe,
            );
        }
    }

    /// Enables or disables watermark eviction of old events (on by
    /// default). With eviction off the full relation is retained and
    /// remains accessible via [`StreamMatcher::relation`]; emitted
    /// matches are identical either way.
    pub fn with_eviction(mut self, evict: bool) -> StreamMatcher {
        self.evict = evict;
        self
    }

    /// Pushes one event (timestamps must be non-decreasing) and returns
    /// the matches finalized at this push — already filtered under the
    /// configured [`crate::MatchSemantics`], never revised later.
    pub fn push(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<Vec<Match>, EventError> {
        self.push_with_probe(ts, values, &mut NoProbe)
    }

    /// [`StreamMatcher::push`] with an instrumentation probe.
    pub fn push_with_probe<P: Probe>(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
        probe: &mut P,
    ) -> Result<Vec<Match>, EventError> {
        // Check against the *watermark*, not just the relation's last
        // event: `advance_watermark` can move the watermark past the
        // last pushed timestamp, and accepting an older event afterwards
        // would be unsound (its window was already adjudicated).
        if let Some(w) = self.watermark {
            if ts < w {
                return Err(EventError::OutOfOrder {
                    previous: w.ticks(),
                    got: ts.ticks(),
                });
            }
        }
        let id = self.relation.push_values(ts, values)?;
        Ok(self.push_stored(id, ts, None, probe))
    }

    /// The shared tail of every push flavor: runs the engine over an
    /// event already appended to the relation. `admission` carries the
    /// precomputed columnar verdict when the event arrived through
    /// [`StreamMatcher::push_batch`]; `None` evaluates scalar.
    fn push_stored<P: Probe>(
        &mut self,
        id: EventId,
        ts: Timestamp,
        admission: Option<crate::columnar::EventAdmission>,
        probe: &mut P,
    ) -> Vec<Match> {
        if self.watermark.is_none() {
            probe.filter_mode(self.filter.requested_mode(), self.filter.effective_mode());
        }
        self.watermark = Some(ts);
        // A provably unsatisfiable Θ never matches; retain the watermark
        // bookkeeping but skip the engine.
        if !self.automaton.pattern().is_satisfiable() {
            if self.evict {
                let evicted = self.relation.evict_before(ts - self.automaton.tau());
                if evicted > 0 {
                    probe.events_evicted(evicted);
                }
            }
            probe.retained_events(self.relation.len());
            return Vec::new();
        }
        // Retire runs whose window can no longer close *before* the new
        // event is processed — on every push, including filtered ones
        // (sweeping early is observationally identical; see
        // `sweep_expired`). Their accepting buffers join `pending`.
        self.sweep_if_due(ts, probe);
        process_event(
            &self.automaton,
            &self.relation,
            &self.filter,
            &self.exec_options(),
            &mut self.omega,
            &mut self.scratch,
            id,
            admission,
            &mut self.results,
            probe,
        );
        // Any binding made at this push starts its window at `ts`; the
        // floor only ever needs to reach down to it. (A stale, too-low
        // floor is harmless: the next sweep recomputes it exactly.)
        self.expiry_floor = Some(self.expiry_floor.map_or(ts, |f| f.min(ts)));
        self.queue_results();
        let out = self.drain_decidable(ts);
        let tau = self.automaton.tau();
        // Killers older than 2τ can no longer contain any future group.
        self.adjudicator.prune_survivors(ts - tau - tau);
        if self.evict {
            let evicted = self.relation.evict_before(ts - tau);
            if evicted > 0 {
                probe.events_evicted(evicted);
            }
        }
        probe.retained_events(self.relation.len());
        self.emitted += out.len();
        out
    }

    /// Pushes an event the caller has *proved* cannot bind any
    /// variable of this pattern (e.g. an event the predicate index did
    /// not admit): the event is stored — keeping local event ids
    /// aligned with lockstep peers in a shared-prefix group — and time
    /// advances exactly as a push would, but the transition engine
    /// never runs. For such events this is observationally identical
    /// to [`StreamMatcher::push`] at watermark-heartbeat cost; for any
    /// other event it is unsound.
    pub(crate) fn skip_event_with_probe<P: Probe>(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
        probe: &mut P,
    ) -> Result<Vec<Match>, EventError> {
        if let Some(w) = self.watermark {
            if ts < w {
                return Err(EventError::OutOfOrder {
                    previous: w.ticks(),
                    got: ts.ticks(),
                });
            }
        }
        self.relation.push_values(ts, values)?;
        if self.watermark.is_none() {
            probe.filter_mode(self.filter.requested_mode(), self.filter.effective_mode());
        }
        self.watermark = Some(ts);
        let tau = self.automaton.tau();
        let out = if self.automaton.pattern().is_satisfiable() {
            self.sweep_if_due(ts, probe);
            self.queue_results();
            let out = self.drain_decidable(ts);
            self.adjudicator.prune_survivors(ts - tau - tau);
            out
        } else {
            Vec::new()
        };
        if self.evict {
            let evicted = self.relation.evict_before(ts - tau);
            if evicted > 0 {
                probe.events_evicted(evicted);
            }
        }
        probe.retained_events(self.relation.len());
        self.emitted += out.len();
        Ok(out)
    }

    /// Pushes a pre-built event. The event is *moved* into the
    /// relation (its payload is a shared `Arc` slice) — no values are
    /// copied.
    pub fn push_event(&mut self, event: Event) -> Result<Vec<Match>, EventError> {
        self.push_event_with_probe(event, &mut NoProbe)
    }

    /// [`StreamMatcher::push_event`] with an instrumentation probe.
    pub fn push_event_with_probe<P: Probe>(
        &mut self,
        event: Event,
        probe: &mut P,
    ) -> Result<Vec<Match>, EventError> {
        if let Some(w) = self.watermark {
            if event.ts() < w {
                return Err(EventError::OutOfOrder {
                    previous: w.ticks(),
                    got: event.ts().ticks(),
                });
            }
        }
        self.relation.schema().check_row(event.values())?;
        let ts = event.ts();
        let id = self.relation.push_event(event)?;
        Ok(self.push_stored(id, ts, None, probe))
    }

    /// Pushes a micro-batch of events and returns the concatenation of
    /// the per-event results — match-for-match and in the same order as
    /// pushing each event individually, so batch boundaries never change
    /// emission timing (see `docs/columnar.md`).
    ///
    /// When the matcher's [`ColumnarMode`] activates for the batch
    /// length, constant conditions are pre-evaluated once over the whole
    /// batch into bitmask vectors (single-event and sub-threshold
    /// batches fall back to the scalar per-push path).
    ///
    /// Unlike sequential pushes, an invalid batch (out-of-order
    /// timestamp or schema violation anywhere in it) is rejected as a
    /// whole: the error is returned and **no** event is consumed.
    pub fn push_batch(&mut self, events: Vec<Event>) -> Result<Vec<Match>, EventError> {
        self.push_batch_with_probe(events, &mut NoProbe)
    }

    /// [`StreamMatcher::push_batch`] with an instrumentation probe.
    pub fn push_batch_with_probe<P: Probe>(
        &mut self,
        events: Vec<Event>,
        probe: &mut P,
    ) -> Result<Vec<Match>, EventError> {
        // Validate the whole batch before consuming anything.
        let mut w = self.watermark;
        for event in &events {
            if let Some(w) = w {
                if event.ts() < w {
                    return Err(EventError::OutOfOrder {
                        previous: w.ticks(),
                        got: event.ts().ticks(),
                    });
                }
            }
            self.relation.schema().check_row(event.values())?;
            w = Some(event.ts());
        }
        // Columnar admission over the batch, when the mode activates.
        // Evaluating before the events enter the relation is safe: lanes
        // read only the events' own attributes.
        let mut columnar = false;
        if let Some(plan) = &self.columnar {
            if self.options.columnar.active(plan.num_lanes(), events.len())
                && self.automaton.pattern().is_satisfiable()
            {
                plan.evaluate(
                    events.len(),
                    |i| &events[i],
                    self.filter.effective_mode(),
                    &mut self.columnar_batch,
                );
                columnar = true;
            }
        }
        let mut out = Vec::new();
        for (i, event) in events.into_iter().enumerate() {
            let ts = event.ts();
            let admission = columnar.then(|| self.columnar_batch.admission(i));
            let id = self
                .relation
                .push_event(event)
                .expect("batch order validated upfront");
            out.extend(self.push_stored(id, ts, admission, probe));
        }
        Ok(out)
    }

    /// Advances the watermark to `ts` *without* pushing an event and
    /// returns the matches that finalizes: expired runs are swept,
    /// decidable pending groups adjudicated, and old events evicted,
    /// exactly as a push at `ts` would — the heartbeat a sharded stream
    /// sends to idle shards so their matches emit on time. No-op (empty
    /// result) when `ts` does not advance the watermark or the stream
    /// has seen no events yet. Subsequent pushes before `ts` are
    /// rejected as out of order.
    pub fn advance_watermark(&mut self, ts: Timestamp) -> Vec<Match> {
        self.advance_watermark_with_probe(ts, &mut NoProbe)
    }

    /// [`StreamMatcher::advance_watermark`] with an instrumentation
    /// probe.
    pub fn advance_watermark_with_probe<P: Probe>(
        &mut self,
        ts: Timestamp,
        probe: &mut P,
    ) -> Vec<Match> {
        // A stream with no events has nothing pending; staying at
        // watermark `None` also keeps any first push acceptable.
        let Some(w) = self.watermark else {
            return Vec::new();
        };
        if ts <= w {
            return Vec::new();
        }
        self.watermark = Some(ts);
        let tau = self.automaton.tau();
        if !self.automaton.pattern().is_satisfiable() {
            if self.evict {
                let evicted = self.relation.evict_before(ts - tau);
                if evicted > 0 {
                    probe.events_evicted(evicted);
                }
            }
            probe.retained_events(self.relation.len());
            return Vec::new();
        }
        self.sweep_if_due(ts, probe);
        self.queue_results();
        let out = self.drain_decidable(ts);
        self.adjudicator.prune_survivors(ts - tau - tau);
        if self.evict {
            let evicted = self.relation.evict_before(ts - tau);
            if evicted > 0 {
                probe.events_evicted(evicted);
            }
        }
        probe.retained_events(self.relation.len());
        self.emitted += out.len();
        out
    }

    /// The retained relation. With eviction on (the default) this holds
    /// only events young enough to still matter — see
    /// [`Relation::evicted`] for how many were dropped.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Current number of active instances `|Ω|`.
    pub fn active_instances(&self) -> usize {
        self.omega.len()
    }

    /// Finalized matches returned by `push` calls so far (excludes
    /// whatever [`StreamMatcher::finish`] will still return).
    pub fn emitted_so_far(&self) -> usize {
        self.emitted
    }

    /// The latest pushed timestamp, if any.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Number of events currently retained in the relation.
    pub fn retained_events(&self) -> usize {
        self.relation.len()
    }

    /// Total number of events evicted so far.
    pub fn evicted_events(&self) -> usize {
        self.relation.evicted()
    }

    /// Accepting runs buffered for adjudication (their windows may still
    /// admit competing runs).
    pub fn pending_candidates(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Definition-2 survivors retained as maximality killers for groups
    /// still to come (pruned against the watermark like everything else).
    pub fn retained_killers(&self) -> usize {
        self.adjudicator.survivor_count()
    }

    /// Captures the matcher's complete dynamic state — the retained
    /// window, Ω, pending adjudication groups, killer survivors,
    /// watermark, and emitted-match count — as a [`StreamSnapshot`].
    ///
    /// The snapshot plus the pattern/schema/options used to build this
    /// matcher fully determine future behavior:
    /// [`StreamMatcher::restore`] yields a matcher whose subsequent
    /// emissions are identical to this one's.
    pub fn snapshot(&mut self) -> StreamSnapshot {
        // `results` is always drained before `push` returns, but queue
        // defensively so the invariant is local.
        self.queue_results();
        let mut instances = Vec::with_capacity(self.omega.len());
        for inst in &self.omega {
            let mut bindings: Vec<_> = inst.buffer.iter().map(|b| (b.var, b.event, b.ts)).collect();
            bindings.reverse(); // newest-first iteration → oldest-first storage
            instances.push(InstanceSnapshot {
                state: inst.state.0,
                bindings,
            });
        }
        StreamSnapshot {
            fingerprint: self.fingerprint(),
            watermark: self.watermark,
            evict: self.evict,
            evicted: self.relation.evicted() as u64,
            last_ts: self.relation.last_ts(),
            events: self.relation.events().to_vec(),
            instances,
            pending: self
                .pending
                .values()
                .flatten()
                .map(|raw| raw.bindings.clone())
                .collect(),
            survivors: self
                .adjudicator
                .survivors()
                .iter()
                .map(|(ts, m)| (*ts, m.bindings().to_vec()))
                .collect(),
            emitted: self.emitted as u64,
        }
    }

    /// Rebuilds a matcher from the pattern/schema/options it was
    /// compiled with and a [`StreamSnapshot`] taken from it. Fails with
    /// [`CoreError::SnapshotMismatch`] when the snapshot was taken under
    /// a different pattern, schema, or semantics, or is internally
    /// inconsistent.
    pub fn restore(
        pattern: &Pattern,
        schema: &Schema,
        options: MatcherOptions,
        snapshot: &StreamSnapshot,
    ) -> Result<StreamMatcher, CoreError> {
        let mut sm = StreamMatcher::with_options(pattern, schema, options)?;
        sm.apply_snapshot(snapshot)?;
        Ok(sm)
    }

    /// The matcher's pattern/schema/options fingerprint (see
    /// [`crate::snapshot`]), marked with the matcher's sharing role:
    /// a shared-prefix member's Ω only contains injected runs, so its
    /// snapshots must not restore into an independent matcher (or vice
    /// versa).
    pub(crate) fn fingerprint(&self) -> u64 {
        matcher_fingerprint(&self.automaton, &self.options, !self.spawn_start)
    }

    /// The compiled pattern the automaton runs — after any analyzer
    /// rewrites. The bank builds its predicate index from this, so the
    /// index always reasons about exactly the Θ the engine evaluates.
    pub(crate) fn compiled(&self) -> &ses_pattern::CompiledPattern {
        self.automaton.pattern()
    }

    /// The automaton itself — the bank clones it to build a prefix pool
    /// the same way the sharded matcher clones one per shard.
    pub(crate) fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    /// The options the matcher was compiled with.
    pub(crate) fn options(&self) -> &MatcherOptions {
        &self.options
    }

    /// Turns fresh start-instance spawning on or off (see
    /// [`crate::ExecOptions::spawn_start`]). Flipping it changes the
    /// snapshot fingerprint: a member matcher's dynamic state is only
    /// meaningful under the role it was captured in.
    pub(crate) fn set_spawn(&mut self, spawn: bool) {
        self.spawn_start = spawn;
    }

    /// Removes and returns the buffers of every active instance sitting
    /// exactly at state `q` — the pool side of shared-prefix execution.
    /// Harvesting the prefix boundary after each push keeps the pool
    /// from evolving instances past the prefix with *its* suffix
    /// transitions; the members evolve the forks instead.
    pub(crate) fn take_instances_at(&mut self, q: StateId) -> Vec<Buffer> {
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(self.omega.len());
        for inst in self.omega.drain(..) {
            if inst.state == q {
                taken.push(inst.buffer);
            } else {
                kept.push(inst);
            }
        }
        self.omega = kept;
        taken
    }

    /// Appends instances at state `q` with the given buffers — the
    /// member side of shared-prefix execution. Instance order within Ω
    /// never changes the emitted match set: accepting runs are grouped
    /// by first binding and each group is sorted before adjudication.
    pub(crate) fn inject_instances_at(
        &mut self,
        q: StateId,
        buffers: impl IntoIterator<Item = Buffer>,
    ) {
        for buffer in buffers {
            if let Some(min) = buffer.min_ts() {
                self.expiry_floor = Some(self.expiry_floor.map_or(min, |f| f.min(min)));
            }
            self.omega.push(Instance { state: q, buffer });
        }
    }

    /// Overwrites this matcher's dynamic state with `snap` — shared by
    /// [`StreamMatcher::restore`] and the sharded manifest restore.
    pub(crate) fn apply_snapshot(&mut self, snap: &StreamSnapshot) -> Result<(), CoreError> {
        let mismatch = |reason: String| CoreError::SnapshotMismatch { reason };
        let expected = self.fingerprint();
        if snap.fingerprint != expected {
            return Err(mismatch(format!(
                "fingerprint {:#018x} does not match this matcher's {expected:#018x} \
                 (different pattern, schema, or options)",
                snap.fingerprint
            )));
        }
        let schema = self.automaton.pattern().schema().clone();
        let relation = Relation::restore(
            schema,
            snap.evicted as usize,
            snap.events.clone(),
            snap.last_ts,
        )
        .map_err(|e| mismatch(format!("invalid relation window: {e}")))?;
        if let (Some(w), Some(last)) = (snap.watermark, snap.last_ts) {
            if w < last {
                return Err(mismatch(format!(
                    "watermark {w} behind the last pushed timestamp {last}"
                )));
            }
        }
        let num_states = self.automaton.num_states() as u32;
        let mut omega = Vec::with_capacity(snap.instances.len());
        for inst in &snap.instances {
            if inst.state >= num_states {
                return Err(mismatch(format!(
                    "instance state {} out of range (automaton has {num_states} states)",
                    inst.state
                )));
            }
            let mut buffer = Buffer::EMPTY;
            for &(var, event, ts) in &inst.bindings {
                buffer = buffer.push(var, event, ts);
            }
            omega.push(Instance {
                state: StateId(inst.state),
                buffer,
            });
        }
        for bindings in &snap.pending {
            if bindings.is_empty() {
                return Err(mismatch("pending match with no bindings".to_string()));
            }
        }
        self.relation = relation;
        self.omega = omega;
        self.expiry_floor = self.omega.iter().filter_map(|i| i.buffer.min_ts()).min();
        self.scratch.clear();
        self.results = snap
            .pending
            .iter()
            .map(|bindings| RawMatch {
                bindings: bindings.clone(),
            })
            .collect();
        self.pending.clear();
        self.queue_results();
        self.adjudicator = Adjudicator::new(self.options.semantics, self.options.adjudication);
        self.adjudicator.restore_survivors(
            snap.survivors
                .iter()
                .map(|(ts, b)| (*ts, Match::from_bindings(b.clone())))
                .collect(),
        );
        self.watermark = snap.watermark;
        self.evict = snap.evict;
        self.emitted = snap.emitted as usize;
        Ok(())
    }

    /// Number of already-consumed events a log replay starting at
    /// [`Relation::last_ts`] must **skip**: the retained events tied at
    /// the last pushed timestamp. Events at the last pushed timestamp
    /// are never evicted (the eviction cutoff is strictly below the
    /// watermark), so this count is always recoverable from the retained
    /// window — the cornerstone of the exactly-once replay protocol in
    /// `docs/durability.md`.
    pub fn ties_at_watermark(&self) -> usize {
        let Some(last) = self.relation.last_ts() else {
            return 0;
        };
        self.relation
            .events()
            .iter()
            .rev()
            .take_while(|e| e.ts() == last)
            .count()
    }

    /// Ends the stream: flushes accepting instances, adjudicates every
    /// remaining group, and returns the matches **not already emitted**
    /// by `push` — together with those, exactly the batch answer.
    pub fn finish(mut self) -> Vec<Match> {
        if self.options.flush_at_end {
            let accept = self.automaton.accept();
            for instance in self.omega.drain(..) {
                if instance.state == accept {
                    self.results.push(RawMatch {
                        bindings: instance.buffer.to_sorted_bindings(),
                    });
                }
            }
        }
        self.queue_results();
        let pending = std::mem::take(&mut self.pending);
        let mut out = Vec::new();
        for (_, group) in pending {
            out.extend(self.adjudicate(group));
        }
        out.sort();
        out
    }

    /// Moves freshly emitted accepting runs into their first-binding
    /// groups.
    fn queue_results(&mut self) {
        for raw in self.results.drain(..) {
            let (var, event) = raw.bindings[0];
            self.pending.entry((event, var)).or_default().push(raw);
        }
    }

    /// Adjudicates (in ascending group order) every pending group whose
    /// window the watermark has passed. Such groups can no longer gain
    /// candidates — their runs were already swept — and their verdicts
    /// are final.
    fn drain_decidable(&mut self, watermark: Timestamp) -> Vec<Match> {
        let tau = self.automaton.tau();
        let mut out = Vec::new();
        while let Some((&(event, var), _)) = self.pending.iter().next() {
            // Group keys ascend with `minT`, so the first undecidable
            // group ends the scan. The first event of a pending group is
            // never evicted: eviction runs after adjudication and only
            // reaches `watermark − τ`, which undecided groups straddle.
            let min_ts = self.relation.event(event).ts();
            if watermark.distance(min_ts) <= tau {
                break;
            }
            let group = self.pending.remove(&(event, var)).unwrap();
            out.extend(self.adjudicate(group));
        }
        out
    }

    /// Runs one complete group through negation filtering and the shared
    /// batch/stream adjudicator.
    fn adjudicate(&mut self, group: Vec<RawMatch>) -> Vec<Match> {
        let pattern = self.automaton.pattern();
        let group: Vec<Match> = group
            .into_iter()
            .filter(|r| passes_negations(r, &self.relation, pattern))
            .map(Match::from_raw)
            .collect();
        self.adjudicator
            .adjudicate_group(group, &self.relation, pattern)
    }

    fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            filter: self.options.filter,
            selection: self.options.selection,
            flush_at_end: self.options.flush_at_end,
            type_precheck: self.options.type_precheck,
            max_instances: self.options.max_instances,
            spawn_start: self.spawn_start,
            // The per-push scalar path never consults this (admission
            // is precomputed only via `push_batch`), but keep the
            // options faithful.
            columnar: self.options.columnar,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matcher;
    use ses_event::{AttrType, CmpOp, Duration};

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn ab_pattern() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(5))
            .build()
            .unwrap()
    }

    #[test]
    fn streaming_emits_on_window_expiry() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        assert!(sm
            .push(Timestamp::new(0), [Value::from(1), Value::from("B")])
            .unwrap()
            .is_empty());
        assert!(sm
            .push(Timestamp::new(1), [Value::from(1), Value::from("A")])
            .unwrap()
            .is_empty());
        assert!(sm.active_instances() > 0);
        // Even a *filtered* event (satisfies no constant condition)
        // advances the watermark: the expiry sweep runs on every push,
        // so the match is finalized here, not deferred to the next
        // pattern-relevant event.
        let emitted = sm
            .push(Timestamp::new(100), [Value::from(1), Value::from("X")])
            .unwrap();
        assert_eq!(emitted.len(), 1, "watermark finalizes eagerly");
        assert_eq!(emitted[0].to_string(), "{v1/e1, v0/e2}");
        assert_eq!(sm.emitted_so_far(), 1);
        // The decided window is also reclaimed: only the fresh event
        // remains retained.
        assert_eq!(sm.retained_events(), 1);
        assert_eq!(sm.evicted_events(), 2);
        // Nothing left for later pushes or finish — exactly-once.
        let emitted = sm
            .push(Timestamp::new(101), [Value::from(1), Value::from("B")])
            .unwrap();
        assert!(emitted.is_empty());
        assert!(sm.finish().is_empty());
    }

    #[test]
    fn finish_agrees_with_batch_matcher() {
        let rows: &[(i64, i64, &str)] = &[
            (0, 1, "A"),
            (1, 1, "B"),
            (3, 1, "X"),
            (10, 1, "B"),
            (12, 1, "A"),
            (30, 1, "A"),
        ];
        let schema = schema();
        let pattern = ab_pattern();

        let mut rel = Relation::new(schema.clone());
        let mut sm = StreamMatcher::compile(&pattern, &schema).unwrap();
        let mut streamed = Vec::new();
        for (t, id, l) in rows {
            let values = [Value::from(*id), Value::from(*l)];
            rel.push_values(Timestamp::new(*t), values.clone()).unwrap();
            streamed.extend(sm.push(Timestamp::new(*t), values).unwrap());
        }
        assert!(sm.evicted_events() > 0, "old windows were reclaimed");
        streamed.extend(sm.finish());
        let mut batch = Matcher::compile(&pattern, &schema).unwrap().find(&rel);
        streamed.sort();
        batch.sort();
        assert_eq!(streamed, batch);
        assert!(!streamed.is_empty());
    }

    #[test]
    fn boundary_event_at_watermark_minus_tau_survives() {
        // a@0 … b@5 is exactly τ apart — a valid match whose last event
        // sits exactly on the eviction cutoff when the watermark reaches
        // 10. Strict eviction (`ts < w − τ`) must keep it until decided.
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        sm.push(Timestamp::new(0), [Value::from(1), Value::from("A")])
            .unwrap();
        sm.push(Timestamp::new(5), [Value::from(1), Value::from("B")])
            .unwrap();
        let emitted = sm
            .push(Timestamp::new(10), [Value::from(1), Value::from("X")])
            .unwrap();
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].to_string(), "{v0/e1, v1/e2}");
        // Push further so the hysteresis threshold is met and the decided
        // window is physically reclaimed.
        sm.push(Timestamp::new(12), [Value::from(1), Value::from("X")])
            .unwrap();
        assert_eq!(sm.evicted_events(), 2);
        assert_eq!(sm.retained_events(), 2);
        assert!(sm.finish().is_empty());
    }

    #[test]
    fn equal_timestamps_across_the_horizon() {
        // Two complete pairs at a single timestamp each, pushed through a
        // window small enough that the first pair is decided and evicted
        // while the second is still live.
        let pattern = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(3))
            .build()
            .unwrap();
        let schema = schema();
        let rows: &[(i64, &str)] = &[(0, "A"), (0, "B"), (5, "A"), (5, "B"), (9, "X")];

        let mut rel = Relation::new(schema.clone());
        let mut sm = StreamMatcher::compile(&pattern, &schema).unwrap();
        let mut streamed = Vec::new();
        for (t, l) in rows {
            let values = [Value::from(1), Value::from(*l)];
            rel.push_values(Timestamp::new(*t), values.clone()).unwrap();
            streamed.extend(sm.push(Timestamp::new(*t), values).unwrap());
        }
        assert_eq!(streamed.len(), 2, "both equal-ts pairs finalized eagerly");
        assert!(sm.evicted_events() > 0);
        streamed.extend(sm.finish());
        streamed.sort();
        let mut batch = Matcher::compile(&pattern, &schema).unwrap().find(&rel);
        batch.sort();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn group_bindings_straddling_the_eviction_point() {
        // A `p+` group whose bindings span almost the whole window: when
        // the group is adjudicated, its earliest binding is already past
        // the *next* eviction cutoff — adjudication must run first.
        let pattern = Pattern::builder()
            .set(|s| s.plus("p"))
            .set(|s| s.var("b"))
            .cond_const("p", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let schema = schema();
        let rows: &[(i64, &str)] = &[(0, "A"), (3, "A"), (4, "B"), (10, "X"), (12, "X")];

        let mut rel = Relation::new(schema.clone());
        let mut sm = StreamMatcher::compile(&pattern, &schema).unwrap();
        let mut streamed = Vec::new();
        for (t, l) in rows {
            let values = [Value::from(1), Value::from(*l)];
            rel.push_values(Timestamp::new(*t), values.clone()).unwrap();
            streamed.extend(sm.push(Timestamp::new(*t), values).unwrap());
        }
        assert_eq!(sm.evicted_events(), 3, "the decided group was reclaimed");
        streamed.extend(sm.finish());
        streamed.sort();
        let mut batch = Matcher::compile(&pattern, &schema).unwrap().find(&rel);
        batch.sort();
        assert_eq!(streamed, batch);
        // The maximal match binds both A events and the B.
        assert!(streamed.iter().any(|m| m.bindings().len() == 3));
    }

    #[test]
    fn out_of_order_rejected_even_after_total_eviction() {
        // Evict *everything*, then verify the order check still holds
        // (it relies on the cached last-pushed timestamp, not on any
        // retained event) and that matching continues cleanly.
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        sm.push(Timestamp::new(0), [Value::from(1), Value::from("A")])
            .unwrap();
        sm.push(Timestamp::new(100), [Value::from(1), Value::from("X")])
            .unwrap();
        sm.push(Timestamp::new(200), [Value::from(1), Value::from("X")])
            .unwrap();
        assert_eq!(sm.retained_events(), 1, "history fully reclaimed");
        let err = sm
            .push(Timestamp::new(150), [Value::from(1), Value::from("A")])
            .unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { .. }));
        // Still fully operational after the rejection.
        sm.push(Timestamp::new(300), [Value::from(1), Value::from("A")])
            .unwrap();
        sm.push(Timestamp::new(301), [Value::from(1), Value::from("B")])
            .unwrap();
        let emitted = sm
            .push(Timestamp::new(400), [Value::from(1), Value::from("X")])
            .unwrap();
        assert_eq!(emitted.len(), 1);
        assert!(sm.finish().is_empty());
    }

    #[test]
    fn out_of_order_push_is_rejected() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        sm.push(Timestamp::new(5), [Value::from(1), Value::from("A")])
            .unwrap();
        let err = sm
            .push(Timestamp::new(4), [Value::from(1), Value::from("B")])
            .unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { .. }));
        // The matcher stays usable.
        assert!(sm
            .push(Timestamp::new(6), [Value::from(1), Value::from("B")])
            .unwrap()
            .is_empty());
        assert_eq!(sm.finish().len(), 1);
    }

    #[test]
    fn push_event_and_accessors() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        let e = Event::new(Timestamp::new(0), vec![Value::from(1), Value::from("A")]);
        sm.push_event(e).unwrap();
        assert_eq!(sm.relation().len(), 1);
        assert_eq!(sm.active_instances(), 1);
        assert_eq!(sm.emitted_so_far(), 0);
    }

    #[test]
    fn advance_watermark_finalizes_and_evicts() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        sm.push(Timestamp::new(0), [Value::from(1), Value::from("A")])
            .unwrap();
        sm.push(Timestamp::new(1), [Value::from(1), Value::from("B")])
            .unwrap();
        // No event arrives, but the clock (a sharded matcher's global
        // watermark) moves on: the pending match finalizes and the old
        // window is reclaimed.
        let out = sm.advance_watermark(Timestamp::new(100));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_string(), "{v0/e1, v1/e2}");
        assert_eq!(sm.emitted_so_far(), 1);
        assert_eq!(sm.watermark(), Some(Timestamp::new(100)));
        assert_eq!(sm.retained_events(), 0);
        assert_eq!(sm.evicted_events(), 2);
        // The advanced watermark holds for the order check: an event
        // older than it must be rejected even though the relation's own
        // last event is much older.
        let err = sm
            .push(Timestamp::new(50), [Value::from(1), Value::from("A")])
            .unwrap_err();
        assert!(matches!(
            err,
            EventError::OutOfOrder {
                previous: 100,
                got: 50
            }
        ));
        // Still fully operational at and after the watermark.
        sm.push(Timestamp::new(100), [Value::from(1), Value::from("A")])
            .unwrap();
        sm.push(Timestamp::new(101), [Value::from(1), Value::from("B")])
            .unwrap();
        assert_eq!(sm.finish().len(), 1);
    }

    #[test]
    fn advance_watermark_is_a_noop_when_fresh_or_stale() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        // A stream with no events has nothing pending, and advancing it
        // must not wedge the first real push.
        assert!(sm.advance_watermark(Timestamp::new(50)).is_empty());
        assert_eq!(sm.watermark(), None);
        sm.push(Timestamp::new(5), [Value::from(1), Value::from("A")])
            .unwrap();
        // A stale (≤ watermark) advance changes nothing.
        assert!(sm.advance_watermark(Timestamp::new(5)).is_empty());
        assert!(sm.advance_watermark(Timestamp::new(3)).is_empty());
        assert_eq!(sm.watermark(), Some(Timestamp::new(5)));
        sm.push(Timestamp::new(6), [Value::from(1), Value::from("B")])
            .unwrap();
        assert_eq!(sm.finish().len(), 1);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Snapshot mid-stream (with live instances, pending groups, and
        // an evicted prefix), restore into a fresh matcher, and verify
        // the continuation emits exactly what the uninterrupted twin
        // does — including ties at the watermark and finish().
        let rows: &[(i64, &str)] = &[
            (0, "A"),
            (1, "B"),
            (8, "A"),
            (8, "B"),
            (8, "A"),
            (9, "B"),
            (20, "A"),
            (21, "B"),
            (40, "X"),
        ];
        let pattern = ab_pattern();
        let schema = schema();
        for cut in 0..rows.len() {
            let mut live = StreamMatcher::compile(&pattern, &schema).unwrap();
            let mut twin = StreamMatcher::compile(&pattern, &schema).unwrap();
            let mut live_out = Vec::new();
            let mut twin_out = Vec::new();
            for (t, l) in &rows[..cut] {
                let values = [Value::from(1), Value::from(*l)];
                live_out.extend(live.push(Timestamp::new(*t), values.clone()).unwrap());
                twin_out.extend(twin.push(Timestamp::new(*t), values).unwrap());
            }
            let snap = live.snapshot();
            drop(live); // the "crash"
            let mut restored =
                StreamMatcher::restore(&pattern, &schema, MatcherOptions::default(), &snap)
                    .unwrap();
            assert_eq!(restored.emitted_so_far(), twin.emitted_so_far());
            assert_eq!(restored.watermark(), twin.watermark());
            assert_eq!(restored.active_instances(), twin.active_instances());
            assert_eq!(restored.pending_candidates(), twin.pending_candidates());
            for (t, l) in &rows[cut..] {
                let values = [Value::from(1), Value::from(*l)];
                live_out.extend(restored.push(Timestamp::new(*t), values.clone()).unwrap());
                twin_out.extend(twin.push(Timestamp::new(*t), values).unwrap());
            }
            live_out.extend(restored.finish());
            twin_out.extend(twin.finish());
            assert_eq!(live_out, twin_out, "divergence after restore at cut {cut}");
        }
    }

    #[test]
    fn snapshot_rejects_mismatched_matcher() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        sm.push(Timestamp::new(0), [Value::from(1), Value::from("A")])
            .unwrap();
        let snap = sm.snapshot();
        // Different window ⇒ different fingerprint ⇒ refused.
        let other = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(6))
            .build()
            .unwrap();
        let err = StreamMatcher::restore(&other, &schema(), MatcherOptions::default(), &snap)
            .unwrap_err();
        assert!(matches!(err, CoreError::SnapshotMismatch { .. }), "{err}");
        // Corrupted payload (instance state out of range) is refused too.
        let mut bad = snap.clone();
        bad.instances[0].state = 10_000;
        let err = StreamMatcher::restore(&ab_pattern(), &schema(), MatcherOptions::default(), &bad)
            .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn ties_at_watermark_counts_the_replay_skip() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        assert_eq!(sm.ties_at_watermark(), 0);
        sm.push(Timestamp::new(5), [Value::from(1), Value::from("A")])
            .unwrap();
        assert_eq!(sm.ties_at_watermark(), 1);
        sm.push(Timestamp::new(5), [Value::from(1), Value::from("X")])
            .unwrap();
        assert_eq!(sm.ties_at_watermark(), 2);
        sm.push(Timestamp::new(7), [Value::from(1), Value::from("B")])
            .unwrap();
        assert_eq!(sm.ties_at_watermark(), 1);
    }

    #[test]
    fn schema_violations_are_rejected() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        assert!(sm
            .push(Timestamp::new(0), [Value::from("wrong"), Value::from("A")])
            .is_err());
        assert_eq!(sm.relation().len(), 0);
    }
}
