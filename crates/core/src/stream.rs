//! Push-based streaming matching.
//!
//! The paper evaluates finite relations, but event pattern matching is a
//! streaming technique at heart. [`StreamMatcher`] owns a growing
//! relation and exposes `push`: feed events one at a time (in timestamp
//! order) and receive the raw matches whose windows closed at that event.
//!
//! Streaming results are **raw accepting runs** (the `AllRuns` view):
//! the Definition-2 filters compare candidates against each other, so a
//! definitive answer only exists once the input is complete — call
//! [`StreamMatcher::finish`] to flush remaining accepting instances and
//! apply the configured semantics over everything seen.
//!
//! Memory note: the matcher retains all pushed events (match buffers
//! reference them by id and late conditions may need any past bound
//! event). For unbounded streams, recreate the matcher per logical
//! segment or window of interest.

use ses_event::{Event, EventError, Relation, Schema, Timestamp, Value};
use ses_pattern::Pattern;

use crate::engine::{process_event, ExecOptions, Instance, RawMatch};
use crate::filter::EventFilter;
use crate::matcher::MatcherOptions;
use crate::matches::Match;
use crate::probe::{NoProbe, Probe};
use crate::semantics::select;
use crate::{Automaton, CoreError};

/// An incremental, push-based matcher over an owned, growing relation.
#[derive(Debug)]
pub struct StreamMatcher {
    automaton: Automaton,
    options: MatcherOptions,
    filter: EventFilter,
    relation: Relation,
    omega: Vec<Instance>,
    scratch: Vec<Instance>,
    results: Vec<RawMatch>,
}

impl StreamMatcher {
    /// Compiles `pattern` against `schema` with default options.
    pub fn compile(pattern: &Pattern, schema: &Schema) -> Result<StreamMatcher, CoreError> {
        StreamMatcher::with_options(pattern, schema, MatcherOptions::default())
    }

    /// Compiles with explicit options.
    pub fn with_options(
        pattern: &Pattern,
        schema: &Schema,
        options: MatcherOptions,
    ) -> Result<StreamMatcher, CoreError> {
        let compiled = if options.derive_equalities {
            ses_pattern::equality_closure(pattern).compile(schema)?
        } else {
            pattern.compile(schema)?
        };
        let automaton = Automaton::build_with_limit(compiled, options.max_states)?;
        let filter = EventFilter::new(automaton.pattern(), options.filter);
        Ok(StreamMatcher {
            relation: Relation::new(schema.clone()),
            automaton,
            options,
            filter,
            omega: Vec::new(),
            scratch: Vec::new(),
            results: Vec::new(),
        })
    }

    /// Pushes one event (timestamps must be non-decreasing) and returns
    /// the raw matches whose windows expired at this event.
    pub fn push(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<Vec<Match>, EventError> {
        self.push_with_probe(ts, values, &mut NoProbe)
    }

    /// [`StreamMatcher::push`] with an instrumentation probe.
    pub fn push_with_probe<P: Probe>(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
        probe: &mut P,
    ) -> Result<Vec<Match>, EventError> {
        let id = self.relation.push_values(ts, values)?;
        let before = self.results.len();
        process_event(
            &self.automaton,
            &self.relation,
            &self.filter,
            &self.exec_options(),
            &mut self.omega,
            &mut self.scratch,
            id.index(),
            &mut self.results,
            probe,
        );
        Ok(self.results[before..]
            .iter()
            .filter(|r| {
                crate::negation::passes_negations(r, &self.relation, self.automaton.pattern())
            })
            .map(|r| Match::from_raw(r.clone()))
            .collect())
    }

    /// Pushes a pre-built event.
    pub fn push_event(&mut self, event: Event) -> Result<Vec<Match>, EventError> {
        let values = event.values().to_vec();
        self.push(event.ts(), values)
    }

    /// The events seen so far.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Current number of active instances `|Ω|`.
    pub fn active_instances(&self) -> usize {
        self.omega.len()
    }

    /// Raw matches emitted so far (windows already expired).
    pub fn emitted_so_far(&self) -> usize {
        self.results.len()
    }

    /// Ends the stream: flushes accepting instances and returns all
    /// matches under the configured [`crate::MatchSemantics`].
    pub fn finish(mut self) -> Vec<Match> {
        if self.options.flush_at_end {
            let accept = self.automaton.accept();
            for instance in self.omega.drain(..) {
                if instance.state == accept {
                    self.results.push(RawMatch {
                        bindings: instance.buffer.to_sorted_bindings(),
                    });
                }
            }
        }
        let raw =
            crate::negation::filter_negations(self.results, &self.relation, self.automaton.pattern());
        select(
            raw,
            &self.relation,
            self.automaton.pattern(),
            self.options.semantics,
        )
    }

    fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            filter: self.options.filter,
            selection: self.options.selection,
            flush_at_end: self.options.flush_at_end,
            type_precheck: self.options.type_precheck,
            max_instances: self.options.max_instances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matcher;
    use ses_event::{AttrType, CmpOp, Duration};

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn ab_pattern() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(5))
            .build()
            .unwrap()
    }

    #[test]
    fn streaming_emits_on_window_expiry() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        assert!(sm
            .push(Timestamp::new(0), [Value::from(1), Value::from("B")])
            .unwrap()
            .is_empty());
        assert!(sm
            .push(Timestamp::new(1), [Value::from(1), Value::from("A")])
            .unwrap()
            .is_empty());
        assert!(sm.active_instances() > 0);
        // A *filtered* event (satisfies no constant condition) is dropped
        // before the expiry sweep — §4.5 of the paper — so emission is
        // deferred, never lost.
        let emitted = sm
            .push(Timestamp::new(100), [Value::from(1), Value::from("X")])
            .unwrap();
        assert!(emitted.is_empty(), "filtered events defer expiry");
        // The next pattern-relevant event expires the accepting instance.
        let emitted = sm
            .push(Timestamp::new(101), [Value::from(1), Value::from("B")])
            .unwrap();
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].to_string(), "{v1/e1, v0/e2}");
        assert_eq!(sm.emitted_so_far(), 1);
    }

    #[test]
    fn finish_agrees_with_batch_matcher() {
        let rows: &[(i64, i64, &str)] = &[
            (0, 1, "A"),
            (1, 1, "B"),
            (3, 1, "X"),
            (10, 1, "B"),
            (12, 1, "A"),
            (30, 1, "A"),
        ];
        let schema = schema();
        let pattern = ab_pattern();

        let mut rel = Relation::new(schema.clone());
        let mut sm = StreamMatcher::compile(&pattern, &schema).unwrap();
        for (t, id, l) in rows {
            let values = [Value::from(*id), Value::from(*l)];
            rel.push_values(Timestamp::new(*t), values.clone()).unwrap();
            sm.push(Timestamp::new(*t), values).unwrap();
        }
        let mut streamed = sm.finish();
        let mut batch = Matcher::compile(&pattern, &schema).unwrap().find(&rel);
        streamed.sort();
        batch.sort();
        assert_eq!(streamed, batch);
        assert!(!streamed.is_empty());
    }

    #[test]
    fn out_of_order_push_is_rejected() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        sm.push(Timestamp::new(5), [Value::from(1), Value::from("A")])
            .unwrap();
        let err = sm
            .push(Timestamp::new(4), [Value::from(1), Value::from("B")])
            .unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { .. }));
        // The matcher stays usable.
        assert!(sm
            .push(Timestamp::new(6), [Value::from(1), Value::from("B")])
            .unwrap()
            .is_empty());
        assert_eq!(sm.finish().len(), 1);
    }

    #[test]
    fn push_event_and_accessors() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        let e = Event::new(
            Timestamp::new(0),
            vec![Value::from(1), Value::from("A")],
        );
        sm.push_event(e).unwrap();
        assert_eq!(sm.relation().len(), 1);
        assert_eq!(sm.active_instances(), 1);
        assert_eq!(sm.emitted_so_far(), 0);
    }

    #[test]
    fn schema_violations_are_rejected() {
        let mut sm = StreamMatcher::compile(&ab_pattern(), &schema()).unwrap();
        assert!(sm
            .push(Timestamp::new(0), [Value::from("wrong"), Value::from("A")])
            .is_err());
        assert_eq!(sm.relation().len(), 0);
    }
}
