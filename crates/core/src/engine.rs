//! Execution of a SES automaton over an event relation — the paper's
//! Algorithm 1 (`SESExec`) and Algorithm 2 (`ConsumeEvent`).
//!
//! The engine maintains the set `Ω` of active automaton instances. For
//! each input event `e` (in chronological order):
//!
//! 1. (§4.5) the [`EventFilter`] may drop `e` outright;
//! 2. a fresh instance `(qs, ∅)` is added to `Ω` (Algorithm 1, line 4);
//! 3. every instance whose window would exceed `τ` *expires* — if it is in
//!    the accepting state its buffer is emitted as a raw match;
//! 4. every surviving instance consumes `e`: each outgoing transition
//!    whose condition set `Θδ` is satisfied produces a successor instance
//!    (branching on nondeterminism); if no transition fires the instance
//!    stays put, unless it is the start-state instance, which is dropped.
//!
//! The paper evaluates finite relations; at end of input, instances in the
//! accepting state emit their buffers (configurable via
//! [`ExecOptions::flush_at_end`]).

use ses_event::{Event, EventId, EventSource, Relation, Timestamp};

use crate::automaton::{Automaton, TransCond, Transition};
use crate::buffer::Buffer;
use crate::columnar::{ColumnarBatch, ColumnarMode, ColumnarPlan, EventAdmission};
use crate::filter::{EventFilter, FilterMode};
use crate::probe::Probe;
use crate::state::StateId;

/// An automaton instance `Ñ = (qc, β)` (Definition 4).
#[derive(Debug, Clone)]
pub struct Instance {
    /// Current state `qc`.
    pub state: StateId,
    /// Match buffer `β`.
    pub buffer: Buffer,
}

/// The event selection strategy — how an instance treats an event that
/// fires at least one of its transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventSelection {
    /// The paper's Algorithm 2 (skip-till-next-match): every firing
    /// transition produces a successor and the source instance is
    /// dropped — a matching event is always consumed. Events that fire
    /// nothing are skipped.
    #[default]
    SkipTillNextMatch,
    /// SASE+-style skip-till-any-match (an extension beyond the paper):
    /// the source instance is *also* retained, so runs may skip events
    /// that other runs consume. Candidate generation becomes complete
    /// with respect to the substitution space `Γ` of Definition 2 —
    /// every substitution satisfying conditions 1–3 is produced — at an
    /// exponential worst-case cost in `|Ω|` (each in-window matching
    /// event can double the instances on its path).
    SkipTillAnyMatch,
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Event pre-filtering strategy (§4.5). Defaults to the paper's
    /// filter.
    pub filter: FilterMode,
    /// Event selection strategy. Defaults to the paper's
    /// skip-till-next-match.
    pub selection: EventSelection,
    /// Emit accepting instances remaining at end of input. The paper's
    /// Algorithm 1 only emits on expiry, which silently drops matches
    /// whose window has not elapsed when the relation ends; flushing is
    /// the natural completion for finite relations. Default: `true`.
    pub flush_at_end: bool,
    /// Evaluate each variable's constant conditions **once per event**
    /// (a 64-bit "which variables can this event bind" mask) instead of
    /// once per instance-transition — an instance-indexing optimization
    /// in the spirit of the paper's future-work citation of Cayuga's
    /// indexing. Semantics-neutral; default `true`. The
    /// `ablation_precheck` bench prices it.
    pub type_precheck: bool,
    /// Optional hard cap on `|Ω|`; exceeding it panics. A guard against
    /// runaway Theorem-3 worst cases in tests, not a production knob.
    pub max_instances: Option<usize>,
    /// Spawn a fresh start-state instance per event (Algorithm 1,
    /// line 4). Default `true`. A shared-prefix *member* matcher runs
    /// with this off: its runs begin at the prefix boundary, injected by
    /// the pool that simulates the common prefix for the whole group.
    pub spawn_start: bool,
    /// Columnar admission: pre-evaluate every constant condition over
    /// the whole batch into per-variable bitmask vectors instead of
    /// per-event typed comparisons (see `crate::columnar`). Semantics-
    /// neutral deployment knob; default [`ColumnarMode::Auto`].
    pub columnar: ColumnarMode,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            filter: FilterMode::Paper,
            selection: EventSelection::SkipTillNextMatch,
            flush_at_end: true,
            type_precheck: true,
            max_instances: None,
            spawn_start: true,
            columnar: ColumnarMode::Auto,
        }
    }
}

/// A raw match: the bindings of an accepted buffer in canonical
/// `(event, var)` order, *before* the Definition-2 semantics filter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawMatch {
    /// Bindings sorted by `(event, var)`.
    pub bindings: Vec<(ses_pattern::VarId, EventId)>,
}

impl RawMatch {
    /// The earliest bound event (bindings are sorted, and the relation's
    /// event ids follow chronological order).
    pub fn first_event(&self) -> EventId {
        self.bindings[0].1
    }
}

/// Executes the automaton over an event source — the paper's `SESExec`.
///
/// The source is usually a [`Relation`], but any [`EventSource`] works;
/// partitioned execution passes zero-copy [`ses_event::RelationView`]s,
/// in which case the returned event ids are view-local.
///
/// Returns the raw matches in emission order. Apply
/// [`crate::semantics::select`] to obtain the matching substitutions of
/// Definition 2.
pub fn execute<S: EventSource, P: Probe>(
    automaton: &Automaton,
    relation: &S,
    options: &ExecOptions,
    probe: &mut P,
) -> Vec<RawMatch> {
    let mut exec = Execution::new(automaton, relation, options);
    probe.filter_mode(
        exec.filter().requested_mode(),
        exec.filter().effective_mode(),
    );
    while exec.step(probe) {}
    exec.finish(probe)
}

/// An incremental execution of one automaton over one relation.
///
/// [`execute`] drives this to completion; the brute-force baseline steps a
/// whole *bank* of executions event-by-event so that the summed `|Ω|`
/// across automata is sampled at the same points in time as the paper's
/// experiment 1.
#[derive(Debug)]
pub struct Execution<'a, S: EventSource = Relation> {
    automaton: &'a Automaton,
    relation: &'a S,
    options: &'a ExecOptions,
    filter: EventFilter,
    /// Whole-relation columnar admission, when the mode activates.
    columnar: Option<ColumnarBatch>,
    omega: Vec<Instance>,
    scratch: Vec<Instance>,
    results: Vec<RawMatch>,
    position: usize,
}

impl<'a, S: EventSource> Execution<'a, S> {
    /// The compiled event filter, including any silent downgrade.
    pub fn filter(&self) -> &EventFilter {
        &self.filter
    }

    /// Prepares an execution positioned before the first event.
    pub fn new(automaton: &'a Automaton, relation: &'a S, options: &'a ExecOptions) -> Self {
        let filter = EventFilter::new(automaton.pattern(), options.filter);
        let columnar = {
            let plan = ColumnarPlan::new(automaton.pattern());
            options
                .columnar
                .active(plan.num_lanes(), relation.len())
                .then(|| {
                    let mut batch = ColumnarBatch::default();
                    plan.evaluate(
                        relation.len(),
                        |i| relation.event(EventId::from(i)),
                        filter.effective_mode(),
                        &mut batch,
                    );
                    batch
                })
        };
        Execution {
            automaton,
            relation,
            options,
            filter,
            columnar,
            omega: Vec::new(),
            scratch: Vec::new(),
            results: Vec::new(),
            position: 0,
        }
    }

    /// `true` iff this execution admits events through the columnar
    /// bitmask layer rather than per-event comparisons.
    pub fn is_columnar(&self) -> bool {
        self.columnar.is_some()
    }

    /// Processes the next event. Returns `false` when the relation is
    /// exhausted (call [`Execution::finish`] afterwards).
    pub fn step<P: Probe>(&mut self, probe: &mut P) -> bool {
        if self.position >= self.relation.len() {
            return false;
        }
        let position = self.position;
        self.position += 1;
        let admission = self.columnar.as_ref().map(|b| b.admission(position));
        process_event(
            self.automaton,
            self.relation,
            &self.filter,
            self.options,
            &mut self.omega,
            &mut self.scratch,
            EventId::from(position),
            admission,
            &mut self.results,
            probe,
        );
        true
    }

    /// Current number of active instances `|Ω|`.
    pub fn omega_len(&self) -> usize {
        self.omega.len()
    }

    /// The active instances `Ω` (after the most recent step).
    pub fn instances(&self) -> &[Instance] {
        &self.omega
    }

    /// Index of the next event to be consumed.
    pub fn position(&self) -> usize {
        self.position
    }

    /// `true` iff every event has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.position >= self.relation.len()
    }

    /// Flushes accepting instances (if configured) and returns all raw
    /// matches produced by this execution.
    pub fn finish<P: Probe>(mut self, probe: &mut P) -> Vec<RawMatch> {
        if self.options.flush_at_end {
            let accept = self.automaton.accept();
            for instance in self.omega.drain(..) {
                if instance.state == accept {
                    probe.match_emitted();
                    self.results.push(RawMatch {
                        bindings: instance.buffer.to_sorted_bindings(),
                    });
                }
            }
        }
        self.results
    }
}

/// Drops every instance whose window cannot contain `watermark` anymore
/// (Algorithm 1's expiry step, detached from event consumption), emitting
/// accepting buffers as raw matches.
///
/// [`process_event`] performs the same sweep inline; this standalone form
/// lets the push-based [`crate::StreamMatcher`] advance expiry on *every*
/// arrival — including events the §4.5 filter drops, which the batch path
/// skips entirely. Sweeping early is semantics-neutral: an instance whose
/// window excludes the current timestamp also excludes every later one,
/// and filtered events are never offered to instances, so the raw match
/// set is unchanged — only its emission time moves earlier.
///
/// Returns the minimum first-binding timestamp across the *surviving*
/// instances (`None` when no survivor has bound an event yet): the next
/// sweep can be skipped until the watermark moves more than `τ` past it,
/// because no window can close before then.
pub(crate) fn sweep_expired<P: Probe>(
    automaton: &Automaton,
    omega: &mut Vec<Instance>,
    watermark: Timestamp,
    results: &mut Vec<RawMatch>,
    probe: &mut P,
) -> Option<Timestamp> {
    let tau = automaton.tau();
    let accept = automaton.accept();
    let mut floor: Option<Timestamp> = None;
    omega.retain(|instance| {
        let min_ts = instance.buffer.min_ts();
        let expired = match min_ts {
            Some(min) => watermark.distance(min) > tau,
            None => false,
        };
        if expired {
            probe.instance_expired();
            if instance.state == accept {
                probe.match_emitted();
                results.push(RawMatch {
                    bindings: instance.buffer.to_sorted_bindings(),
                });
            }
        } else if let Some(min) = min_ts {
            floor = Some(floor.map_or(min, |f: Timestamp| f.min(min)));
        }
        !expired
    });
    floor
}

/// The body of Algorithm 1's per-event iteration: spawn a fresh start
/// instance, expire/emit, consume. Shared by the batch [`Execution`] and
/// the push-based [`crate::StreamMatcher`].
///
/// When `admission` is provided (columnar mode), the filter verdict and
/// variable mask were precomputed over the whole batch; otherwise both
/// are evaluated scalar, per event, exactly as before.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_event<S: EventSource, P: Probe>(
    automaton: &Automaton,
    relation: &S,
    filter: &EventFilter,
    options: &ExecOptions,
    omega: &mut Vec<Instance>,
    scratch: &mut Vec<Instance>,
    event_id: EventId,
    admission: Option<EventAdmission>,
    results: &mut Vec<RawMatch>,
    probe: &mut P,
) {
    let event = relation.event(event_id);

    probe.event_read();
    let pattern = automaton.pattern();
    let passes = match admission {
        Some(a) => a.passes,
        None => filter.passes(pattern, event),
    };
    if !passes {
        probe.event_filtered();
        return;
    }

    let tau = automaton.tau();
    let start = automaton.start();
    let accept = automaton.accept();

    // Which variables can this event possibly bind? Computing the mask
    // once per event amortizes every constant-condition evaluation over
    // all simultaneous instances; columnar mode amortizes it further,
    // over the whole batch.
    let var_ok: Option<u64> = match admission {
        Some(a) => Some(a.var_ok),
        None => options.type_precheck.then(|| {
            let p = pattern.pattern();
            let mut mask = 0u64;
            for i in 0..p.num_vars() {
                if pattern.satisfies_var_constants(ses_pattern::VarId(i as u16), event) {
                    mask |= 1u64 << i;
                }
            }
            mask
        }),
    };

    // Algorithm 1, line 4: a fresh instance per (unfiltered) event.
    if options.spawn_start {
        omega.push(Instance {
            state: start,
            buffer: Buffer::EMPTY,
        });
        probe.instance_spawned();
    }

    scratch.clear();
    for instance in omega.drain(..) {
        let expired = match instance.buffer.min_ts() {
            Some(min) => event.ts().distance(min) > tau,
            None => false,
        };
        if expired {
            probe.instance_expired();
            if instance.state == accept {
                probe.match_emitted();
                results.push(RawMatch {
                    bindings: instance.buffer.to_sorted_bindings(),
                });
            }
            continue; // dropped from Ω either way
        }
        consume_event(
            automaton,
            relation,
            instance,
            event,
            event_id,
            start,
            options.selection,
            var_ok,
            scratch,
            probe,
        );
    }
    std::mem::swap(omega, scratch);
    probe.omega(omega.len());
    if let Some(cap) = options.max_instances {
        assert!(
            omega.len() <= cap,
            "instance cap exceeded: |Ω| = {} > {cap}",
            omega.len()
        );
    }
}

/// Algorithm 2: offers `event` to `instance`; pushes the successor
/// instances into `out`.
///
/// Takes the instance by value: a surviving source is *moved* into
/// `out`, so the old per-emission `instance.clone()` (an `Arc` bump +
/// drop per retained instance per event) is gone entirely.
#[allow(clippy::too_many_arguments)]
fn consume_event<S: EventSource, P: Probe>(
    automaton: &Automaton,
    relation: &S,
    instance: Instance,
    event: &Event,
    event_id: EventId,
    start: StateId,
    selection: EventSelection,
    var_ok: Option<u64>,
    out: &mut Vec<Instance>,
    probe: &mut P,
) {
    if let Some(mask) = var_ok {
        // Fast path: no outgoing transition's variable is admitted, so
        // nothing can fire — skip the transition loop entirely. Probe-
        // identical to walking it: every transition would have been
        // mask-skipped before `transition_evaluated`.
        if mask & automaton.outgoing_var_mask(instance.state) == 0 {
            if instance.state != start {
                out.push(instance);
            }
            return;
        }
    }
    let mut fired = 0usize;
    for transition in automaton.outgoing(instance.state) {
        // Precheck: an event failing the bound variable's constant
        // conditions can never take this transition.
        if let Some(mask) = var_ok {
            if mask & transition.var.bit() == 0 {
                continue;
            }
        }
        probe.transition_evaluated();
        if eval_conditions(
            automaton,
            relation,
            transition,
            &instance.buffer,
            event,
            var_ok.is_some(),
        ) {
            probe.transition_taken();
            if fired > 0 {
                probe.instance_branched();
            }
            fired += 1;
            out.push(Instance {
                state: transition.target,
                buffer: instance.buffer.push(transition.var, event_id, event.ts()),
            });
        }
    }
    // The source instance survives when nothing fired (the event is
    // ignored — skip-till-next-match) or, under skip-till-any-match,
    // unconditionally (the run may *choose* to skip a matching event).
    // Fresh start-state instances never linger: a new one is spawned for
    // every event anyway.
    let keep_source =
        instance.state != start && (fired == 0 || selection == EventSelection::SkipTillAnyMatch);
    if keep_source {
        if fired > 0 {
            probe.instance_branched();
        }
        out.push(instance);
    }
}

/// Evaluates a transition's condition set `Θδ` against the incoming event
/// and the instance's buffer. Incremental decomposition semantics: only
/// the condition instances involving the new binding are checked here;
/// every other combination was checked when its own binding was added.
#[inline]
fn eval_conditions<S: EventSource>(
    automaton: &Automaton,
    relation: &S,
    transition: &Transition,
    buffer: &Buffer,
    event: &Event,
    consts_prechecked: bool,
) -> bool {
    let pattern = automaton.pattern();
    let event_ts: Timestamp = event.ts();
    transition.conds.iter().all(|tc| match tc {
        // With the per-event precheck, constant conditions were already
        // verified through the variable mask.
        TransCond::Const { cond } => {
            consts_prechecked || pattern.condition(*cond).eval_const(event)
        }
        TransCond::SelfCmp { cond } => pattern.condition(*cond).eval_vars(event, event),
        TransCond::VsBound {
            cond,
            other,
            new_is_lhs,
        } => {
            let c = pattern.condition(*cond);
            buffer.bindings_of(*other).all(|b| {
                let other_event = relation.event(b.event);
                if *new_is_lhs {
                    c.eval_vars(event, other_event)
                } else {
                    c.eval_vars(other_event, event)
                }
            })
        }
        TransCond::TimeAfter { other } => buffer.bindings_of(*other).all(|b| b.ts < event_ts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoProbe;
    use ses_event::{AttrType, CmpOp, Duration, Schema, Value};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn rel(rows: &[(i64, i64, &str)]) -> Relation {
        let mut r = Relation::new(schema());
        for (ts, id, l) in rows {
            r.push_values(Timestamp::new(*ts), [Value::from(*id), Value::from(*l)])
                .unwrap();
        }
        r
    }

    fn automaton(p: Pattern) -> Automaton {
        Automaton::build(p.compile(&schema()).unwrap()).unwrap()
    }

    fn run(a: &Automaton, r: &Relation) -> Vec<RawMatch> {
        execute(a, r, &ExecOptions::default(), &mut NoProbe)
    }

    fn names(a: &Automaton, m: &RawMatch) -> Vec<String> {
        m.bindings
            .iter()
            .map(|(v, e)| format!("{}/{}", a.pattern().pattern().var(*v).name(), e))
            .collect()
    }

    #[test]
    fn single_variable_pattern_matches_each_a() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .within(Duration::ticks(10))
            .build()
            .unwrap();
        let a = automaton(p);
        let r = rel(&[(0, 1, "A"), (1, 1, "B"), (2, 1, "A")]);
        let ms = run(&a, &r);
        assert_eq!(ms.len(), 2);
        assert_eq!(names(&a, &ms[0]), vec!["a/e1"]);
        assert_eq!(names(&a, &ms[1]), vec!["a/e3"]);
    }

    #[test]
    fn sequence_requires_strict_time_order() {
        // ⟨{a},{b}⟩ with a tie in timestamps: b at the same instant as a
        // must NOT match (strict v'.T < v.T).
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(10))
            .build()
            .unwrap();
        let a = automaton(p);
        let tie = rel(&[(5, 1, "A"), (5, 1, "B")]);
        assert!(run(&a, &tie).is_empty());
        let ok = rel(&[(5, 1, "A"), (6, 1, "B")]);
        assert_eq!(run(&a, &ok).len(), 1);
    }

    #[test]
    fn permutation_within_a_set_is_matched() {
        // ⟨{a, b}⟩: both orders of A-then-B and B-then-A match.
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(10))
            .build()
            .unwrap();
        let a = automaton(p);
        let ms = run(&a, &rel(&[(0, 1, "B"), (1, 1, "A")]));
        assert_eq!(ms.len(), 1);
        assert_eq!(names(&a, &ms[0]), vec!["b/e1", "a/e2"]);
        let ms = run(&a, &rel(&[(0, 1, "A"), (1, 1, "B")]));
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn window_expiry_drops_partial_matches() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let a = automaton(p);
        // B arrives 6 ticks after A: outside τ = 5.
        assert!(run(&a, &rel(&[(0, 1, "A"), (6, 1, "B")])).is_empty());
        // Exactly at the window edge (distance 5 ≤ τ): matches.
        assert_eq!(run(&a, &rel(&[(0, 1, "A"), (5, 1, "B")])).len(), 1);
    }

    #[test]
    fn accepting_instance_emits_on_expiry_without_flush() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let a = automaton(p);
        let r = rel(&[(0, 1, "A"), (100, 1, "A")]);
        let opts = ExecOptions {
            flush_at_end: false,
            ..ExecOptions::default()
        };
        // First A's instance expires when the second A arrives → emitted.
        // Second A's instance is still live at end of input → dropped.
        let ms = execute(&a, &r, &opts, &mut NoProbe);
        assert_eq!(ms.len(), 1);
        assert_eq!(names(&a, &ms[0]), vec!["a/e1"]);
    }

    #[test]
    fn group_variable_collects_multiple_events() {
        let p = Pattern::builder()
            .set(|s| s.plus("p"))
            .set(|s| s.var("b"))
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let a = automaton(p);
        // One accepting run per starting P event (suffix runs are kept by
        // Definition 2 too, since their first bindings differ).
        let mut ms = run(
            &a,
            &rel(&[(0, 1, "P"), (1, 1, "P"), (2, 1, "P"), (3, 1, "B")]),
        );
        ms.sort();
        assert_eq!(ms.len(), 3);
        assert_eq!(names(&a, &ms[0]), vec!["p/e1", "p/e2", "p/e3", "b/e4"]);
        assert_eq!(names(&a, &ms[1]), vec!["p/e2", "p/e3", "b/e4"]);
        assert_eq!(names(&a, &ms[2]), vec!["p/e3", "b/e4"]);
    }

    #[test]
    fn variable_conditions_correlate_events() {
        // Same-ID correlation across two sets.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let a = automaton(p);
        // B of a different patient must not match.
        let ms = run(&a, &rel(&[(0, 1, "A"), (1, 2, "B"), (2, 1, "B")]));
        assert_eq!(ms.len(), 1);
        assert_eq!(names(&a, &ms[0]), vec!["a/e1", "b/e3"]);
    }

    #[test]
    fn skip_till_next_match_ignores_interleaved_events() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let a = automaton(p);
        // X events between A and B are ignored (with filter they never
        // reach the instances; without filter the instance stays put).
        for filter in [FilterMode::Off, FilterMode::Paper, FilterMode::PerVariable] {
            let opts = ExecOptions {
                filter,
                ..ExecOptions::default()
            };
            let ms = execute(
                &a,
                &rel(&[(0, 1, "A"), (1, 1, "X"), (2, 1, "X"), (3, 1, "B")]),
                &opts,
                &mut NoProbe,
            );
            assert_eq!(ms.len(), 1, "filter mode {filter:?}");
        }
    }

    #[test]
    fn nondeterminism_branches_instances() {
        // Two variables with the same constraint: an 'M' event can bind
        // either; two 'M' events yield both assignments.
        let p = Pattern::builder()
            .set(|s| s.var("x").var("y"))
            .cond_const("x", "L", CmpOp::Eq, "M")
            .cond_const("y", "L", CmpOp::Eq, "M")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let a = automaton(p);
        let ms = run(&a, &rel(&[(0, 1, "M"), (1, 1, "M")]));
        // x/e1,y/e2 and y/e1,x/e2 — both are raw matches.
        assert_eq!(ms.len(), 2);
        let mut sets: Vec<Vec<String>> = ms.iter().map(|m| names(&a, m)).collect();
        sets.sort();
        assert_eq!(
            sets,
            vec![
                vec!["x/e1".to_string(), "y/e2".to_string()],
                vec!["y/e1".to_string(), "x/e2".to_string()],
            ]
        );
    }

    #[test]
    fn max_instances_cap_panics_when_exceeded() {
        let p = Pattern::builder()
            .set(|s| s.var("x").var("y").var("z"))
            .cond_const("x", "L", CmpOp::Eq, "M")
            .cond_const("y", "L", CmpOp::Eq, "M")
            .cond_const("z", "L", CmpOp::Eq, "M")
            .within(Duration::ticks(1000))
            .build()
            .unwrap();
        let a = automaton(p);
        let rows: Vec<(i64, i64, &str)> = (0..20).map(|i| (i, 1, "M")).collect();
        let r = rel(&rows);
        let opts = ExecOptions {
            max_instances: Some(2),
            ..ExecOptions::default()
        };
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&a, &r, &opts, &mut NoProbe)
        }));
        assert!(res.is_err());
    }

    #[test]
    fn skip_till_any_match_recovers_skipped_runs() {
        // ⟨{a},{x,y}⟩ on A X A Y: skip-till-next-match greedily binds the
        // first A…X…? — the run that waits for the second A only exists
        // under skip-till-any-match.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("x").var("y"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("x", "L", CmpOp::Eq, "X")
            .cond_const("y", "L", CmpOp::Eq, "A")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let a = automaton(p);
        let r = rel(&[(0, 1, "A"), (1, 1, "X"), (2, 1, "A"), (3, 1, "A")]);

        let stnm = run(&a, &r);
        let opts = ExecOptions {
            selection: EventSelection::SkipTillAnyMatch,
            ..ExecOptions::default()
        };
        let mut stam = execute(&a, &r, &opts, &mut NoProbe);
        stam.sort();
        stam.dedup();
        // STNM: instance at e1 binds a; e2 binds x; e3 binds y → one run
        // {a/e1,x/e2,y/e3}; the variant ending y/e4 requires *skipping*
        // e3 while x was already bound — impossible greedily.
        assert!(
            stnm.iter().all(
                |m| !m.bindings.contains(&(ses_pattern::VarId(2), EventId(3)))
                    || m.bindings.contains(&(ses_pattern::VarId(0), EventId(2)))
            ),
            "greedy runs cannot skip e3 for y"
        );
        // STAM is a superset and contains the skipped variant.
        for m in &stnm {
            assert!(stam.contains(m), "STAM must contain every greedy run");
        }
        assert!(
            stam.iter().any(|m| m.bindings
                == vec![
                    (ses_pattern::VarId(0), EventId(0)),
                    (ses_pattern::VarId(1), EventId(1)),
                    (ses_pattern::VarId(2), EventId(3)),
                ]),
            "{stam:?}"
        );
    }

    #[test]
    fn skip_till_any_match_explodes_instances() {
        // The cost of completeness: on a stream of n same-type events,
        // STAM's |Ω| grows exponentially while STNM stays polynomial.
        let p = Pattern::builder()
            .set(|s| s.plus("p"))
            .cond_const("p", "L", CmpOp::Eq, "M")
            .within(Duration::ticks(1000))
            .build()
            .unwrap();
        let a = automaton(p);
        let rows: Vec<(i64, i64, &str)> = (0..10).map(|i| (i, 1, "M")).collect();
        let r = rel(&rows);

        struct MaxOmega(usize);
        impl crate::Probe for MaxOmega {
            fn omega(&mut self, n: usize) {
                self.0 = self.0.max(n);
            }
        }
        let mut stnm = MaxOmega(0);
        execute(&a, &r, &ExecOptions::default(), &mut stnm);
        let mut stam = MaxOmega(0);
        execute(
            &a,
            &r,
            &ExecOptions {
                selection: EventSelection::SkipTillAnyMatch,
                ..ExecOptions::default()
            },
            &mut stam,
        );
        assert!(stnm.0 <= 10, "greedy p+ keeps one instance per start");
        assert!(
            stam.0 > 100,
            "any-match explores every subset: got {}",
            stam.0
        );
    }

    #[test]
    fn type_precheck_is_semantics_neutral() {
        // Same results with and without the per-event variable mask, for
        // every selection strategy and filter mode.
        let p = Pattern::builder()
            .set(|s| s.var("x").plus("y"))
            .set(|s| s.var("b"))
            .cond_const("x", "L", CmpOp::Eq, "M")
            .cond_const("y", "L", CmpOp::Eq, "M")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("x", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::ticks(50))
            .build()
            .unwrap();
        let a = automaton(p);
        let r = rel(&[
            (0, 1, "M"),
            (1, 2, "M"),
            (2, 1, "M"),
            (3, 1, "Z"),
            (4, 1, "B"),
            (5, 2, "B"),
        ]);
        for selection in [
            EventSelection::SkipTillNextMatch,
            EventSelection::SkipTillAnyMatch,
        ] {
            for filter in [FilterMode::Off, FilterMode::Paper] {
                let run = |precheck: bool| {
                    let opts = ExecOptions {
                        selection,
                        filter,
                        type_precheck: precheck,
                        ..ExecOptions::default()
                    };
                    let mut out = execute(&a, &r, &opts, &mut NoProbe);
                    out.sort();
                    out
                };
                assert_eq!(run(true), run(false), "{selection:?}/{filter:?}");
            }
        }
    }

    #[test]
    fn columnar_is_semantics_neutral() {
        // Forcing the columnar admission path on yields exactly the
        // scalar results, for every selection strategy and filter mode
        // (including the batch-size-gated Auto default).
        let p = Pattern::builder()
            .set(|s| s.var("x").plus("y"))
            .set(|s| s.var("b"))
            .cond_const("x", "L", CmpOp::Eq, "M")
            .cond_const("y", "L", CmpOp::Eq, "M")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("x", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::ticks(50))
            .build()
            .unwrap();
        let a = automaton(p);
        let r = rel(&[
            (0, 1, "M"),
            (1, 2, "M"),
            (2, 1, "M"),
            (3, 1, "Z"),
            (4, 1, "B"),
            (5, 2, "B"),
        ]);
        for selection in [
            EventSelection::SkipTillNextMatch,
            EventSelection::SkipTillAnyMatch,
        ] {
            for filter in [FilterMode::Off, FilterMode::Paper, FilterMode::PerVariable] {
                for precheck in [false, true] {
                    let run = |columnar: crate::ColumnarMode| {
                        let opts = ExecOptions {
                            selection,
                            filter,
                            type_precheck: precheck,
                            columnar,
                            ..ExecOptions::default()
                        };
                        let mut out = execute(&a, &r, &opts, &mut NoProbe);
                        out.sort();
                        out
                    };
                    let scalar = run(crate::ColumnarMode::Off);
                    assert_eq!(
                        run(crate::ColumnarMode::On),
                        scalar,
                        "on {selection:?}/{filter:?}/{precheck}"
                    );
                    assert_eq!(
                        run(crate::ColumnarMode::Auto),
                        scalar,
                        "auto {selection:?}/{filter:?}/{precheck}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_relation_yields_nothing() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .build()
            .unwrap();
        let a = automaton(p);
        assert!(run(&a, &Relation::new(schema())).is_empty());
    }
}
