//! SES automaton construction and execution — the primary contribution of
//! *Cadonna, Gamper, Böhlen: Sequenced Event Set Pattern Matching
//! (EDBT 2011)*.
//!
//! # Architecture
//!
//! | module | paper section | role |
//! |---|---|---|
//! | [`state`](StateSet) | Def. 3 | states as variable bitsets |
//! | [`automaton`](Automaton) | §4.1–4.2 | powerset construction + concatenation |
//! | [`buffer`](Buffer) | §4.1 | persistent (O(1)-fork) match buffers |
//! | [`engine`](execute) | §4.3, Alg. 1–2 | `SESExec` / `ConsumeEvent` |
//! | [`filter`](EventFilter) | §4.5 | constant-condition event pre-filter |
//! | [`semantics`](select) | Def. 2 (cond. 4–5) | skip-till-next-match + maximality |
//! | [`matcher`](Matcher) | — | one-call high-level API |
//! | [`probe`](Probe) | §5 | zero-cost instrumentation for the experiments |
//!
//! # Quick start
//!
//! ```
//! use ses_event::{AttrType, CmpOp, Duration, Relation, Schema, Timestamp, Value};
//! use ses_pattern::Pattern;
//! use ses_core::Matcher;
//!
//! // Events (L, T); pattern: an A and a B in any order, then a C,
//! // all within 10 ticks.
//! let schema = Schema::builder().attr("L", AttrType::Str).build().unwrap();
//! let pattern = Pattern::builder()
//!     .set(|s| s.var("a").var("b"))
//!     .set(|s| s.var("c"))
//!     .cond_const("a", "L", CmpOp::Eq, "A")
//!     .cond_const("b", "L", CmpOp::Eq, "B")
//!     .cond_const("c", "L", CmpOp::Eq, "C")
//!     .within(Duration::ticks(10))
//!     .build()
//!     .unwrap();
//!
//! let matcher = Matcher::compile(&pattern, &schema).unwrap();
//!
//! let mut rel = Relation::new(schema);
//! for (t, l) in [(0, "B"), (1, "A"), (2, "C")] {
//!     rel.push_values(Timestamp::new(t), [Value::from(l)]).unwrap();
//! }
//! let matches = matcher.find(&rel);
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].display_with(&pattern), "{b/e1, a/e2, c/e3}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjudicate;
mod automaton;
mod bank;
mod buffer;
mod columnar;
mod dot;
mod engine;
mod error;
mod filter;
mod matcher;
mod matches;
mod measures;
mod multi;
mod negation;
pub mod parallel;
mod probe;
mod reference;
mod semantics;
mod shard;
mod snapshot;
mod state;
mod stream;
mod trace;

pub use automaton::{Automaton, State, TransCond, Transition, DEFAULT_MAX_STATES};
pub use bank::{PatternBank, PatternBankBuilder, PatternStats};
pub use buffer::{Binding, Buffer, BufferIter};
pub use columnar::ColumnarMode;
pub use engine::{execute, EventSelection, ExecOptions, Execution, Instance, RawMatch};
pub use error::CoreError;
pub use filter::{EventFilter, FilterMode};
pub use matcher::{Matcher, MatcherOptions, PartitionMode, PartitionStrategy};
pub use matches::Match;
pub use measures::{aggregate, Aggregate};
pub use multi::MultiMatcher;
pub use negation::{filter_negations, passes_negations};
pub use probe::{NoProbe, Probe};
pub use reference::{enumerate_candidates, satisfies_conditions_1_3};
pub use semantics::{select, select_with, AdjudicationMode, MatchSemantics};
pub use shard::ShardedStreamMatcher;
pub use snapshot::{
    BankPatternSnapshot, BankRole, BankSnapshot, InstanceSnapshot, MatcherSnapshot, ShardSnapshot,
    ShardedSnapshot, StreamSnapshot,
};
pub use state::{StateId, StateSet};
pub use stream::StreamMatcher;
pub use trace::{trace_execution, ExecutionTrace, TraceStep};
