//! Snapshot data types for the durability subsystem.
//!
//! A [`StreamSnapshot`] captures the *dynamic* state of a
//! [`crate::StreamMatcher`] — the retained relation window, the active
//! instance set Ω with match buffers, the pending adjudication groups,
//! the Definition-2 killer survivors, the watermark, and the
//! emitted-match high-water mark. The *static* state (automaton, filter,
//! options) is deliberately **not** serialized: recovery recompiles it
//! from the pattern and options, and a fingerprint stored in the
//! snapshot rejects restores against a different pattern, schema, or
//! semantics (see [`CoreError::SnapshotMismatch`]).
//!
//! [`ShardedSnapshot`] composes per-shard stream snapshots plus the
//! router bookkeeping (global id counter, id maps, global watermark)
//! under a single manifest, and [`MatcherSnapshot`] unifies both for a
//! kind-agnostic checkpoint store (`ses-store`'s `CheckpointStore`
//! serializes it with a versioned, checksummed binary codec).
//!
//! The snapshot types hold plain values with public fields so the codec
//! lives outside `ses-core` (the dependency points `ses-store →
//! ses-core`, matching the existing `EventLog` layering).
//!
//! [`CoreError::SnapshotMismatch`]: crate::CoreError::SnapshotMismatch

use ses_event::{AttrId, Event, EventId, Timestamp};
use ses_pattern::VarId;

use crate::automaton::Automaton;
use crate::matcher::MatcherOptions;

/// One automaton instance `Ñ = (qc, β)`: its state index and its match
/// buffer's bindings in **oldest-first** order (the order a restore
/// replays them in, reproducing the buffer's `minT` cache).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceSnapshot {
    /// The instance's current state, as an index into the automaton's
    /// state table.
    pub state: u32,
    /// The buffer's bindings, oldest first: `(variable, event, ts)`.
    pub bindings: Vec<(VarId, EventId, Timestamp)>,
}

/// Complete dynamic state of a [`crate::StreamMatcher`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// Fingerprint of the compiled pattern, schema, and
    /// behavior-relevant options the snapshot was taken under. Restoring
    /// against a matcher with a different fingerprint fails.
    pub fingerprint: u64,
    /// The stream's watermark (latest pushed or heartbeat timestamp).
    pub watermark: Option<Timestamp>,
    /// Whether watermark eviction was enabled.
    pub evict: bool,
    /// Events evicted from the front of the relation; the first retained
    /// event's id is this value.
    pub evicted: u64,
    /// Timestamp of the last *pushed* event — may trail the watermark
    /// (heartbeats) and survive total eviction of the window.
    pub last_ts: Option<Timestamp>,
    /// The retained relation window, in chronological order.
    pub events: Vec<Event>,
    /// Active automaton instances Ω.
    pub instances: Vec<InstanceSnapshot>,
    /// Accepting runs awaiting adjudication, as canonical sorted binding
    /// lists; regrouped by first binding on restore.
    pub pending: Vec<Vec<(VarId, EventId)>>,
    /// Definition-2 survivors retained as maximality killers, with their
    /// `minT`.
    pub survivors: Vec<(Timestamp, Vec<(VarId, EventId)>)>,
    /// Matches already emitted by `push` — the exactly-once high-water
    /// mark recovery suppresses duplicates against.
    pub emitted: u64,
}

impl StreamSnapshot {
    /// Number of events the matcher had consumed when the snapshot was
    /// taken (evicted + retained).
    pub fn consumed_events(&self) -> u64 {
        self.evicted + self.events.len() as u64
    }
}

/// One shard of a [`crate::ShardedStreamMatcher`]: its stream matcher
/// snapshot plus the local→global event id map.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// The shard's stream matcher state.
    pub matcher: StreamSnapshot,
    /// Global ids of the shard's retained events, indexed by
    /// `local_id - base`.
    pub ids: Vec<EventId>,
    /// First retained local index (the shard relation's eviction base).
    pub base: u64,
    /// Peak `|Ω|` observed on the shard.
    pub peak_omega: u64,
}

/// Complete dynamic state of a [`crate::ShardedStreamMatcher`]: the
/// per-shard snapshots under one manifest, plus the router state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedSnapshot {
    /// Shared per-shard fingerprint (every shard runs the same automaton
    /// and options).
    pub fingerprint: u64,
    /// The attribute events are hash-routed by.
    pub key: AttrId,
    /// The global watermark: timestamp of the last pushed event.
    pub last_ts: Option<Timestamp>,
    /// Next global event id to assign (= total events consumed).
    pub next_id: u64,
    /// Matches emitted across all shards by pushes so far.
    pub emitted: u64,
    /// The shards, in routing order. Restore preserves the shard count —
    /// the hash router is deterministic, so events replay to the same
    /// shards.
    pub shards: Vec<ShardSnapshot>,
}

/// How one registered pattern participates in the structural-sharing
/// plan a [`crate::PatternBank`] snapshot was taken under. Restore
/// recomputes the plan from the registration specs and refuses a
/// snapshot whose recorded roles disagree — the per-pattern payload
/// layout depends on the role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankRole {
    /// Runs its own matcher and belongs to no prefix group.
    Plain,
    /// Evaluation-identical to pattern `leader`; has no matcher of its
    /// own and re-emits the leader's matches.
    DedupMember {
        /// Registration index of the pattern whose matcher answers for
        /// this one.
        leader: u32,
    },
    /// Member of shared-prefix pool `pool`: runs its own matcher with
    /// start-instance spawning disabled, fed forks by the pool.
    PrefixMember {
        /// Index into [`BankSnapshot::pools`].
        pool: u32,
    },
}

/// One registered pattern of a [`crate::PatternBank`]: its stream
/// matcher snapshot plus the local→global event id map and the routing
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct BankPatternSnapshot {
    /// The name the pattern was registered under — restore refuses a
    /// spec list whose names disagree.
    pub name: String,
    /// The pattern's stream matcher state; `None` for a deduplicated
    /// member, which runs no matcher of its own.
    pub matcher: Option<StreamSnapshot>,
    /// Global ids of the pattern's retained events, indexed by
    /// `local_id - base`.
    pub ids: Vec<EventId>,
    /// First retained local index (the pattern relation's eviction
    /// base).
    pub base: u64,
    /// Peak `|Ω|` observed on the pattern.
    pub peak_omega: u64,
    /// Events routed into the pattern's matcher.
    pub hits: u64,
    /// Events skipped (heartbeat only).
    pub skips: u64,
}

/// Complete dynamic state of a [`crate::PatternBank`]: the per-pattern
/// snapshots under one manifest, plus the bank's routing bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct BankSnapshot {
    /// The bank's clock (latest pushed or heartbeat timestamp).
    pub watermark: Option<Timestamp>,
    /// Timestamp of the last pushed event — may trail the watermark.
    pub last_ts: Option<Timestamp>,
    /// Next global event id to assign (= total events consumed).
    pub next_id: u64,
    /// Events tied at `last_ts` — persisted explicitly because skipped
    /// events appear in no pattern's relation, so no relation can
    /// recover the replay-skip count.
    pub ties: u64,
    /// Matches emitted across all patterns by pushes and heartbeats.
    pub emitted: u64,
    /// Whether the predicate index was consulted on pushes.
    pub use_index: bool,
    /// The registered patterns, in registration order.
    pub patterns: Vec<BankPatternSnapshot>,
    /// Per-pattern sharing roles, indexed like `patterns`. All
    /// [`BankRole::Plain`] for a bank built without sharing — such
    /// snapshots keep the original (kind 2) serialized layout.
    pub roles: Vec<BankRole>,
    /// Shared-prefix pool matchers, in plan group order. Empty without
    /// sharing.
    pub pools: Vec<StreamSnapshot>,
}

/// A snapshot of any stream matcher flavor — the unit the checkpoint
/// store persists.
#[derive(Debug, Clone, PartialEq)]
pub enum MatcherSnapshot {
    /// A global (unsharded) stream matcher.
    Stream(StreamSnapshot),
    /// A hash-sharded stream matcher.
    Sharded(ShardedSnapshot),
    /// A multi-pattern bank.
    Bank(BankSnapshot),
}

impl MatcherSnapshot {
    /// Timestamp of the last event consumed before the snapshot — where
    /// log replay resumes (see the recovery protocol in
    /// `docs/durability.md`). `None` means nothing was consumed: replay
    /// the whole log.
    pub fn replay_from(&self) -> Option<Timestamp> {
        match self {
            MatcherSnapshot::Stream(s) => s.last_ts,
            MatcherSnapshot::Sharded(s) => s.last_ts,
            MatcherSnapshot::Bank(s) => s.last_ts,
        }
    }

    /// Matches already emitted by pushes when the snapshot was taken.
    pub fn emitted(&self) -> u64 {
        match self {
            MatcherSnapshot::Stream(s) => s.emitted,
            MatcherSnapshot::Sharded(s) => s.emitted,
            MatcherSnapshot::Bank(s) => s.emitted,
        }
    }

    /// Total events consumed when the snapshot was taken.
    pub fn consumed_events(&self) -> u64 {
        match self {
            MatcherSnapshot::Stream(s) => s.consumed_events(),
            MatcherSnapshot::Sharded(s) => s.next_id,
            MatcherSnapshot::Bank(s) => s.next_id,
        }
    }
}

/// Fingerprints everything that must agree between snapshot and restore
/// for the dynamic state to be meaningful: the compiled pattern (after
/// any analyzer rewrites), the schema, and the options that change
/// matching behavior. Partitioning/threading knobs are excluded — they
/// affect *where* work runs, not what a shard's state means.
/// `prefix_member` marks a matcher whose Ω holds only pool-injected
/// runs (spawning disabled); its state is not interchangeable with an
/// independent matcher's.
pub(crate) fn matcher_fingerprint(
    automaton: &Automaton,
    options: &MatcherOptions,
    prefix_member: bool,
) -> u64 {
    let compiled = automaton.pattern();
    let tag = format!(
        "{}\n{}\n{:?}/{:?}/{:?}/flush={}/precheck={}/max_inst={:?}{}",
        compiled.pattern(),
        compiled.schema(),
        options.filter,
        options.selection,
        options.semantics,
        options.flush_at_end,
        options.type_precheck,
        options.max_instances,
        if prefix_member { "/prefix-member" } else { "" },
    );
    fnv1a(tag.as_bytes())
}

/// Compatibility class of a matcher's behavior-relevant options: two
/// patterns may share execution structure only when their keys agree.
/// Same field set as [`matcher_fingerprint`] minus pattern and schema.
pub(crate) fn options_compat(options: &MatcherOptions) -> u64 {
    let tag = format!(
        "{:?}/{:?}/{:?}/flush={}/precheck={}/max_inst={:?}",
        options.filter,
        options.selection,
        options.semantics,
        options.flush_at_end,
        options.type_precheck,
        options.max_instances,
    );
    fnv1a(tag.as_bytes())
}

/// FNV-1a, the same checksum the `ses-store` segment format uses.
pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MatchSemantics, StreamMatcher};
    use ses_event::{AttrType, CmpOp, Duration, Schema};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn pattern(within: i64) -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(within))
            .build()
            .unwrap()
    }

    fn fingerprint_of(p: &Pattern, options: MatcherOptions) -> u64 {
        let mut sm = StreamMatcher::with_options(p, &schema(), options).unwrap();
        sm.snapshot().fingerprint
    }

    #[test]
    fn fingerprint_separates_behavioral_changes() {
        let base = fingerprint_of(&pattern(5), MatcherOptions::default());
        // Same inputs → same fingerprint (stable across processes too:
        // pure FNV-1a over deterministic renderings).
        assert_eq!(base, fingerprint_of(&pattern(5), MatcherOptions::default()));
        // Different window, pattern, or semantics → different state.
        assert_ne!(base, fingerprint_of(&pattern(6), MatcherOptions::default()));
        assert_ne!(
            base,
            fingerprint_of(
                &pattern(5),
                MatcherOptions {
                    semantics: MatchSemantics::AllRuns,
                    ..MatcherOptions::default()
                }
            )
        );
    }

    #[test]
    fn fnv1a_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
