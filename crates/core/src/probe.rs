//! Zero-cost instrumentation hooks for the execution engine.
//!
//! The engine is generic over a [`Probe`]. The default [`NoProbe`] has
//! empty inline methods that the optimizer removes entirely, so production
//! matching pays nothing; the experiment harness supplies a counting probe
//! (`ses-metrics`) to measure the quantities the paper reports — peak
//! `|Ω|`, instance creations, transition evaluations, filter decisions.

/// Engine instrumentation callbacks. All methods default to no-ops.
pub trait Probe {
    /// An input event was read from the relation.
    #[inline]
    fn event_read(&mut self) {}

    /// The §4.5 filter dropped the event before instance iteration.
    #[inline]
    fn event_filtered(&mut self) {}

    /// A fresh instance was created in the start state (Algorithm 1,
    /// line 4).
    #[inline]
    fn instance_spawned(&mut self) {}

    /// An instance branched due to nondeterminism (more than one
    /// transition fired for the same instance and event).
    #[inline]
    fn instance_branched(&mut self) {}

    /// An instance expired (its window exceeded `τ`).
    #[inline]
    fn instance_expired(&mut self) {}

    /// A transition's condition set was evaluated.
    #[inline]
    fn transition_evaluated(&mut self) {}

    /// A transition fired.
    #[inline]
    fn transition_taken(&mut self) {}

    /// An accepting instance emitted its buffer as a raw match.
    #[inline]
    fn match_emitted(&mut self) {}

    /// `|Ω|` after fully processing one event — the quantity plotted in
    /// the paper's Figures 11 and 12 is the maximum over these samples.
    #[inline]
    fn omega(&mut self, _n: usize) {}

    /// The streaming matcher evicted `_n` events from its relation.
    #[inline]
    fn events_evicted(&mut self, _n: usize) {}

    /// Events retained by the streaming matcher after one push —
    /// bounded-memory operation means the maximum over these samples
    /// stays flat as the stream grows.
    #[inline]
    fn retained_events(&mut self, _n: usize) {}

    /// The §4.5 event pre-filter resolved its mode: `requested` is what
    /// the options asked for, `effective` what actually runs (they differ
    /// when some variable lacks a constant condition and the filter
    /// silently downgrades to `Off` — the analyzer's `SES003`). Fired once
    /// per execution/stream construction.
    #[inline]
    fn filter_mode(&mut self, _requested: crate::FilterMode, _effective: crate::FilterMode) {}

    /// Partitioned execution split the input into `_n` partitions. Fired
    /// once per partitioned run, before any partition executes.
    #[inline]
    fn partitions(&mut self, _n: usize) {}

    /// One partition holds `_n` events. Fired once per partition, in
    /// partition order — the spread over these samples is the key skew.
    #[inline]
    fn partition_events(&mut self, _n: usize) {}

    /// Time-sliced execution split the input into `_n` overlapping time
    /// slices. Fired once per time-sliced run, before any slice executes.
    #[inline]
    fn slices(&mut self, _n: usize) {}

    /// One time slice holds `_n` events (own region *plus* the `τ`
    /// overlap). Fired once per slice, in chronological slice order —
    /// the sum over these samples minus the relation length is the
    /// duplicated overlap work.
    #[inline]
    fn slice_events(&mut self, _n: usize) {}

    /// A pattern bank routed one event into `_n` pattern matchers (the
    /// event satisfied those patterns' admission predicates). Fired once
    /// per bank push; with the predicate index off this is always the
    /// bank's pattern count.
    #[inline]
    fn index_hits(&mut self, _n: usize) {}

    /// A pattern bank skipped `_n` pattern matchers for one event (they
    /// received only a watermark heartbeat). Fired once per bank push;
    /// always zero with the predicate index off.
    #[inline]
    fn index_skips(&mut self, _n: usize) {}

    /// The caller observed `_n` heap allocations attributable to the
    /// preceding unit of work (typically one stream push). The engine
    /// never fires this itself — a harness that owns a counting global
    /// allocator reports deltas through it so per-event allocation
    /// rates flow through the same probe plumbing as every other
    /// measure (the `throughput` bench's `allocations_per_event`).
    #[inline]
    fn allocations(&mut self, _n: u64) {}

    /// A durability checkpoint was persisted: `_bytes` written to disk,
    /// `_nanos` spent snapshotting, serializing, and syncing it. Fired
    /// by the checkpoint driver once per saved checkpoint; the ratio of
    /// total checkpoint time to run time is the overhead the
    /// `durability` bench plots against the checkpoint interval.
    #[inline]
    fn checkpoint_saved(&mut self, _bytes: u64, _nanos: u64) {}

    /// An ingest front-end enqueued one event onto a bounded queue that
    /// now holds `_depth` entries. Fired per enqueue by queue owners
    /// (the match server's router); the maximum over these samples is
    /// the queue's high-water mark — the backpressure quantity the
    /// server's `stats` verb reports.
    #[inline]
    fn ingest_enqueued(&mut self, _depth: usize) {}

    /// An ingest front-end shed `_n` events because a bounded queue was
    /// full and the load-shedding policy rejects instead of blocking.
    #[inline]
    fn ingest_shed(&mut self, _n: usize) {}
}

/// The no-op probe: compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {}

impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn event_read(&mut self) {
        (**self).event_read();
    }
    #[inline]
    fn event_filtered(&mut self) {
        (**self).event_filtered();
    }
    #[inline]
    fn instance_spawned(&mut self) {
        (**self).instance_spawned();
    }
    #[inline]
    fn instance_branched(&mut self) {
        (**self).instance_branched();
    }
    #[inline]
    fn instance_expired(&mut self) {
        (**self).instance_expired();
    }
    #[inline]
    fn transition_evaluated(&mut self) {
        (**self).transition_evaluated();
    }
    #[inline]
    fn transition_taken(&mut self) {
        (**self).transition_taken();
    }
    #[inline]
    fn match_emitted(&mut self) {
        (**self).match_emitted();
    }
    #[inline]
    fn omega(&mut self, n: usize) {
        (**self).omega(n);
    }
    #[inline]
    fn events_evicted(&mut self, n: usize) {
        (**self).events_evicted(n);
    }
    #[inline]
    fn retained_events(&mut self, n: usize) {
        (**self).retained_events(n);
    }
    #[inline]
    fn filter_mode(&mut self, requested: crate::FilterMode, effective: crate::FilterMode) {
        (**self).filter_mode(requested, effective);
    }
    #[inline]
    fn partitions(&mut self, n: usize) {
        (**self).partitions(n);
    }
    #[inline]
    fn partition_events(&mut self, n: usize) {
        (**self).partition_events(n);
    }
    #[inline]
    fn slices(&mut self, n: usize) {
        (**self).slices(n);
    }
    #[inline]
    fn slice_events(&mut self, n: usize) {
        (**self).slice_events(n);
    }
    #[inline]
    fn index_hits(&mut self, n: usize) {
        (**self).index_hits(n);
    }
    #[inline]
    fn index_skips(&mut self, n: usize) {
        (**self).index_skips(n);
    }
    #[inline]
    fn allocations(&mut self, n: u64) {
        (**self).allocations(n);
    }
    #[inline]
    fn checkpoint_saved(&mut self, bytes: u64, nanos: u64) {
        (**self).checkpoint_saved(bytes, nanos);
    }
    #[inline]
    fn ingest_enqueued(&mut self, depth: usize) {
        (**self).ingest_enqueued(depth);
    }
    #[inline]
    fn ingest_shed(&mut self, n: usize) {
        (**self).ingest_shed(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        events: usize,
        omega_max: usize,
    }

    impl Probe for Counter {
        fn event_read(&mut self) {
            self.events += 1;
        }
        fn omega(&mut self, n: usize) {
            self.omega_max = self.omega_max.max(n);
        }
    }

    #[test]
    fn custom_probe_counts() {
        let mut c = Counter::default();
        c.event_read();
        c.event_read();
        c.omega(3);
        c.omega(1);
        assert_eq!(c.events, 2);
        assert_eq!(c.omega_max, 3);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counter::default();
        {
            let mut r: &mut Counter = &mut c;
            r.event_read();
            Probe::omega(&mut r, 7);
        }
        assert_eq!(c.events, 1);
        assert_eq!(c.omega_max, 7);
    }

    #[test]
    fn no_probe_is_usable() {
        let mut p = NoProbe;
        p.event_read();
        p.omega(5);
        p.match_emitted();
    }
}
