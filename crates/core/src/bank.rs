//! Multi-pattern shared execution: N patterns, one stream, one push.
//!
//! A [`PatternBank`] registers N compiled patterns against a single
//! event stream. Each event is pushed **once**; an event→pattern
//! predicate index ([`ses_pattern::PatternIndex`]) built from the
//! patterns' analyzer-derived constant constraints routes it to the
//! patterns it could possibly advance, and every other pattern receives
//! only a watermark heartbeat ([`StreamMatcher::advance_watermark`]) so
//! its pending matches finalize and its window evicts on time — the
//! same mechanism the sharded matcher uses for idle shards.
//!
//! # Why skipping is sound
//!
//! The index admits an event to a pattern when it fully satisfies the
//! constant-condition conjunction of at least one variable or negation.
//! An event admitted by *no* group can neither bind (every transition
//! evaluates all of its variable's conditions) nor kill (a negation
//! whose constant conjunction fails cannot be violated), so the only
//! thing the pattern must learn from it is the time: the heartbeat
//! performs exactly the sweep/adjudicate/evict work a push at that
//! timestamp would, and a push at a timestamp equal to the watermark is
//! still accepted — admitted ties are never rejected. Per-pattern
//! output is therefore identical — matches *and* order — to N
//! independent [`StreamMatcher`]s each fed every event, which is
//! precisely what `tests/bank_vs_independent.rs` proves differentially.
//! The full argument lives in `docs/patternbank.md`.
//!
//! # Structural sharing
//!
//! With [`PatternBankBuilder::with_sharing`] the bank additionally runs
//! a cross-pattern static analysis ([`ses_pattern::SharingPlan`]) over
//! the compiled patterns and shares execution structure two ways:
//!
//! * **Deduplication** — a pattern whose declaration-order evaluation
//!   form and execution options are identical to an earlier one runs no
//!   automaton at all; it re-emits its leader's matches (already in
//!   global event ids) push-for-push. Identical evaluation form means
//!   identical pushes produce identical emissions, so the re-emitted
//!   stream *is* the member's own answer.
//! * **Shared prefixes** — patterns agreeing on their leading event
//!   sets (same sets, same conditions over those sets' variables, same
//!   window τ) evaluate the common prefix **once**: a *pool* matcher
//!   built from the group leader's automaton simulates the prefix for
//!   the whole group, and after every push the instances that arrived
//!   at the prefix-boundary state are harvested and injected into each
//!   member (which runs with start-state spawning suppressed, see
//!   [`crate::ExecOptions::spawn_start`]). A prefix group advances in
//!   lockstep — an event admitted to *any* member is pushed to the pool
//!   and to *every* member — so pool-local and member-local event ids
//!   coincide and harvested buffers transfer verbatim.
//!
//! Sharing never changes output: `tests/bank_vs_independent.rs` runs
//! the same differential with sharing on, and the soundness argument
//! (prefix states only evaluate shared conditions; the boundary is
//! harvested before the pool could evolve it with *its* suffix; the
//! engine emits only on expiry or flush, never on reaching the accept
//! state) lives in `docs/patternbank.md` next to the index argument.
//! Per-pattern *statistics* may differ under sharing (a prefix member's
//! hits include lockstep pushes; a dedup member reports its leader's
//! matcher counters).
//!
//! # Event ids
//!
//! Matches are reported in **global** event ids (arrival order across
//! the whole stream), even though each pattern's relation holds only
//! the events admitted to it — the same local→global id remap the
//! sharded matcher uses.

use ses_event::{Event, EventError, EventId, Schema, Timestamp, Value};
use ses_pattern::{IndexClass, Pattern, PatternIndex, ShareConstraint, ShareRole, SharingPlan};

use crate::buffer::Buffer;
use crate::error::CoreError;
use crate::matcher::MatcherOptions;
use crate::matches::Match;
use crate::probe::{NoProbe, Probe};
use crate::snapshot::{options_compat, BankPatternSnapshot, BankRole, BankSnapshot};
use crate::state::{StateId, StateSet};
use crate::stream::StreamMatcher;

/// How a registered pattern executes.
#[derive(Debug)]
enum Exec {
    /// Runs its own stream matcher (boxed: the matcher dwarfs the
    /// dedup variant).
    Own(Box<StreamMatcher>),
    /// Evaluation-identical to the pattern at `leader`; runs nothing
    /// and re-emits the leader's matches.
    Dedup { leader: usize },
}

/// One registered pattern: its execution mode plus the map from its
/// local event ids back to global ones, and the routing counters.
#[derive(Debug)]
struct Entry {
    name: String,
    exec: Exec,
    /// Global ids of the events admitted to this pattern, indexed by
    /// `local - base`. Empty for a dedup member.
    ids: Vec<EventId>,
    /// The pattern relation's first retained local index; `ids` is
    /// pruned to it whenever the matcher evicts.
    base: usize,
    /// Peak `|Ω|` observed on this pattern (including injected forks).
    peak_omega: usize,
    /// Events routed into the matcher (for a dedup member: events the
    /// index admitted to it).
    hits: u64,
    /// Events skipped (heartbeat only).
    skips: u64,
}

/// A shared-prefix pool: one matcher simulating the common prefix for a
/// whole group, plus where to harvest and where to inject.
#[derive(Debug)]
struct Pool {
    /// A clone of the group leader's automaton, spawning normally. Its
    /// instances never pass the prefix boundary (harvested first) and
    /// it never emits (strict-prefix states are never accepting).
    sm: StreamMatcher,
    /// The boundary state (all prefix variables bound) in the pool's
    /// automaton.
    boundary: StateId,
    /// Participating pattern indices (including the leader).
    members: Vec<usize>,
    /// The boundary state in each member's automaton, aligned with
    /// `members`.
    member_boundary: Vec<StateId>,
}

/// Rewrites a pattern-local match into global event ids.
fn remap(ids: &[EventId], base: usize, m: &Match) -> Match {
    Match::from_bindings(
        m.bindings()
            .iter()
            .map(|&(v, e)| (v, ids[e.index() - base]))
            .collect(),
    )
}

impl Entry {
    /// `Some(leader)` iff this pattern is deduplicated into another.
    fn leader(&self) -> Option<usize> {
        match self.exec {
            Exec::Dedup { leader } => Some(leader),
            Exec::Own(_) => None,
        }
    }

    /// The entry's own matcher, if it runs one.
    fn own(&self) -> Option<&StreamMatcher> {
        match &self.exec {
            Exec::Own(sm) => Some(sm),
            Exec::Dedup { .. } => None,
        }
    }

    /// Pushes the event into this entry's own matcher, remapping the
    /// finalized matches to global ids.
    fn push_own<P: Probe>(
        &mut self,
        ts: Timestamp,
        values: Vec<Value>,
        global: usize,
        probe: &mut P,
    ) -> Result<Vec<Match>, EventError> {
        self.ids.push(EventId::from(global));
        let Exec::Own(sm) = &mut self.exec else {
            unreachable!("push_own on a dedup member");
        };
        let emitted = sm.push_with_probe(ts, values, probe)?;
        self.hits += 1;
        self.peak_omega = self.peak_omega.max(sm.active_instances());
        let out = emitted
            .iter()
            .map(|m| remap(&self.ids, self.base, m))
            .collect();
        self.prune();
        Ok(out)
    }

    /// Pushes an event the bank's index proved cannot bind here —
    /// storing it so local event ids stay aligned with the entry's
    /// prefix pool, advancing time, but never running the engine.
    /// Remaps whatever that finalizes to global ids.
    fn skip_own<P: Probe>(
        &mut self,
        ts: Timestamp,
        values: Vec<Value>,
        global: usize,
        probe: &mut P,
    ) -> Result<Vec<Match>, EventError> {
        self.ids.push(EventId::from(global));
        let Exec::Own(sm) = &mut self.exec else {
            unreachable!("skip_own on a dedup member");
        };
        let emitted = sm.skip_event_with_probe(ts, values, probe)?;
        let out = emitted
            .iter()
            .map(|m| remap(&self.ids, self.base, m))
            .collect();
        self.prune();
        Ok(out)
    }

    /// Heartbeats this entry's own matcher, remapping whatever that
    /// finalizes. Does not touch the hit/skip counters.
    fn beat_own<P: Probe>(&mut self, ts: Timestamp, probe: &mut P) -> Vec<Match> {
        let Exec::Own(sm) = &mut self.exec else {
            unreachable!("beat_own on a dedup member");
        };
        let beat = sm.advance_watermark_with_probe(ts, probe);
        let out = beat
            .iter()
            .map(|m| remap(&self.ids, self.base, m))
            .collect();
        self.prune();
        out
    }

    /// Drops id-map entries for events the matcher has evicted.
    fn prune(&mut self) {
        let Exec::Own(sm) = &self.exec else { return };
        let first = sm.relation().first_index();
        if first > self.base {
            self.ids.drain(..first - self.base);
            self.base = first;
        }
    }
}

/// Point-in-time routing and matching statistics for one registered
/// pattern — the rows `ses-cli bank --stats` prints. A dedup member
/// reports its leader's matcher counters (they share one matcher) with
/// its own hit/skip routing counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternStats {
    /// The name the pattern was registered under.
    pub name: String,
    /// How the predicate index routes events to this pattern.
    pub class: IndexClass,
    /// Events pushed into the pattern's matcher by its own index
    /// admission.
    pub hits: u64,
    /// Events skipped: watermark heartbeat only, or — for prefix
    /// members — an alignment push a sibling's admission forced, which
    /// stores the event without running this pattern's engine.
    pub skips: u64,
    /// Matches finalized by pushes so far.
    pub emitted: usize,
    /// Current `|Ω|`.
    pub active_instances: usize,
    /// Peak `|Ω|` observed.
    pub peak_omega: usize,
    /// Events currently retained in the pattern's relation.
    pub retained_events: usize,
    /// Events evicted from the pattern's relation.
    pub evicted_events: usize,
}

/// Computes the sharing plan for a set of built matchers: the pattern
/// the engine actually evaluates (after analyzer rewrites), constrained
/// by options compatibility and compile-time satisfiability.
fn compute_plan(matchers: &[(String, StreamMatcher)]) -> SharingPlan {
    let patterns: Vec<&Pattern> = matchers
        .iter()
        .map(|(_, sm)| sm.compiled().pattern())
        .collect();
    let constraints: Vec<ShareConstraint> = matchers
        .iter()
        .map(|(_, sm)| ShareConstraint {
            compat: options_compat(sm.options()),
            // The stream matcher short-circuits unsatisfiable patterns
            // (no engine runs), so they must not anchor a prefix pool.
            allow_prefix: sm.compiled().is_satisfiable(),
        })
        .collect();
    SharingPlan::compute(&patterns, &constraints)
}

/// The per-pattern roles a snapshot records, derived from a plan.
fn derive_roles(plan: &SharingPlan, n: usize) -> Vec<BankRole> {
    (0..n)
        .map(|i| match plan.roles[i] {
            ShareRole::DedupMember { leader } => BankRole::DedupMember {
                leader: leader as u32,
            },
            _ => match plan.prefix_group_of(i) {
                Some(g) => BankRole::PrefixMember { pool: g as u32 },
                None => BankRole::Plain,
            },
        })
        .collect()
}

/// Builds the predicate index. A dedup member is indexed by its
/// *leader's* compiled pattern — the one whose emissions it re-emits —
/// so its routing statistics describe the automaton answering for it.
fn build_index(matchers: &[(String, StreamMatcher)], plan: &SharingPlan) -> PatternIndex {
    PatternIndex::build((0..matchers.len()).map(|i| {
        let src = match plan.roles[i] {
            ShareRole::DedupMember { leader } => leader,
            _ => i,
        };
        matchers[src].1.compiled()
    }))
}

/// Turns built matchers plus a plan into runtime entries and pools:
/// dedup members drop their matcher, prefix members stop spawning, and
/// each prefix group gets a pool cloned from its leader's automaton.
fn assemble(
    matchers: Vec<(String, StreamMatcher)>,
    plan: &SharingPlan,
    evict: bool,
) -> (Vec<Entry>, Vec<Pool>) {
    let mut sms: Vec<(String, Option<StreamMatcher>)> = matchers
        .into_iter()
        .map(|(name, sm)| (name, Some(sm)))
        .collect();
    let mut pools = Vec::with_capacity(plan.prefix_groups.len());
    for group in &plan.prefix_groups {
        // Shared leading variables are `VarId`s 0..vars in every member
        // (declaration order), so the boundary state — all prefix
        // variables bound — is the same bitset everywhere.
        debug_assert!(group.vars < 64, "a proper prefix leaves a suffix variable");
        let boundary_set = StateSet::from_bits((1u64 << group.vars) - 1);
        let leader = sms[group.leader]
            .1
            .as_ref()
            .expect("prefix leader runs its own automaton");
        let sm =
            StreamMatcher::from_automaton(leader.automaton().clone(), leader.options().clone())
                .with_eviction(evict);
        let boundary = sm
            .automaton()
            .state_for(boundary_set)
            .expect("prefix boundary is a state of the leader's automaton");
        let member_boundary = group
            .members
            .iter()
            .map(|&m| {
                sms[m]
                    .1
                    .as_ref()
                    .expect("prefix members run their own automata")
                    .automaton()
                    .state_for(boundary_set)
                    .expect("prefix boundary is a state of every member's automaton")
            })
            .collect();
        for &m in &group.members {
            sms[m].1.as_mut().unwrap().set_spawn(false);
        }
        pools.push(Pool {
            sm,
            boundary,
            members: group.members.clone(),
            member_boundary,
        });
    }
    let entries = sms
        .into_iter()
        .zip(&plan.roles)
        .map(|((name, sm), role)| {
            let exec = match role {
                ShareRole::DedupMember { leader } => Exec::Dedup { leader: *leader },
                _ => Exec::Own(Box::new(sm.expect("non-dedup patterns keep their matcher"))),
            };
            Entry {
                name,
                exec,
                ids: Vec::new(),
                base: 0,
                peak_omega: 0,
                hits: 0,
                skips: 0,
            }
        })
        .collect();
    (entries, pools)
}

/// Builder for a [`PatternBank`]; see [`PatternBank::builder`].
#[derive(Debug)]
pub struct PatternBankBuilder {
    schema: Schema,
    entries: Vec<(String, StreamMatcher)>,
    evict: bool,
    use_index: bool,
    share: bool,
}

impl PatternBankBuilder {
    /// Compiles `pattern` against the bank's schema and registers it
    /// under `name`. Patterns are identified by their zero-based
    /// registration order in push results and statistics.
    pub fn register(
        mut self,
        name: impl Into<String>,
        pattern: &Pattern,
        options: MatcherOptions,
    ) -> Result<PatternBankBuilder, CoreError> {
        let sm = StreamMatcher::with_options(pattern, &self.schema, options)?;
        self.entries.push((name.into(), sm));
        Ok(self)
    }

    /// Enables or disables watermark eviction on every pattern (on by
    /// default; see [`StreamMatcher::with_eviction`]).
    pub fn with_eviction(mut self, evict: bool) -> PatternBankBuilder {
        self.evict = evict;
        self
    }

    /// Enables or disables the predicate index (on by default). With
    /// the index off every event is pushed to every pattern — the
    /// baseline the `patternbank` bench compares against, with
    /// identical output either way.
    pub fn with_index(mut self, on: bool) -> PatternBankBuilder {
        self.use_index = on;
        self
    }

    /// Enables or disables structural sharing (off by default): at
    /// build time a [`SharingPlan`] is computed over the compiled
    /// patterns, deduplicating evaluation-identical ones and running
    /// common sequencing prefixes once per group (see the module docs).
    /// Output is identical either way; only statistics may differ.
    pub fn with_sharing(mut self, on: bool) -> PatternBankBuilder {
        self.share = on;
        self
    }

    /// Builds the bank, constructing the sharing plan (if enabled) and
    /// the predicate index from the compiled patterns exactly as the
    /// matchers will run them (after any analyzer rewrites).
    pub fn build(self) -> PatternBank {
        let matchers: Vec<(String, StreamMatcher)> = self
            .entries
            .into_iter()
            .map(|(name, sm)| (name, sm.with_eviction(self.evict)))
            .collect();
        let plan = if self.share && matchers.len() > 1 {
            compute_plan(&matchers)
        } else {
            SharingPlan::trivial(matchers.len())
        };
        let index = build_index(&matchers, &plan);
        let (entries, pools) = assemble(matchers, &plan, self.evict);
        PatternBank {
            entries,
            pools,
            plan,
            index,
            use_index: self.use_index,
            evict: self.evict,
            schema: self.schema,
            watermark: None,
            last_ts: None,
            next_id: 0,
            ties: 0,
            emitted: 0,
        }
    }
}

/// N patterns sharing one event stream: push each event once, receive
/// per-pattern finalized matches.
///
/// ```
/// use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
/// use ses_pattern::Pattern;
/// use ses_core::{MatcherOptions, PatternBank};
///
/// let schema = Schema::builder().attr("L", AttrType::Str).build().unwrap();
/// let pair = |x: &str, y: &str| {
///     Pattern::builder()
///         .set(|s| s.var("a").var("b"))
///         .cond_const("a", "L", CmpOp::Eq, x)
///         .cond_const("b", "L", CmpOp::Eq, y)
///         .within(Duration::ticks(5))
///         .build()
///         .unwrap()
/// };
/// let mut bank = PatternBank::builder(&schema)
///     .register("ab", &pair("A", "B"), MatcherOptions::default())
///     .unwrap()
///     .register("cd", &pair("C", "D"), MatcherOptions::default())
///     .unwrap()
///     .build();
/// for (t, l) in [(0, "A"), (1, "B"), (2, "C"), (3, "D")] {
///     bank.push(Timestamp::new(t), [Value::from(l)]).unwrap();
/// }
/// let out = bank.finish();
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[0].0, 0); // pattern "ab" matched
/// assert_eq!(out[1].0, 1); // pattern "cd" matched
/// ```
#[derive(Debug)]
pub struct PatternBank {
    entries: Vec<Entry>,
    /// Shared-prefix pools, aligned with `plan.prefix_groups`.
    pools: Vec<Pool>,
    /// The structural-sharing plan the bank executes (trivial when
    /// sharing is off or nothing shares).
    plan: SharingPlan,
    index: PatternIndex,
    use_index: bool,
    /// Whether watermark eviction is enabled on every pattern — the
    /// setting new [`PatternBank::subscribe`] registrations inherit.
    evict: bool,
    schema: Schema,
    /// The bank's clock: max of pushed and heartbeat timestamps; pushes
    /// behind it are rejected.
    watermark: Option<Timestamp>,
    /// Timestamp of the last pushed event (may trail the watermark).
    last_ts: Option<Timestamp>,
    /// Next global event id (= events consumed).
    next_id: usize,
    /// Events tied at `last_ts` — tracked explicitly because skipped
    /// events appear in no pattern's relation.
    ties: usize,
    /// Matches emitted by pushes and heartbeats so far.
    emitted: usize,
}

impl PatternBank {
    /// Starts building a bank over `schema`.
    pub fn builder(schema: &Schema) -> PatternBankBuilder {
        PatternBankBuilder {
            schema: schema.clone(),
            entries: Vec::new(),
            evict: true,
            use_index: true,
            share: false,
        }
    }

    /// Number of registered patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no pattern is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The names the patterns were registered under, in id order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Whether the predicate index is consulted on pushes.
    pub fn index_enabled(&self) -> bool {
        self.use_index
    }

    /// How the predicate index routes events to pattern `id`.
    pub fn index_class(&self, id: usize) -> IndexClass {
        self.index.class(id)
    }

    /// The structural-sharing plan the bank executes. Trivial unless
    /// the bank was built with [`PatternBankBuilder::with_sharing`] and
    /// the analysis found something to share.
    pub fn sharing_plan(&self) -> &SharingPlan {
        &self.plan
    }

    /// `true` iff any execution structure is actually shared.
    pub fn sharing_active(&self) -> bool {
        !self.plan.is_trivial()
    }

    /// Pushes one event (timestamps must be non-decreasing) and returns
    /// the matches this finalizes as `(pattern id, match)` pairs —
    /// grouped by pattern in registration order, each pattern's matches
    /// in its own emission order, with global event ids.
    pub fn push(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<Vec<(usize, Match)>, EventError> {
        self.push_with_probe(ts, values, &mut NoProbe)
    }

    /// [`PatternBank::push`] with an instrumentation probe. The probe
    /// observes the receiving matchers' engine events plus the bank's
    /// routing decisions ([`Probe::index_hits`] / [`Probe::index_skips`]).
    pub fn push_with_probe<P: Probe>(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
        probe: &mut P,
    ) -> Result<Vec<(usize, Match)>, EventError> {
        let values = values.into();
        self.schema.check_row(&values)?;
        if let Some(w) = self.watermark {
            if ts < w {
                return Err(EventError::OutOfOrder {
                    previous: w.ticks(),
                    got: ts.ticks(),
                });
            }
        }
        let event = Event::new(ts, values);
        let n = self.entries.len();
        let admitted: Vec<usize> = if self.use_index {
            self.index.admitted(&event)
        } else {
            (0..n).collect()
        };
        probe.index_hits(admitted.len());
        probe.index_skips(n - admitted.len());
        let mut routed = vec![false; n];
        for &i in &admitted {
            routed[i] = true;
        }
        // A prefix group advances in lockstep: an event admitted to any
        // member is pushed to the pool and to every member, keeping
        // their local event ids aligned so harvested prefix buffers
        // transfer verbatim. For the members this is sound for the same
        // reason skipping is: an event no member's index admits cannot
        // bind anywhere in the group.
        let mut pushed = routed.clone();
        let mut pool_pushed = vec![false; self.pools.len()];
        for (pi, pool) in self.pools.iter().enumerate() {
            if pool.members.iter().any(|&m| routed[m]) {
                pool_pushed[pi] = true;
                for &m in &pool.members {
                    pushed[m] = true;
                }
            }
        }
        // Pools run first: simulate the shared prefix, then harvest the
        // instances that arrived at the boundary *before* the pool
        // could evolve them further with its own suffix transitions.
        // An event some member's index did *not* admit provably binds
        // no variable of that member — in particular none of the
        // shared prefix variables — so the pool only stores it for id
        // alignment (`skip_event_with_probe`) instead of running its
        // engine.
        let mut forks: Vec<Vec<Buffer>> = Vec::with_capacity(self.pools.len());
        for (pi, pool) in self.pools.iter_mut().enumerate() {
            if pool_pushed[pi] {
                // Cannot fail: the row was checked against the shared
                // schema, and the pool's watermark never exceeds the
                // bank's (pushes and heartbeats move them together).
                let emitted = if pool.members.iter().all(|&m| routed[m]) {
                    pool.sm.push(ts, event.values().to_vec())?
                } else {
                    pool.sm
                        .skip_event_with_probe(ts, event.values().to_vec(), &mut NoProbe)?
                };
                debug_assert!(emitted.is_empty(), "prefix pool emitted a match");
                forks.push(pool.sm.take_instances_at(pool.boundary));
            } else {
                let beat = pool.sm.advance_watermark(ts);
                debug_assert!(beat.is_empty(), "prefix pool emitted a match");
                forks.push(Vec::new());
            }
        }
        let mut out = Vec::new();
        // Per-pattern deltas in registration order; a dedup member
        // clones its leader's (the plan guarantees leader < member).
        let mut deltas: Vec<Vec<Match>> = Vec::with_capacity(n);
        for i in 0..n {
            let delta = match self.entries[i].leader() {
                Some(leader) => {
                    let entry = &mut self.entries[i];
                    if routed[i] {
                        entry.hits += 1;
                    } else {
                        entry.skips += 1;
                    }
                    deltas[leader].clone()
                }
                None => {
                    if routed[i] {
                        self.entries[i].push_own(
                            ts,
                            event.values().to_vec(),
                            self.next_id,
                            &mut *probe,
                        )?
                    } else if pushed[i] {
                        // Lockstep alignment only: a sibling's index
                        // admission forced the push, but this entry's
                        // own index proved the event binds nothing
                        // here, so the engine need not run.
                        let entry = &mut self.entries[i];
                        entry.skips += 1;
                        entry.skip_own(ts, event.values().to_vec(), self.next_id, &mut *probe)?
                    } else {
                        let entry = &mut self.entries[i];
                        entry.skips += 1;
                        entry.beat_own(ts, &mut *probe)
                    }
                }
            };
            out.extend(delta.iter().cloned().map(|m| (i, m)));
            deltas.push(delta);
        }
        // Inject the boundary forks *after* the members' own pushes: an
        // injected run bound its last prefix variable to this event and
        // must not consume it again.
        for (pool, forkbuf) in self.pools.iter().zip(forks) {
            if forkbuf.is_empty() {
                continue;
            }
            for (&m, &mb) in pool.members.iter().zip(&pool.member_boundary) {
                let entry = &mut self.entries[m];
                let Exec::Own(sm) = &mut entry.exec else {
                    unreachable!("prefix members run their own automata");
                };
                sm.inject_instances_at(mb, forkbuf.iter().cloned());
                entry.peak_omega = entry.peak_omega.max(sm.active_instances());
            }
        }
        self.ties = if self.last_ts == Some(ts) {
            self.ties + 1
        } else {
            1
        };
        self.watermark = Some(ts);
        self.last_ts = Some(ts);
        self.next_id += 1;
        self.emitted += out.len();
        Ok(out)
    }

    /// Advances every pattern's watermark to `ts` without pushing an
    /// event — finalizing and evicting exactly as a push at `ts` would —
    /// and returns the matches that finalizes. No-op for patterns
    /// already at or past `ts`. Subsequent pushes before `ts` are
    /// rejected as out of order.
    pub fn advance_watermark(&mut self, ts: Timestamp) -> Vec<(usize, Match)> {
        // Heartbeats never create boundary arrivals (the sweep only
        // retires instances), so there is nothing to harvest.
        for pool in &mut self.pools {
            let beat = pool.sm.advance_watermark(ts);
            debug_assert!(beat.is_empty(), "prefix pool emitted a match");
        }
        let mut out = Vec::new();
        let mut deltas: Vec<Vec<Match>> = Vec::with_capacity(self.entries.len());
        for i in 0..self.entries.len() {
            let delta = match self.entries[i].leader() {
                Some(leader) => deltas[leader].clone(),
                None => self.entries[i].beat_own(ts, &mut NoProbe),
            };
            out.extend(delta.iter().cloned().map(|m| (i, m)));
            deltas.push(delta);
        }
        if self.watermark.is_some_and(|w| ts > w) {
            self.watermark = Some(ts);
        }
        self.emitted += out.len();
        out
    }

    /// Ends the stream: flushes and adjudicates every pattern's
    /// remaining state and returns the matches not already emitted by
    /// pushes — together with those, each pattern's exact batch answer.
    pub fn finish(self) -> Vec<(usize, Match)> {
        let PatternBank { entries, pools, .. } = self;
        for pool in pools {
            let leftovers = pool.sm.finish();
            debug_assert!(leftovers.is_empty(), "prefix pool emitted a match");
        }
        let mut finished: Vec<Vec<Match>> = Vec::with_capacity(entries.len());
        for entry in entries {
            let Entry {
                exec, ids, base, ..
            } = entry;
            let fin: Vec<Match> = match exec {
                Exec::Own(sm) => sm.finish().iter().map(|m| remap(&ids, base, m)).collect(),
                Exec::Dedup { leader } => finished[leader].clone(),
            };
            finished.push(fin);
        }
        finished
            .into_iter()
            .enumerate()
            .flat_map(|(i, fin)| fin.into_iter().map(move |m| (i, m)))
            .collect()
    }

    /// The bank's clock: the latest pushed or heartbeat timestamp.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Matches emitted by pushes and heartbeats so far (excludes
    /// [`PatternBank::finish`]).
    pub fn emitted_so_far(&self) -> usize {
        self.emitted
    }

    /// Events consumed so far (each counted once, however many patterns
    /// it was routed to).
    pub fn consumed_events(&self) -> usize {
        self.next_id
    }

    /// Events a log replay from the last pushed timestamp must skip —
    /// the bank-level counterpart of
    /// [`StreamMatcher::ties_at_watermark`]. Tracked explicitly: skipped
    /// events appear in no pattern's relation, so no relation can
    /// recover the count.
    pub fn ties_at_watermark(&self) -> usize {
        if self.last_ts.is_some() {
            self.ties
        } else {
            0
        }
    }

    /// Active instances summed over all patterns (and prefix pools).
    pub fn active_instances(&self) -> usize {
        self.entries
            .iter()
            .filter_map(|e| e.own().map(StreamMatcher::active_instances))
            .sum::<usize>()
            + self
                .pools
                .iter()
                .map(|p| p.sm.active_instances())
                .sum::<usize>()
    }

    /// Events retained, summed over all patterns and prefix pools (an
    /// event admitted to k matchers is counted k times).
    pub fn retained_events(&self) -> usize {
        self.entries
            .iter()
            .filter_map(|e| e.own().map(StreamMatcher::retained_events))
            .sum::<usize>()
            + self
                .pools
                .iter()
                .map(|p| p.sm.retained_events())
                .sum::<usize>()
    }

    /// Events pushed into matchers, summed over all patterns — the
    /// quantity the index exists to reduce (without it this is
    /// `patterns × events`).
    pub fn total_hits(&self) -> u64 {
        self.entries.iter().map(|e| e.hits).sum()
    }

    /// Events skipped (heartbeat only), summed over all patterns.
    pub fn total_skips(&self) -> u64 {
        self.entries.iter().map(|e| e.skips).sum()
    }

    /// Routing and matching statistics per pattern, in id order.
    pub fn stats(&self) -> Vec<PatternStats> {
        (0..self.entries.len())
            .map(|i| {
                let e = &self.entries[i];
                // A dedup member's matcher-derived numbers come from the
                // automaton answering for it.
                let (sm, peak) = match e.leader() {
                    Some(leader) => {
                        let l = &self.entries[leader];
                        (
                            l.own().expect("dedup leaders run their own automata"),
                            l.peak_omega,
                        )
                    }
                    None => (
                        e.own().expect("non-dedup patterns run their own automata"),
                        e.peak_omega,
                    ),
                };
                PatternStats {
                    name: e.name.clone(),
                    class: self.index.class(i),
                    hits: e.hits,
                    skips: e.skips,
                    emitted: sm.emitted_so_far(),
                    active_instances: sm.active_instances(),
                    peak_omega: peak,
                    retained_events: sm.retained_events(),
                    evicted_events: sm.evicted_events(),
                }
            })
            .collect()
    }

    /// Captures the complete dynamic state of every pattern (and prefix
    /// pool) plus the bank's routing bookkeeping under one manifest.
    /// Unshared banks record all-`Plain` roles and no pools, keeping
    /// their serialized layout unchanged.
    pub fn snapshot(&mut self) -> BankSnapshot {
        let roles = derive_roles(&self.plan, self.entries.len());
        BankSnapshot {
            watermark: self.watermark,
            last_ts: self.last_ts,
            next_id: self.next_id as u64,
            ties: self.ties as u64,
            emitted: self.emitted as u64,
            use_index: self.use_index,
            patterns: self
                .entries
                .iter_mut()
                .map(|e| BankPatternSnapshot {
                    name: e.name.clone(),
                    matcher: match &mut e.exec {
                        Exec::Own(sm) => Some(sm.snapshot()),
                        Exec::Dedup { .. } => None,
                    },
                    ids: e.ids.clone(),
                    base: e.base as u64,
                    peak_omega: e.peak_omega as u64,
                    hits: e.hits,
                    skips: e.skips,
                })
                .collect(),
            roles,
            pools: self.pools.iter_mut().map(|p| p.sm.snapshot()).collect(),
        }
    }

    /// Rebuilds a bank from the `(name, pattern, options)` specs it was
    /// built with and a [`BankSnapshot`] taken from it. Specs must match
    /// the snapshot in count, order, and name; each pattern's
    /// fingerprint must agree; and for a snapshot taken under sharing,
    /// the plan recomputed from the specs must reproduce the recorded
    /// roles and pool count. Fails with [`CoreError::SnapshotMismatch`]
    /// on any disagreement. The index on/off setting is restored from
    /// the snapshot; sharing is re-enabled iff the snapshot recorded any
    /// shared structure.
    pub fn restore(
        specs: &[(String, Pattern, MatcherOptions)],
        schema: &Schema,
        snapshot: &BankSnapshot,
    ) -> Result<PatternBank, CoreError> {
        let mismatch = |reason: String| CoreError::SnapshotMismatch { reason };
        if specs.len() != snapshot.patterns.len() {
            return Err(mismatch(format!(
                "snapshot holds {} patterns, but {} were registered",
                snapshot.patterns.len(),
                specs.len()
            )));
        }
        if !snapshot.roles.is_empty() && snapshot.roles.len() != snapshot.patterns.len() {
            return Err(mismatch(format!(
                "snapshot carries {} sharing roles for {} patterns",
                snapshot.roles.len(),
                snapshot.patterns.len()
            )));
        }
        let mut matchers = Vec::with_capacity(specs.len());
        for (i, ((name, pattern, options), ps)) in specs.iter().zip(&snapshot.patterns).enumerate()
        {
            if *name != ps.name {
                return Err(mismatch(format!(
                    "pattern {i} is registered as `{name}`, but the snapshot calls it `{}`",
                    ps.name
                )));
            }
            matchers.push((
                name.clone(),
                StreamMatcher::with_options(pattern, schema, options.clone())?,
            ));
        }
        let shared = !snapshot.pools.is_empty()
            || snapshot.roles.iter().any(|r| !matches!(r, BankRole::Plain));
        let plan = if shared && matchers.len() > 1 {
            compute_plan(&matchers)
        } else {
            SharingPlan::trivial(matchers.len())
        };
        // The dynamic state only makes sense under the roles it was
        // captured in; the plan is deterministic, so recomputing it from
        // the same specs must reproduce them.
        let expected = derive_roles(&plan, matchers.len());
        if !snapshot.roles.is_empty() && snapshot.roles != expected {
            return Err(mismatch(
                "snapshot sharing roles disagree with the plan recomputed from the \
                 registered patterns"
                    .to_string(),
            ));
        }
        if snapshot.roles.is_empty() && expected.iter().any(|r| !matches!(r, BankRole::Plain)) {
            return Err(mismatch(
                "snapshot was taken without sharing, but the recomputed plan shares \
                 structure"
                    .to_string(),
            ));
        }
        if plan.prefix_groups.len() != snapshot.pools.len() {
            return Err(mismatch(format!(
                "snapshot holds {} prefix pools, but the recomputed plan needs {}",
                snapshot.pools.len(),
                plan.prefix_groups.len()
            )));
        }
        let index = build_index(&matchers, &plan);
        let (mut entries, mut pools) = assemble(matchers, &plan, true);
        for (entry, ps) in entries.iter_mut().zip(&snapshot.patterns) {
            let name = &entry.name;
            match (&mut entry.exec, &ps.matcher) {
                (Exec::Own(sm), Some(ms)) => {
                    sm.apply_snapshot(ms)
                        .map_err(|e| mismatch(format!("pattern `{name}`: {e}")))?;
                    if ps.ids.len() != sm.relation().len()
                        || ps.base as usize != sm.relation().first_index()
                    {
                        return Err(mismatch(format!(
                            "pattern `{name}`: id map covers {} events at base {}, but the \
                             relation retains {} at base {}",
                            ps.ids.len(),
                            ps.base,
                            sm.relation().len(),
                            sm.relation().first_index()
                        )));
                    }
                }
                (Exec::Own(_), None) => {
                    return Err(mismatch(format!(
                        "pattern `{name}` runs its own matcher, but the snapshot holds no \
                         matcher state for it"
                    )));
                }
                (Exec::Dedup { .. }, Some(_)) => {
                    return Err(mismatch(format!(
                        "pattern `{name}` deduplicates into its leader, but the snapshot \
                         carries matcher state for it"
                    )));
                }
                (Exec::Dedup { .. }, None) => {}
            }
            entry.ids = ps.ids.clone();
            entry.base = ps.base as usize;
            entry.peak_omega = ps.peak_omega as usize;
            entry.hits = ps.hits;
            entry.skips = ps.skips;
        }
        for (pool, ps) in pools.iter_mut().zip(&snapshot.pools) {
            pool.sm
                .apply_snapshot(ps)
                .map_err(|e| mismatch(format!("prefix pool: {e}")))?;
        }
        // Every pattern shares one eviction setting (the builder applies
        // it uniformly); recover it from any restored matcher so later
        // `subscribe` registrations inherit it.
        let evict = snapshot
            .patterns
            .iter()
            .find_map(|p| p.matcher.as_ref().map(|m| m.evict))
            .unwrap_or(true);
        Ok(PatternBank {
            entries,
            pools,
            plan,
            index,
            use_index: snapshot.use_index,
            evict,
            schema: schema.clone(),
            watermark: snapshot.watermark,
            last_ts: snapshot.last_ts,
            next_id: snapshot.next_id as usize,
            ties: snapshot.ties as usize,
            emitted: snapshot.emitted as usize,
        })
    }

    /// Registers a new pattern on a *running* bank — the subscription
    /// path a long-lived match server needs: the pattern starts matching
    /// at the bank's current watermark (it observes no earlier events)
    /// and the predicate index is rebuilt to route to it. Returns the
    /// new pattern's id (its position in push results and statistics).
    ///
    /// Live registration composes with the trivial sharing plan only: a
    /// bank actively executing dedup groups or prefix pools refuses
    /// (its plan and pools were computed over a closed pattern set), as
    /// does a duplicate name — names identify durable subscriptions, so
    /// reusing one would corrupt cursor-based resume.
    pub fn subscribe(
        &mut self,
        name: impl Into<String>,
        pattern: &Pattern,
        options: MatcherOptions,
    ) -> Result<usize, CoreError> {
        let name = name.into();
        let refuse = |reason: String| CoreError::Subscription { reason };
        if self.sharing_active() {
            return Err(refuse(
                "the bank executes a structural sharing plan; live registration \
                 requires sharing off"
                    .to_string(),
            ));
        }
        if self.entries.iter().any(|e| e.name == name) {
            return Err(refuse(format!(
                "a pattern named `{name}` is already registered"
            )));
        }
        let mut sm =
            StreamMatcher::with_options(pattern, &self.schema, options)?.with_eviction(self.evict);
        if let Some(w) = self.watermark {
            // Bring the fresh matcher to the bank's clock so pushes at
            // or after the watermark are in order for it. A matcher with
            // no instances and no events finalizes nothing.
            let beat = sm.advance_watermark(w);
            debug_assert!(beat.is_empty(), "a fresh matcher emitted on heartbeat");
        }
        self.entries.push(Entry {
            name,
            exec: Exec::Own(Box::new(sm)),
            ids: Vec::new(),
            base: 0,
            peak_omega: 0,
            hits: 0,
            skips: 0,
        });
        self.plan = SharingPlan::trivial(self.entries.len());
        self.index = PatternIndex::build(self.entries.iter().map(|e| {
            e.own()
                .expect("trivial plans run every pattern's own matcher")
                .compiled()
        }));
        Ok(self.entries.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, CmpOp, Duration};
    use ses_metrics_shim::*;

    // The metrics crate depends on core, so the counting probe cannot be
    // used here; a minimal local one suffices.
    mod ses_metrics_shim {
        #[derive(Debug, Default)]
        pub struct RouteProbe {
            pub hits: usize,
            pub skips: usize,
        }
        impl crate::probe::Probe for RouteProbe {
            fn index_hits(&mut self, n: usize) {
                self.hits += n;
            }
            fn index_skips(&mut self, n: usize) {
                self.skips += n;
            }
        }
    }

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn pair(x: &str, y: &str) -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, x)
            .cond_const("b", "L", CmpOp::Eq, y)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
    }

    /// `{a,b}` then `{c}` with a per-pattern suffix label — the shape
    /// the prefix-sharing tests overlap on (prefix = `pair("A", "B")`).
    fn prefixed(suffix: &str) -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .set(|s| s.var("c"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_const("c", "L", CmpOp::Eq, suffix)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
    }

    fn bank(use_index: bool) -> PatternBank {
        PatternBank::builder(&schema())
            .register("ab", &pair("A", "B"), MatcherOptions::default())
            .unwrap()
            .register("cd", &pair("C", "D"), MatcherOptions::default())
            .unwrap()
            .with_index(use_index)
            .build()
    }

    fn workload() -> Vec<(i64, i64, &'static str)> {
        vec![
            (0, 1, "A"),
            (1, 1, "B"),
            (2, 1, "C"),
            (3, 1, "D"),
            (9, 1, "A"),
            (20, 1, "X"),
            (21, 1, "C"),
            (22, 1, "D"),
            (40, 1, "B"),
        ]
    }

    /// Bank output per pattern vs independent matchers fed every event.
    fn assert_differential(use_index: bool) {
        let mut bank = bank(use_index);
        let mut ind = [
            StreamMatcher::compile(&pair("A", "B"), &schema()).unwrap(),
            StreamMatcher::compile(&pair("C", "D"), &schema()).unwrap(),
        ];
        let mut got: Vec<Vec<Match>> = vec![Vec::new(); 2];
        let mut want: Vec<Vec<Match>> = vec![Vec::new(); 2];
        for (t, id, l) in workload() {
            let values = [Value::from(id), Value::from(l)];
            for (i, m) in bank.push(Timestamp::new(t), values.clone()).unwrap() {
                got[i].push(m);
            }
            for (i, sm) in ind.iter_mut().enumerate() {
                want[i].extend(sm.push(Timestamp::new(t), values.clone()).unwrap());
            }
        }
        for (i, m) in bank.finish() {
            got[i].push(m);
        }
        for (i, sm) in ind.into_iter().enumerate() {
            want[i].extend(sm.finish());
        }
        assert_eq!(got, want, "use_index={use_index}");
        assert!(!got[0].is_empty() && !got[1].is_empty());
    }

    #[test]
    fn bank_matches_independent_matchers_with_index() {
        assert_differential(true);
    }

    #[test]
    fn bank_matches_independent_matchers_without_index() {
        assert_differential(false);
    }

    #[test]
    fn index_reduces_pushes_and_probe_sees_routing() {
        let mut bank = bank(true);
        let mut probe = RouteProbe::default();
        for (t, id, l) in workload() {
            bank.push_with_probe(
                Timestamp::new(t),
                [Value::from(id), Value::from(l)],
                &mut probe,
            )
            .unwrap();
        }
        let n = workload().len();
        // Every event touches at most one of the two disjoint patterns
        // (and the X event touches neither).
        assert!(bank.total_hits() < (2 * n) as u64);
        assert_eq!(bank.total_hits() + bank.total_skips(), (2 * n) as u64);
        assert_eq!(probe.hits as u64, bank.total_hits());
        assert_eq!(probe.skips as u64, bank.total_skips());
        let stats = bank.stats();
        assert_eq!(stats[0].name, "ab");
        assert_eq!(stats[0].class, IndexClass::Indexed);
        assert_eq!(stats[0].hits + stats[0].skips, n as u64);
        assert!(stats[0].evicted_events > 0, "idle eviction never ran");
    }

    #[test]
    fn index_off_pushes_everything() {
        let mut bank = bank(false);
        for (t, id, l) in workload() {
            bank.push(Timestamp::new(t), [Value::from(id), Value::from(l)])
                .unwrap();
        }
        assert_eq!(bank.total_hits(), (2 * workload().len()) as u64);
        assert_eq!(bank.total_skips(), 0);
    }

    #[test]
    fn out_of_order_rejected_globally() {
        let mut bank = bank(true);
        bank.push(Timestamp::new(5), [Value::from(1), Value::from("A")])
            .unwrap();
        // The C event routes to a different pattern than the A — order
        // is still enforced bank-wide.
        let err = bank
            .push(Timestamp::new(3), [Value::from(1), Value::from("C")])
            .unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { .. }));
        // Ties at the watermark stay accepted, even for patterns that
        // skipped the first event and were only heartbeat to t=5.
        bank.push(Timestamp::new(5), [Value::from(1), Value::from("C")])
            .unwrap();
        assert_eq!(bank.ties_at_watermark(), 2);
    }

    #[test]
    fn advance_watermark_finalizes_idle_patterns() {
        let mut bank = bank(true);
        for (t, l) in [(0, "A"), (1, "B")] {
            bank.push(Timestamp::new(t), [Value::from(1), Value::from(l)])
                .unwrap();
        }
        let out = bank.advance_watermark(Timestamp::new(100));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert_eq!(bank.emitted_so_far(), 1);
        // The clock moved: older pushes are refused.
        assert!(bank
            .push(Timestamp::new(50), [Value::from(1), Value::from("A")])
            .is_err());
        assert!(bank.finish().is_empty());
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let specs: Vec<(String, Pattern, MatcherOptions)> = vec![
            ("ab".into(), pair("A", "B"), MatcherOptions::default()),
            ("cd".into(), pair("C", "D"), MatcherOptions::default()),
        ];
        let rows = workload();
        for cut in 0..rows.len() {
            let build = || {
                PatternBank::builder(&schema())
                    .register("ab", &pair("A", "B"), MatcherOptions::default())
                    .unwrap()
                    .register("cd", &pair("C", "D"), MatcherOptions::default())
                    .unwrap()
                    .build()
            };
            let mut live = build();
            let mut twin = build();
            let mut live_out = Vec::new();
            let mut twin_out = Vec::new();
            for (t, id, l) in &rows[..cut] {
                let values = [Value::from(*id), Value::from(*l)];
                live_out.extend(live.push(Timestamp::new(*t), values.clone()).unwrap());
                twin_out.extend(twin.push(Timestamp::new(*t), values).unwrap());
            }
            let snap = live.snapshot();
            drop(live);
            let mut restored = PatternBank::restore(&specs, &schema(), &snap).unwrap();
            assert_eq!(restored.emitted_so_far(), twin.emitted_so_far());
            assert_eq!(restored.consumed_events(), twin.consumed_events());
            assert_eq!(restored.ties_at_watermark(), twin.ties_at_watermark());
            for (t, id, l) in &rows[cut..] {
                let values = [Value::from(*id), Value::from(*l)];
                live_out.extend(restored.push(Timestamp::new(*t), values.clone()).unwrap());
                twin_out.extend(twin.push(Timestamp::new(*t), values).unwrap());
            }
            live_out.extend(restored.finish());
            twin_out.extend(twin.finish());
            assert_eq!(live_out, twin_out, "divergence after restore at cut {cut}");
        }
    }

    #[test]
    fn restore_rejects_mismatched_specs() {
        let mut bank = bank(true);
        bank.push(Timestamp::new(0), [Value::from(1), Value::from("A")])
            .unwrap();
        let snap = bank.snapshot();
        // Wrong count.
        let short: Vec<(String, Pattern, MatcherOptions)> =
            vec![("ab".into(), pair("A", "B"), MatcherOptions::default())];
        let err = PatternBank::restore(&short, &schema(), &snap).unwrap_err();
        assert!(matches!(err, CoreError::SnapshotMismatch { .. }), "{err}");
        // Wrong name.
        let renamed: Vec<(String, Pattern, MatcherOptions)> = vec![
            ("zz".into(), pair("A", "B"), MatcherOptions::default()),
            ("cd".into(), pair("C", "D"), MatcherOptions::default()),
        ];
        let err = PatternBank::restore(&renamed, &schema(), &snap).unwrap_err();
        assert!(err.to_string().contains("registered as `zz`"), "{err}");
        // Wrong pattern (fingerprint).
        let swapped: Vec<(String, Pattern, MatcherOptions)> = vec![
            ("ab".into(), pair("A", "C"), MatcherOptions::default()),
            ("cd".into(), pair("C", "D"), MatcherOptions::default()),
        ];
        let err = PatternBank::restore(&swapped, &schema(), &snap).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn empty_bank_consumes_events() {
        let mut bank = PatternBank::builder(&schema()).build();
        assert!(bank.is_empty());
        assert!(bank
            .push(Timestamp::new(0), [Value::from(1), Value::from("A")])
            .unwrap()
            .is_empty());
        assert_eq!(bank.consumed_events(), 1);
        assert!(bank.finish().is_empty());
    }

    #[test]
    fn subscribe_mid_stream_matches_only_future_events() {
        let mut bank = bank(true);
        // Consume a prefix that would complete a C-D pair for an
        // observer of the whole stream.
        for (t, l) in [(0, "C"), (1, "A")] {
            bank.push(Timestamp::new(t), [Value::from(1i64), Value::from(l)])
                .unwrap();
        }
        let id = bank
            .subscribe("cd2", &pair("C", "D"), MatcherOptions::default())
            .unwrap();
        assert_eq!(id, 2);
        assert_eq!(bank.names(), vec!["ab", "cd", "cd2"]);
        // The D at t=2 pairs with the pre-subscription C for the old
        // pattern, but the new subscription never saw that C; the C-D
        // pair at t=3/4 lies entirely after the subscription point and
        // matches for both. The X at t=20 expires every window so the
        // emissions finalize.
        let mut post = Vec::new();
        for (t, l) in [(2, "D"), (3, "C"), (4, "D"), (20, "X")] {
            post.extend(
                bank.push(Timestamp::new(t), [Value::from(1i64), Value::from(l)])
                    .unwrap(),
            );
        }
        for (i, m) in bank.finish() {
            post.push((i, m));
        }
        let ids_of =
            |m: &Match| -> Vec<usize> { m.bindings().iter().map(|&(_, e)| e.index()).collect() };
        let old_matches: Vec<Vec<usize>> = post
            .iter()
            .filter(|(i, _)| *i == 1)
            .map(|(_, m)| ids_of(m))
            .collect();
        let new_matches: Vec<Vec<usize>> = post
            .iter()
            .filter(|(i, _)| *i == 2)
            .map(|(_, m)| ids_of(m))
            .collect();
        assert!(
            old_matches.iter().any(|ids| ids.contains(&0)),
            "the old pattern pairs the pre-subscription C (global id 0): {old_matches:?}"
        );
        assert!(
            new_matches.iter().all(|ids| ids.iter().all(|&e| e >= 2)),
            "the subscription must never bind pre-registration events: {new_matches:?}"
        );
        // Restricted to post-subscription events the two executions agree
        // exactly (same pattern, same suffix, global ids line up).
        let old_post_only: Vec<Vec<usize>> = old_matches
            .into_iter()
            .filter(|ids| ids.iter().all(|&e| e >= 2))
            .collect();
        assert_eq!(new_matches, old_post_only);
        assert!(
            new_matches.contains(&vec![3, 4]),
            "the wholly post-subscription C-D pair matches: {new_matches:?}"
        );
    }

    #[test]
    fn subscribe_is_routed_by_the_rebuilt_index() {
        let mut bank = bank(true);
        bank.push(Timestamp::new(0), [Value::from(1i64), Value::from("A")])
            .unwrap();
        bank.subscribe("ef", &pair("E", "F"), MatcherOptions::default())
            .unwrap();
        let mut probe = RouteProbe::default();
        // An E event is admitted only by the new pattern.
        bank.push_with_probe(
            Timestamp::new(1),
            [Value::from(1i64), Value::from("E")],
            &mut probe,
        )
        .unwrap();
        assert_eq!(probe.hits, 1, "routed to the subscription only");
        assert_eq!(probe.skips, 2);
        assert!(matches!(bank.index_class(2), IndexClass::Indexed));
    }

    #[test]
    fn subscribe_rejects_duplicate_names_and_active_sharing() {
        let mut bank = bank(true);
        assert!(matches!(
            bank.subscribe("ab", &pair("E", "F"), MatcherOptions::default()),
            Err(CoreError::Subscription { .. })
        ));
        let mut shared = sharing_bank(true);
        assert!(shared.sharing_active());
        assert!(matches!(
            shared.subscribe("late", &pair("E", "F"), MatcherOptions::default()),
            Err(CoreError::Subscription { .. })
        ));
    }

    #[test]
    fn subscribe_survives_snapshot_restore_round_trip() {
        let mut bank = bank(true);
        bank.push(Timestamp::new(0), [Value::from(1i64), Value::from("A")])
            .unwrap();
        bank.subscribe("ef", &pair("E", "F"), MatcherOptions::default())
            .unwrap();
        bank.push(Timestamp::new(1), [Value::from(1i64), Value::from("E")])
            .unwrap();
        let snap = bank.snapshot();
        let specs: Vec<(String, Pattern, MatcherOptions)> = vec![
            ("ab".into(), pair("A", "B"), MatcherOptions::default()),
            ("cd".into(), pair("C", "D"), MatcherOptions::default()),
            ("ef".into(), pair("E", "F"), MatcherOptions::default()),
        ];
        let mut restored = PatternBank::restore(&specs, &schema(), &snap).unwrap();
        let drive = |bank: &mut PatternBank| {
            let mut out = Vec::new();
            for (t, l) in [(2, "F"), (3, "B"), (20, "X")] {
                out.extend(
                    bank.push(Timestamp::new(t), [Value::from(1i64), Value::from(l)])
                        .unwrap(),
                );
            }
            out
        };
        let a = drive(&mut bank);
        let b = drive(&mut restored);
        assert_eq!(a, b);
        assert!(a.iter().any(|(i, _)| *i == 2), "subscription matched E-F");
        // The restored bank keeps accepting live subscriptions.
        restored
            .subscribe("gh", &pair("G", "H"), MatcherOptions::default())
            .unwrap();
        assert_eq!(restored.len(), 4);
    }

    #[test]
    fn unsatisfiable_pattern_rides_along() {
        let dead = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "ID", CmpOp::Gt, 10)
            .cond_const("a", "ID", CmpOp::Lt, 5)
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let mut bank = PatternBank::builder(&schema())
            .register("dead", &dead, MatcherOptions::default())
            .unwrap()
            .register("ab", &pair("A", "B"), MatcherOptions::default())
            .unwrap()
            .build();
        assert_eq!(bank.index_class(0), IndexClass::Never);
        for (t, id, l) in workload() {
            bank.push(Timestamp::new(t), [Value::from(id), Value::from(l)])
                .unwrap();
        }
        let stats = bank.stats();
        assert_eq!(stats[0].hits, 0, "dead pattern received events");
        let out = bank.finish();
        assert!(out.iter().all(|(i, _)| *i == 1));
    }

    // ---- structural sharing ------------------------------------------

    /// Events exercising overlapping prefixes, ties, window expiry, and
    /// suffix divergence for the `prefixed` family.
    fn shared_workload() -> Vec<(i64, &'static str)> {
        vec![
            (0, "A"),
            (1, "B"),
            (2, "C"),
            (2, "D"),
            (3, "A"),
            (4, "B"),
            (8, "C"),
            (9, "A"),
            (9, "B"),
            (10, "D"),
            (20, "X"),
            (21, "A"),
            (22, "B"),
            (23, "C"),
            (40, "X"),
        ]
    }

    /// A pattern set whose plan exercises every sharing role: `pc2` is
    /// a duplicate of `pc` (dedup), and `pc`/`pd`/`ab` share the
    /// `{a,b}` prefix — with `ab` consumed entirely by it (its boundary
    /// is its accept state).
    fn sharing_specs() -> Vec<(String, Pattern, MatcherOptions)> {
        vec![
            ("pc".into(), prefixed("C"), MatcherOptions::default()),
            ("pd".into(), prefixed("D"), MatcherOptions::default()),
            ("pc2".into(), prefixed("C"), MatcherOptions::default()),
            ("ab".into(), pair("A", "B"), MatcherOptions::default()),
        ]
    }

    fn sharing_bank(share: bool) -> PatternBank {
        let mut b = PatternBank::builder(&schema());
        for (name, pattern, options) in sharing_specs() {
            b = b.register(name, &pattern, options).unwrap();
        }
        b.with_sharing(share).build()
    }

    /// Shared execution vs independent matchers fed every event — the
    /// push-for-push output-identity claim of `docs/patternbank.md`.
    #[test]
    fn sharing_matches_independent_matchers() {
        let specs = sharing_specs();
        let mut bank = sharing_bank(true);
        assert!(bank.sharing_active(), "{}", bank.sharing_plan().describe());
        let mut ind: Vec<StreamMatcher> = specs
            .iter()
            .map(|(_, p, o)| StreamMatcher::with_options(p, &schema(), o.clone()).unwrap())
            .collect();
        let mut got: Vec<Vec<Match>> = vec![Vec::new(); specs.len()];
        let mut want: Vec<Vec<Match>> = vec![Vec::new(); specs.len()];
        for (t, l) in shared_workload() {
            let values = [Value::from(1), Value::from(l)];
            for (i, m) in bank.push(Timestamp::new(t), values.clone()).unwrap() {
                got[i].push(m);
            }
            for (i, sm) in ind.iter_mut().enumerate() {
                want[i].extend(sm.push(Timestamp::new(t), values.clone()).unwrap());
            }
        }
        for (i, m) in bank.finish() {
            got[i].push(m);
        }
        for (i, sm) in ind.into_iter().enumerate() {
            want[i].extend(sm.finish());
        }
        assert_eq!(got, want);
        assert!(got.iter().all(|g| !g.is_empty()), "every pattern matched");
    }

    /// Sharing on vs off over the same stream: identical output.
    #[test]
    fn sharing_on_off_differential() {
        let mut on = sharing_bank(true);
        let mut off = sharing_bank(false);
        assert!(on.sharing_active());
        assert!(!off.sharing_active());
        let mut got = Vec::new();
        let mut want = Vec::new();
        for (t, l) in shared_workload() {
            let values = [Value::from(1), Value::from(l)];
            got.extend(on.push(Timestamp::new(t), values.clone()).unwrap());
            want.extend(off.push(Timestamp::new(t), values).unwrap());
        }
        got.extend(on.finish());
        want.extend(off.finish());
        assert_eq!(got, want);
    }

    #[test]
    fn sharing_plan_surfaces_roles_and_stats_resolve_leaders() {
        let mut bank = sharing_bank(true);
        let plan = bank.sharing_plan().clone();
        // pc2 deduplicates into pc; pc, pd, ab share the {a,b} prefix.
        assert_eq!(plan.roles[2], ShareRole::DedupMember { leader: 0 });
        assert_eq!(plan.prefix_groups.len(), 1);
        assert_eq!(plan.prefix_groups[0].members, vec![0, 1, 3]);
        assert_eq!(plan.prefix_groups[0].sets, 1);
        assert_eq!(plan.prefix_groups[0].vars, 2);
        for (t, l) in shared_workload() {
            bank.push(Timestamp::new(t), [Value::from(1), Value::from(l)])
                .unwrap();
        }
        let stats = bank.stats();
        // The dedup member reports its leader's matcher counters with
        // its own routing counts.
        assert_eq!(stats[2].emitted, stats[0].emitted);
        assert_eq!(
            stats[2].hits + stats[2].skips,
            shared_workload().len() as u64
        );
        assert!(stats[2].emitted > 0);
    }

    #[test]
    fn sharing_heartbeat_finalizes_members() {
        let mut bank = sharing_bank(true);
        for (t, l) in [(0, "A"), (1, "B"), (2, "C")] {
            bank.push(Timestamp::new(t), [Value::from(1), Value::from(l)])
                .unwrap();
        }
        let out = bank.advance_watermark(Timestamp::new(100));
        // pc, its duplicate pc2, and ab all complete; pd never saw a D.
        let patterns: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
        assert!(patterns.contains(&0) && patterns.contains(&2) && patterns.contains(&3));
        assert!(!patterns.contains(&1));
        assert!(bank.finish().is_empty());
    }

    #[test]
    fn sharing_snapshot_restore_resumes_identically() {
        let specs = sharing_specs();
        let rows = shared_workload();
        for cut in 0..rows.len() {
            let mut live = sharing_bank(true);
            let mut twin = sharing_bank(true);
            let mut live_out = Vec::new();
            let mut twin_out = Vec::new();
            for (t, l) in &rows[..cut] {
                let values = [Value::from(1), Value::from(*l)];
                live_out.extend(live.push(Timestamp::new(*t), values.clone()).unwrap());
                twin_out.extend(twin.push(Timestamp::new(*t), values).unwrap());
            }
            let snap = live.snapshot();
            assert_eq!(snap.pools.len(), 1);
            assert!(snap.patterns[2].matcher.is_none(), "dedup member state");
            drop(live);
            let mut restored = PatternBank::restore(&specs, &schema(), &snap).unwrap();
            assert!(restored.sharing_active());
            for (t, l) in &rows[cut..] {
                let values = [Value::from(1), Value::from(*l)];
                live_out.extend(restored.push(Timestamp::new(*t), values.clone()).unwrap());
                twin_out.extend(twin.push(Timestamp::new(*t), values).unwrap());
            }
            live_out.extend(restored.finish());
            twin_out.extend(twin.finish());
            assert_eq!(live_out, twin_out, "divergence after restore at cut {cut}");
        }
    }

    #[test]
    fn restore_rejects_sharing_role_mismatch() {
        let mut bank = sharing_bank(true);
        bank.push(Timestamp::new(0), [Value::from(1), Value::from("A")])
            .unwrap();
        let snap = bank.snapshot();
        // Replace the prefix members with patterns that no longer share:
        // the recomputed plan disagrees with the recorded roles.
        let broken: Vec<(String, Pattern, MatcherOptions)> = vec![
            ("pc".into(), prefixed("C"), MatcherOptions::default()),
            ("pd".into(), pair("E", "F"), MatcherOptions::default()),
            ("pc2".into(), prefixed("C"), MatcherOptions::default()),
            ("ab".into(), pair("G", "H"), MatcherOptions::default()),
        ];
        let err = PatternBank::restore(&broken, &schema(), &snap).unwrap_err();
        assert!(err.to_string().contains("roles"), "{err}");
    }
}
