//! Multi-pattern shared execution: N patterns, one stream, one push.
//!
//! A [`PatternBank`] registers N compiled patterns against a single
//! event stream. Each event is pushed **once**; an event→pattern
//! predicate index ([`ses_pattern::PatternIndex`]) built from the
//! patterns' analyzer-derived constant constraints routes it to the
//! patterns it could possibly advance, and every other pattern receives
//! only a watermark heartbeat ([`StreamMatcher::advance_watermark`]) so
//! its pending matches finalize and its window evicts on time — the
//! same mechanism the sharded matcher uses for idle shards.
//!
//! # Why skipping is sound
//!
//! The index admits an event to a pattern when it fully satisfies the
//! constant-condition conjunction of at least one variable or negation.
//! An event admitted by *no* group can neither bind (every transition
//! evaluates all of its variable's conditions) nor kill (a negation
//! whose constant conjunction fails cannot be violated), so the only
//! thing the pattern must learn from it is the time: the heartbeat
//! performs exactly the sweep/adjudicate/evict work a push at that
//! timestamp would, and a push at a timestamp equal to the watermark is
//! still accepted — admitted ties are never rejected. Per-pattern
//! output is therefore identical — matches *and* order — to N
//! independent [`StreamMatcher`]s each fed every event, which is
//! precisely what `tests/bank_vs_independent.rs` proves differentially.
//! The full argument lives in `docs/patternbank.md`.
//!
//! # Event ids
//!
//! Matches are reported in **global** event ids (arrival order across
//! the whole stream), even though each pattern's relation holds only
//! the events admitted to it — the same local→global id remap the
//! sharded matcher uses.

use ses_event::{Event, EventError, EventId, Schema, Timestamp, Value};
use ses_pattern::{IndexClass, Pattern, PatternIndex};

use crate::error::CoreError;
use crate::matcher::MatcherOptions;
use crate::matches::Match;
use crate::probe::{NoProbe, Probe};
use crate::snapshot::{BankPatternSnapshot, BankSnapshot};
use crate::stream::StreamMatcher;

/// One registered pattern: its stream matcher plus the map from its
/// local event ids back to global ones, and the routing counters.
#[derive(Debug)]
struct Entry {
    name: String,
    sm: StreamMatcher,
    /// Global ids of the events admitted to this pattern, indexed by
    /// `local - base`.
    ids: Vec<EventId>,
    /// The pattern relation's first retained local index; `ids` is
    /// pruned to it whenever the matcher evicts.
    base: usize,
    /// Peak `|Ω|` observed on this pattern.
    peak_omega: usize,
    /// Events routed into the matcher.
    hits: u64,
    /// Events skipped (heartbeat only).
    skips: u64,
}

/// Rewrites a pattern-local match into global event ids.
fn remap(ids: &[EventId], base: usize, m: &Match) -> Match {
    Match::from_bindings(
        m.bindings()
            .iter()
            .map(|&(v, e)| (v, ids[e.index() - base]))
            .collect(),
    )
}

impl Entry {
    fn note_peak(&mut self) {
        self.peak_omega = self.peak_omega.max(self.sm.active_instances());
    }

    /// Drops id-map entries for events the matcher has evicted.
    fn prune(&mut self) {
        let first = self.sm.relation().first_index();
        if first > self.base {
            self.ids.drain(..first - self.base);
            self.base = first;
        }
    }
}

/// Point-in-time routing and matching statistics for one registered
/// pattern — the rows `ses-cli bank --stats` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternStats {
    /// The name the pattern was registered under.
    pub name: String,
    /// How the predicate index routes events to this pattern.
    pub class: IndexClass,
    /// Events pushed into the pattern's matcher.
    pub hits: u64,
    /// Events skipped (watermark heartbeat only).
    pub skips: u64,
    /// Matches finalized by pushes so far.
    pub emitted: usize,
    /// Current `|Ω|`.
    pub active_instances: usize,
    /// Peak `|Ω|` observed.
    pub peak_omega: usize,
    /// Events currently retained in the pattern's relation.
    pub retained_events: usize,
    /// Events evicted from the pattern's relation.
    pub evicted_events: usize,
}

/// Builder for a [`PatternBank`]; see [`PatternBank::builder`].
#[derive(Debug)]
pub struct PatternBankBuilder {
    schema: Schema,
    entries: Vec<Entry>,
    evict: bool,
    use_index: bool,
}

impl PatternBankBuilder {
    /// Compiles `pattern` against the bank's schema and registers it
    /// under `name`. Patterns are identified by their zero-based
    /// registration order in push results and statistics.
    pub fn register(
        mut self,
        name: impl Into<String>,
        pattern: &Pattern,
        options: MatcherOptions,
    ) -> Result<PatternBankBuilder, CoreError> {
        let sm = StreamMatcher::with_options(pattern, &self.schema, options)?;
        self.entries.push(Entry {
            name: name.into(),
            sm,
            ids: Vec::new(),
            base: 0,
            peak_omega: 0,
            hits: 0,
            skips: 0,
        });
        Ok(self)
    }

    /// Enables or disables watermark eviction on every pattern (on by
    /// default; see [`StreamMatcher::with_eviction`]).
    pub fn with_eviction(mut self, evict: bool) -> PatternBankBuilder {
        self.evict = evict;
        self
    }

    /// Enables or disables the predicate index (on by default). With
    /// the index off every event is pushed to every pattern — the
    /// baseline the `patternbank` bench compares against, with
    /// identical output either way.
    pub fn with_index(mut self, on: bool) -> PatternBankBuilder {
        self.use_index = on;
        self
    }

    /// Builds the bank, constructing the predicate index from the
    /// compiled patterns exactly as the matchers will run them (after
    /// any analyzer rewrites).
    pub fn build(self) -> PatternBank {
        let entries: Vec<Entry> = self
            .entries
            .into_iter()
            .map(|mut e| {
                e.sm = e.sm.with_eviction(self.evict);
                e
            })
            .collect();
        let index = PatternIndex::build(entries.iter().map(|e| e.sm.compiled()));
        PatternBank {
            entries,
            index,
            use_index: self.use_index,
            schema: self.schema,
            watermark: None,
            last_ts: None,
            next_id: 0,
            ties: 0,
            emitted: 0,
        }
    }
}

/// N patterns sharing one event stream: push each event once, receive
/// per-pattern finalized matches.
///
/// ```
/// use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
/// use ses_pattern::Pattern;
/// use ses_core::{MatcherOptions, PatternBank};
///
/// let schema = Schema::builder().attr("L", AttrType::Str).build().unwrap();
/// let pair = |x: &str, y: &str| {
///     Pattern::builder()
///         .set(|s| s.var("a").var("b"))
///         .cond_const("a", "L", CmpOp::Eq, x)
///         .cond_const("b", "L", CmpOp::Eq, y)
///         .within(Duration::ticks(5))
///         .build()
///         .unwrap()
/// };
/// let mut bank = PatternBank::builder(&schema)
///     .register("ab", &pair("A", "B"), MatcherOptions::default())
///     .unwrap()
///     .register("cd", &pair("C", "D"), MatcherOptions::default())
///     .unwrap()
///     .build();
/// for (t, l) in [(0, "A"), (1, "B"), (2, "C"), (3, "D")] {
///     bank.push(Timestamp::new(t), [Value::from(l)]).unwrap();
/// }
/// let out = bank.finish();
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[0].0, 0); // pattern "ab" matched
/// assert_eq!(out[1].0, 1); // pattern "cd" matched
/// ```
#[derive(Debug)]
pub struct PatternBank {
    entries: Vec<Entry>,
    index: PatternIndex,
    use_index: bool,
    schema: Schema,
    /// The bank's clock: max of pushed and heartbeat timestamps; pushes
    /// behind it are rejected.
    watermark: Option<Timestamp>,
    /// Timestamp of the last pushed event (may trail the watermark).
    last_ts: Option<Timestamp>,
    /// Next global event id (= events consumed).
    next_id: usize,
    /// Events tied at `last_ts` — tracked explicitly because skipped
    /// events appear in no pattern's relation.
    ties: usize,
    /// Matches emitted by pushes and heartbeats so far.
    emitted: usize,
}

impl PatternBank {
    /// Starts building a bank over `schema`.
    pub fn builder(schema: &Schema) -> PatternBankBuilder {
        PatternBankBuilder {
            schema: schema.clone(),
            entries: Vec::new(),
            evict: true,
            use_index: true,
        }
    }

    /// Number of registered patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no pattern is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The names the patterns were registered under, in id order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Whether the predicate index is consulted on pushes.
    pub fn index_enabled(&self) -> bool {
        self.use_index
    }

    /// How the predicate index routes events to pattern `id`.
    pub fn index_class(&self, id: usize) -> IndexClass {
        self.index.class(id)
    }

    /// Pushes one event (timestamps must be non-decreasing) and returns
    /// the matches this finalizes as `(pattern id, match)` pairs —
    /// grouped by pattern in registration order, each pattern's matches
    /// in its own emission order, with global event ids.
    pub fn push(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<Vec<(usize, Match)>, EventError> {
        self.push_with_probe(ts, values, &mut NoProbe)
    }

    /// [`PatternBank::push`] with an instrumentation probe. The probe
    /// observes the receiving matchers' engine events plus the bank's
    /// routing decisions ([`Probe::index_hits`] / [`Probe::index_skips`]).
    pub fn push_with_probe<P: Probe>(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
        probe: &mut P,
    ) -> Result<Vec<(usize, Match)>, EventError> {
        let values = values.into();
        self.schema.check_row(&values)?;
        if let Some(w) = self.watermark {
            if ts < w {
                return Err(EventError::OutOfOrder {
                    previous: w.ticks(),
                    got: ts.ticks(),
                });
            }
        }
        let event = Event::new(ts, values);
        let admitted: Vec<usize> = if self.use_index {
            self.index.admitted(&event)
        } else {
            (0..self.entries.len()).collect()
        };
        probe.index_hits(admitted.len());
        probe.index_skips(self.entries.len() - admitted.len());
        let mut out = Vec::new();
        let mut next = admitted.iter().copied().peekable();
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if next.peek() == Some(&i) {
                next.next();
                entry.ids.push(EventId::from(self.next_id));
                // Cannot fail: the row was checked against the shared
                // schema, and the entry's watermark never exceeds the
                // bank's (pushes and heartbeats move them together).
                let emitted = entry
                    .sm
                    .push_with_probe(ts, event.values().to_vec(), &mut *probe)?;
                entry.hits += 1;
                entry.note_peak();
                out.extend(
                    emitted
                        .iter()
                        .map(|m| (i, remap(&entry.ids, entry.base, m))),
                );
            } else {
                // Skipped: the pattern only needs the time. No-op when
                // the entry is already at (or past) `ts`.
                entry.skips += 1;
                let beat = entry.sm.advance_watermark_with_probe(ts, &mut *probe);
                out.extend(beat.iter().map(|m| (i, remap(&entry.ids, entry.base, m))));
            }
            entry.prune();
        }
        self.ties = if self.last_ts == Some(ts) {
            self.ties + 1
        } else {
            1
        };
        self.watermark = Some(ts);
        self.last_ts = Some(ts);
        self.next_id += 1;
        self.emitted += out.len();
        Ok(out)
    }

    /// Advances every pattern's watermark to `ts` without pushing an
    /// event — finalizing and evicting exactly as a push at `ts` would —
    /// and returns the matches that finalizes. No-op for patterns
    /// already at or past `ts`. Subsequent pushes before `ts` are
    /// rejected as out of order.
    pub fn advance_watermark(&mut self, ts: Timestamp) -> Vec<(usize, Match)> {
        let mut out = Vec::new();
        for (i, entry) in self.entries.iter_mut().enumerate() {
            let beat = entry.sm.advance_watermark(ts);
            out.extend(beat.iter().map(|m| (i, remap(&entry.ids, entry.base, m))));
            entry.prune();
        }
        if self.watermark.is_some_and(|w| ts > w) {
            self.watermark = Some(ts);
        }
        self.emitted += out.len();
        out
    }

    /// Ends the stream: flushes and adjudicates every pattern's
    /// remaining state and returns the matches not already emitted by
    /// pushes — together with those, each pattern's exact batch answer.
    pub fn finish(self) -> Vec<(usize, Match)> {
        let mut out = Vec::new();
        for (i, entry) in self.entries.into_iter().enumerate() {
            let Entry { sm, ids, base, .. } = entry;
            out.extend(sm.finish().iter().map(|m| (i, remap(&ids, base, m))));
        }
        out
    }

    /// The bank's clock: the latest pushed or heartbeat timestamp.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Matches emitted by pushes and heartbeats so far (excludes
    /// [`PatternBank::finish`]).
    pub fn emitted_so_far(&self) -> usize {
        self.emitted
    }

    /// Events consumed so far (each counted once, however many patterns
    /// it was routed to).
    pub fn consumed_events(&self) -> usize {
        self.next_id
    }

    /// Events a log replay from the last pushed timestamp must skip —
    /// the bank-level counterpart of
    /// [`StreamMatcher::ties_at_watermark`]. Tracked explicitly: skipped
    /// events appear in no pattern's relation, so no relation can
    /// recover the count.
    pub fn ties_at_watermark(&self) -> usize {
        if self.last_ts.is_some() {
            self.ties
        } else {
            0
        }
    }

    /// Active instances summed over all patterns.
    pub fn active_instances(&self) -> usize {
        self.entries.iter().map(|e| e.sm.active_instances()).sum()
    }

    /// Events retained, summed over all patterns (an event admitted to
    /// k patterns is counted k times).
    pub fn retained_events(&self) -> usize {
        self.entries.iter().map(|e| e.sm.retained_events()).sum()
    }

    /// Events pushed into matchers, summed over all patterns — the
    /// quantity the index exists to reduce (without it this is
    /// `patterns × events`).
    pub fn total_hits(&self) -> u64 {
        self.entries.iter().map(|e| e.hits).sum()
    }

    /// Events skipped (heartbeat only), summed over all patterns.
    pub fn total_skips(&self) -> u64 {
        self.entries.iter().map(|e| e.skips).sum()
    }

    /// Routing and matching statistics per pattern, in id order.
    pub fn stats(&self) -> Vec<PatternStats> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| PatternStats {
                name: e.name.clone(),
                class: self.index.class(i),
                hits: e.hits,
                skips: e.skips,
                emitted: e.sm.emitted_so_far(),
                active_instances: e.sm.active_instances(),
                peak_omega: e.peak_omega,
                retained_events: e.sm.retained_events(),
                evicted_events: e.sm.evicted_events(),
            })
            .collect()
    }

    /// Captures the complete dynamic state of every pattern plus the
    /// bank's routing bookkeeping under one manifest.
    pub fn snapshot(&mut self) -> BankSnapshot {
        BankSnapshot {
            watermark: self.watermark,
            last_ts: self.last_ts,
            next_id: self.next_id as u64,
            ties: self.ties as u64,
            emitted: self.emitted as u64,
            use_index: self.use_index,
            patterns: self
                .entries
                .iter_mut()
                .map(|e| BankPatternSnapshot {
                    name: e.name.clone(),
                    matcher: e.sm.snapshot(),
                    ids: e.ids.clone(),
                    base: e.base as u64,
                    peak_omega: e.peak_omega as u64,
                    hits: e.hits,
                    skips: e.skips,
                })
                .collect(),
        }
    }

    /// Rebuilds a bank from the `(name, pattern, options)` specs it was
    /// built with and a [`BankSnapshot`] taken from it. Specs must match
    /// the snapshot in count, order, and name, and each pattern's
    /// fingerprint must agree; fails with
    /// [`CoreError::SnapshotMismatch`] on any disagreement. The index
    /// on/off setting is restored from the snapshot.
    pub fn restore(
        specs: &[(String, Pattern, MatcherOptions)],
        schema: &Schema,
        snapshot: &BankSnapshot,
    ) -> Result<PatternBank, CoreError> {
        let mismatch = |reason: String| CoreError::SnapshotMismatch { reason };
        if specs.len() != snapshot.patterns.len() {
            return Err(mismatch(format!(
                "snapshot holds {} patterns, but {} were registered",
                snapshot.patterns.len(),
                specs.len()
            )));
        }
        let mut entries = Vec::with_capacity(specs.len());
        for (i, ((name, pattern, options), ps)) in specs.iter().zip(&snapshot.patterns).enumerate()
        {
            if *name != ps.name {
                return Err(mismatch(format!(
                    "pattern {i} is registered as `{name}`, but the snapshot calls it `{}`",
                    ps.name
                )));
            }
            let mut sm = StreamMatcher::with_options(pattern, schema, options.clone())?;
            sm.apply_snapshot(&ps.matcher)
                .map_err(|e| mismatch(format!("pattern `{name}`: {e}")))?;
            if ps.ids.len() != sm.relation().len()
                || ps.base as usize != sm.relation().first_index()
            {
                return Err(mismatch(format!(
                    "pattern `{name}`: id map covers {} events at base {}, but the \
                     relation retains {} at base {}",
                    ps.ids.len(),
                    ps.base,
                    sm.relation().len(),
                    sm.relation().first_index()
                )));
            }
            entries.push(Entry {
                name: ps.name.clone(),
                sm,
                ids: ps.ids.clone(),
                base: ps.base as usize,
                peak_omega: ps.peak_omega as usize,
                hits: ps.hits,
                skips: ps.skips,
            });
        }
        let index = PatternIndex::build(entries.iter().map(|e| e.sm.compiled()));
        Ok(PatternBank {
            entries,
            index,
            use_index: snapshot.use_index,
            schema: schema.clone(),
            watermark: snapshot.watermark,
            last_ts: snapshot.last_ts,
            next_id: snapshot.next_id as usize,
            ties: snapshot.ties as usize,
            emitted: snapshot.emitted as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, CmpOp, Duration};
    use ses_metrics_shim::*;

    // The metrics crate depends on core, so the counting probe cannot be
    // used here; a minimal local one suffices.
    mod ses_metrics_shim {
        #[derive(Debug, Default)]
        pub struct RouteProbe {
            pub hits: usize,
            pub skips: usize,
        }
        impl crate::probe::Probe for RouteProbe {
            fn index_hits(&mut self, n: usize) {
                self.hits += n;
            }
            fn index_skips(&mut self, n: usize) {
                self.skips += n;
            }
        }
    }

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn pair(x: &str, y: &str) -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, x)
            .cond_const("b", "L", CmpOp::Eq, y)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
    }

    fn bank(use_index: bool) -> PatternBank {
        PatternBank::builder(&schema())
            .register("ab", &pair("A", "B"), MatcherOptions::default())
            .unwrap()
            .register("cd", &pair("C", "D"), MatcherOptions::default())
            .unwrap()
            .with_index(use_index)
            .build()
    }

    fn workload() -> Vec<(i64, i64, &'static str)> {
        vec![
            (0, 1, "A"),
            (1, 1, "B"),
            (2, 1, "C"),
            (3, 1, "D"),
            (9, 1, "A"),
            (20, 1, "X"),
            (21, 1, "C"),
            (22, 1, "D"),
            (40, 1, "B"),
        ]
    }

    /// Bank output per pattern vs independent matchers fed every event.
    fn assert_differential(use_index: bool) {
        let mut bank = bank(use_index);
        let mut ind = [
            StreamMatcher::compile(&pair("A", "B"), &schema()).unwrap(),
            StreamMatcher::compile(&pair("C", "D"), &schema()).unwrap(),
        ];
        let mut got: Vec<Vec<Match>> = vec![Vec::new(); 2];
        let mut want: Vec<Vec<Match>> = vec![Vec::new(); 2];
        for (t, id, l) in workload() {
            let values = [Value::from(id), Value::from(l)];
            for (i, m) in bank.push(Timestamp::new(t), values.clone()).unwrap() {
                got[i].push(m);
            }
            for (i, sm) in ind.iter_mut().enumerate() {
                want[i].extend(sm.push(Timestamp::new(t), values.clone()).unwrap());
            }
        }
        for (i, m) in bank.finish() {
            got[i].push(m);
        }
        for (i, sm) in ind.into_iter().enumerate() {
            want[i].extend(sm.finish());
        }
        assert_eq!(got, want, "use_index={use_index}");
        assert!(!got[0].is_empty() && !got[1].is_empty());
    }

    #[test]
    fn bank_matches_independent_matchers_with_index() {
        assert_differential(true);
    }

    #[test]
    fn bank_matches_independent_matchers_without_index() {
        assert_differential(false);
    }

    #[test]
    fn index_reduces_pushes_and_probe_sees_routing() {
        let mut bank = bank(true);
        let mut probe = RouteProbe::default();
        for (t, id, l) in workload() {
            bank.push_with_probe(
                Timestamp::new(t),
                [Value::from(id), Value::from(l)],
                &mut probe,
            )
            .unwrap();
        }
        let n = workload().len();
        // Every event touches at most one of the two disjoint patterns
        // (and the X event touches neither).
        assert!(bank.total_hits() < (2 * n) as u64);
        assert_eq!(bank.total_hits() + bank.total_skips(), (2 * n) as u64);
        assert_eq!(probe.hits as u64, bank.total_hits());
        assert_eq!(probe.skips as u64, bank.total_skips());
        let stats = bank.stats();
        assert_eq!(stats[0].name, "ab");
        assert_eq!(stats[0].class, IndexClass::Indexed);
        assert_eq!(stats[0].hits + stats[0].skips, n as u64);
        assert!(stats[0].evicted_events > 0, "idle eviction never ran");
    }

    #[test]
    fn index_off_pushes_everything() {
        let mut bank = bank(false);
        for (t, id, l) in workload() {
            bank.push(Timestamp::new(t), [Value::from(id), Value::from(l)])
                .unwrap();
        }
        assert_eq!(bank.total_hits(), (2 * workload().len()) as u64);
        assert_eq!(bank.total_skips(), 0);
    }

    #[test]
    fn out_of_order_rejected_globally() {
        let mut bank = bank(true);
        bank.push(Timestamp::new(5), [Value::from(1), Value::from("A")])
            .unwrap();
        // The C event routes to a different pattern than the A — order
        // is still enforced bank-wide.
        let err = bank
            .push(Timestamp::new(3), [Value::from(1), Value::from("C")])
            .unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { .. }));
        // Ties at the watermark stay accepted, even for patterns that
        // skipped the first event and were only heartbeat to t=5.
        bank.push(Timestamp::new(5), [Value::from(1), Value::from("C")])
            .unwrap();
        assert_eq!(bank.ties_at_watermark(), 2);
    }

    #[test]
    fn advance_watermark_finalizes_idle_patterns() {
        let mut bank = bank(true);
        for (t, l) in [(0, "A"), (1, "B")] {
            bank.push(Timestamp::new(t), [Value::from(1), Value::from(l)])
                .unwrap();
        }
        let out = bank.advance_watermark(Timestamp::new(100));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert_eq!(bank.emitted_so_far(), 1);
        // The clock moved: older pushes are refused.
        assert!(bank
            .push(Timestamp::new(50), [Value::from(1), Value::from("A")])
            .is_err());
        assert!(bank.finish().is_empty());
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let specs: Vec<(String, Pattern, MatcherOptions)> = vec![
            ("ab".into(), pair("A", "B"), MatcherOptions::default()),
            ("cd".into(), pair("C", "D"), MatcherOptions::default()),
        ];
        let rows = workload();
        for cut in 0..rows.len() {
            let build = || {
                PatternBank::builder(&schema())
                    .register("ab", &pair("A", "B"), MatcherOptions::default())
                    .unwrap()
                    .register("cd", &pair("C", "D"), MatcherOptions::default())
                    .unwrap()
                    .build()
            };
            let mut live = build();
            let mut twin = build();
            let mut live_out = Vec::new();
            let mut twin_out = Vec::new();
            for (t, id, l) in &rows[..cut] {
                let values = [Value::from(*id), Value::from(*l)];
                live_out.extend(live.push(Timestamp::new(*t), values.clone()).unwrap());
                twin_out.extend(twin.push(Timestamp::new(*t), values).unwrap());
            }
            let snap = live.snapshot();
            drop(live);
            let mut restored = PatternBank::restore(&specs, &schema(), &snap).unwrap();
            assert_eq!(restored.emitted_so_far(), twin.emitted_so_far());
            assert_eq!(restored.consumed_events(), twin.consumed_events());
            assert_eq!(restored.ties_at_watermark(), twin.ties_at_watermark());
            for (t, id, l) in &rows[cut..] {
                let values = [Value::from(*id), Value::from(*l)];
                live_out.extend(restored.push(Timestamp::new(*t), values.clone()).unwrap());
                twin_out.extend(twin.push(Timestamp::new(*t), values).unwrap());
            }
            live_out.extend(restored.finish());
            twin_out.extend(twin.finish());
            assert_eq!(live_out, twin_out, "divergence after restore at cut {cut}");
        }
    }

    #[test]
    fn restore_rejects_mismatched_specs() {
        let mut bank = bank(true);
        bank.push(Timestamp::new(0), [Value::from(1), Value::from("A")])
            .unwrap();
        let snap = bank.snapshot();
        // Wrong count.
        let short: Vec<(String, Pattern, MatcherOptions)> =
            vec![("ab".into(), pair("A", "B"), MatcherOptions::default())];
        let err = PatternBank::restore(&short, &schema(), &snap).unwrap_err();
        assert!(matches!(err, CoreError::SnapshotMismatch { .. }), "{err}");
        // Wrong name.
        let renamed: Vec<(String, Pattern, MatcherOptions)> = vec![
            ("zz".into(), pair("A", "B"), MatcherOptions::default()),
            ("cd".into(), pair("C", "D"), MatcherOptions::default()),
        ];
        let err = PatternBank::restore(&renamed, &schema(), &snap).unwrap_err();
        assert!(err.to_string().contains("registered as `zz`"), "{err}");
        // Wrong pattern (fingerprint).
        let swapped: Vec<(String, Pattern, MatcherOptions)> = vec![
            ("ab".into(), pair("A", "C"), MatcherOptions::default()),
            ("cd".into(), pair("C", "D"), MatcherOptions::default()),
        ];
        let err = PatternBank::restore(&swapped, &schema(), &snap).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn empty_bank_consumes_events() {
        let mut bank = PatternBank::builder(&schema()).build();
        assert!(bank.is_empty());
        assert!(bank
            .push(Timestamp::new(0), [Value::from(1), Value::from("A")])
            .unwrap()
            .is_empty());
        assert_eq!(bank.consumed_events(), 1);
        assert!(bank.finish().is_empty());
    }

    #[test]
    fn unsatisfiable_pattern_rides_along() {
        let dead = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "ID", CmpOp::Gt, 10)
            .cond_const("a", "ID", CmpOp::Lt, 5)
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let mut bank = PatternBank::builder(&schema())
            .register("dead", &dead, MatcherOptions::default())
            .unwrap()
            .register("ab", &pair("A", "B"), MatcherOptions::default())
            .unwrap()
            .build();
        assert_eq!(bank.index_class(0), IndexClass::Never);
        for (t, id, l) in workload() {
            bank.push(Timestamp::new(t), [Value::from(id), Value::from(l)])
                .unwrap();
        }
        let stats = bank.stats();
        assert_eq!(stats[0].hits, 0, "dead pattern received events");
        let out = bank.finish();
        assert!(out.iter().all(|(i, _)| *i == 1));
    }
}
