//! Reference (naive) semantics: a from-scratch validator and enumerator
//! for matching substitutions.
//!
//! [`satisfies_conditions_1_3`] checks a substitution directly against
//! conditions 1–3 of Definition 2 — full condition decomposition, set
//! order, window — without any automaton machinery. It serves two roles:
//!
//! * the **swap-validity check** of the condition-4 semantics filter
//!   (`semantics` module);
//! * an independent **test oracle**: [`enumerate_candidates`] brute-forces
//!   the substitution space `Γ` of small inputs so property tests can
//!   cross-validate the engine.

use ses_event::{EventId, Relation};
use ses_pattern::{CompiledPattern, CompiledRhs, VarId};

/// Checks conditions 1–3 of Definition 2 for a complete substitution.
///
/// `bindings` must be sorted by `(event, var)` (the canonical match
/// order); each singleton variable must be bound exactly once, each group
/// variable at least once, and events must be pairwise distinct.
pub fn satisfies_conditions_1_3(
    pattern: &CompiledPattern,
    relation: &Relation,
    bindings: &[(VarId, EventId)],
) -> bool {
    let p = pattern.pattern();

    // Structural checks: binding multiplicities and event distinctness.
    let mut counts = vec![0usize; p.num_vars()];
    let mut events: Vec<EventId> = Vec::with_capacity(bindings.len());
    for &(v, e) in bindings {
        if v.index() >= p.num_vars() {
            return false;
        }
        counts[v.index()] += 1;
        events.push(e);
    }
    events.sort_unstable();
    if events.windows(2).any(|w| w[0] == w[1]) {
        return false; // events in a substitution are distinct
    }
    for (i, var) in p.variables().iter().enumerate() {
        let ok = if var.is_group() {
            counts[i] >= 1
        } else {
            counts[i] == 1
        };
        if !ok {
            return false;
        }
    }

    let events_of = |v: VarId| {
        bindings
            .iter()
            .filter(move |&&(var, _)| var == v)
            .map(|&(_, e)| e)
    };

    // Condition 1: every condition holds for every decomposition.
    for cond in pattern.conditions() {
        match &cond.rhs {
            CompiledRhs::Const(_) => {
                for e in events_of(cond.lhs_var) {
                    if !cond.eval_const(relation.event(e)) {
                        return false;
                    }
                }
            }
            CompiledRhs::Attr { var, .. } => {
                if *var == cond.lhs_var {
                    // Self-condition: each decomposition instantiates both
                    // occurrences to the same event.
                    for e in events_of(cond.lhs_var) {
                        let ev = relation.event(e);
                        if !cond.eval_vars(ev, ev) {
                            return false;
                        }
                    }
                } else {
                    for el in events_of(cond.lhs_var) {
                        for er in events_of(*var) {
                            if !cond.eval_vars(relation.event(el), relation.event(er)) {
                                return false;
                            }
                        }
                    }
                }
            }
        }
    }

    // Condition 2: events of set Vi strictly precede events of set Vi+1
    // (transitively: a strictly increasing chain of set extents).
    for i in 1..p.num_sets() {
        let max_prev = p
            .set(i - 1)
            .iter()
            .flat_map(|&v| events_of(v))
            .map(|e| relation.event(e).ts())
            .max();
        let min_cur = p
            .set(i)
            .iter()
            .flat_map(|&v| events_of(v))
            .map(|e| relation.event(e).ts())
            .min();
        match (max_prev, min_cur) {
            (Some(a), Some(b)) if a < b => {}
            _ => return false,
        }
    }

    // Condition 3: window.
    let min_ts = bindings
        .iter()
        .map(|&(_, e)| relation.event(e).ts())
        .min()
        .expect("non-empty substitution");
    let max_ts = bindings
        .iter()
        .map(|&(_, e)| relation.event(e).ts())
        .max()
        .expect("non-empty substitution");
    max_ts.distance(min_ts) <= p.within()
}

/// Brute-force enumeration of every substitution satisfying conditions
/// 1–3 (`Γ` of Definition 2). Exponential — intended for test oracles on
/// tiny inputs only; panics if the search space exceeds `limit` candidate
/// assignments.
pub fn enumerate_candidates(
    pattern: &CompiledPattern,
    relation: &Relation,
    limit: usize,
) -> Vec<Vec<(VarId, EventId)>> {
    let p = pattern.pattern();
    let n_vars = p.num_vars();
    let n_events = relation.len();
    // Each event is either unused (n_vars) or bound to one variable:
    // (n_vars+1)^n_events assignments.
    let space = (n_vars as u128 + 1).checked_pow(n_events as u32);
    assert!(
        space.is_some_and(|s| s <= limit as u128),
        "enumeration space too large for the oracle"
    );

    let mut out = Vec::new();
    let mut assignment = vec![n_vars; n_events]; // n_vars = unused
    loop {
        let mut bindings: Vec<(VarId, EventId)> = assignment
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v < n_vars)
            .map(|(e, &v)| (VarId(v as u16), EventId::from(e)))
            .collect();
        bindings.sort_unstable_by_key(|&(var, ev)| (ev, var));
        if !bindings.is_empty() && satisfies_conditions_1_3(pattern, relation, &bindings) {
            out.push(bindings);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n_events {
                return out;
            }
            if assignment[i] == 0 {
                assignment[i] = n_vars;
                i += 1;
            } else {
                assignment[i] -= 1;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn rel(rows: &[(i64, i64, &str)]) -> Relation {
        let mut r = Relation::new(schema());
        for (ts, id, l) in rows {
            r.push_values(Timestamp::new(*ts), [Value::from(*id), Value::from(*l)])
                .unwrap();
        }
        r
    }

    fn ab_pattern() -> CompiledPattern {
        Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::ticks(10))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap()
    }

    fn bind(pairs: &[(u16, u32)]) -> Vec<(VarId, EventId)> {
        let mut v: Vec<(VarId, EventId)> = pairs
            .iter()
            .map(|&(var, e)| (VarId(var), EventId(e)))
            .collect();
        v.sort_unstable_by_key(|&(var, ev)| (ev, var));
        v
    }

    #[test]
    fn validator_accepts_good_substitution() {
        let cp = ab_pattern();
        let r = rel(&[(0, 1, "A"), (1, 1, "B")]);
        assert!(satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 0), (1, 1)])));
    }

    #[test]
    fn validator_rejects_condition_violations() {
        let cp = ab_pattern();
        // Wrong label for b.
        let r = rel(&[(0, 1, "A"), (1, 1, "A")]);
        assert!(!satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 0), (1, 1)])));
        // ID mismatch.
        let r = rel(&[(0, 1, "A"), (1, 2, "B")]);
        assert!(!satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 0), (1, 1)])));
        // Set order violated (b before a).
        let r = rel(&[(0, 1, "B"), (1, 1, "A")]);
        assert!(!satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 1), (1, 0)])));
        // Tie between sets (strict order required).
        let r = rel(&[(0, 1, "A"), (0, 1, "B")]);
        assert!(!satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 0), (1, 1)])));
        // Window exceeded.
        let r = rel(&[(0, 1, "A"), (11, 1, "B")]);
        assert!(!satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 0), (1, 1)])));
    }

    #[test]
    fn validator_rejects_structural_violations() {
        let cp = ab_pattern();
        let r = rel(&[(0, 1, "A"), (1, 1, "B"), (2, 1, "B")]);
        // Missing b binding.
        assert!(!satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 0)])));
        // Duplicate singleton binding.
        assert!(!satisfies_conditions_1_3(
            &cp,
            &r,
            &bind(&[(0, 0), (1, 1), (1, 2)])
        ));
        // Same event bound twice.
        assert!(!satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 0), (1, 0)])));
    }

    #[test]
    fn group_variables_need_at_least_one_binding() {
        let cp = Pattern::builder()
            .set(|s| s.plus("p"))
            .cond_const("p", "L", CmpOp::Eq, "P")
            .within(Duration::ticks(10))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let r = rel(&[(0, 1, "P"), (1, 1, "P")]);
        assert!(satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 0)])));
        assert!(satisfies_conditions_1_3(&cp, &r, &bind(&[(0, 0), (0, 1)])));
        assert!(!satisfies_conditions_1_3(&cp, &r, &bind(&[])));
    }

    #[test]
    fn enumerator_finds_gamma() {
        let cp = ab_pattern();
        let r = rel(&[(0, 1, "A"), (1, 1, "B"), (2, 1, "B")]);
        let gamma = enumerate_candidates(&cp, &r, 1_000_000);
        // {a/e1,b/e2} and {a/e1,b/e3}.
        assert_eq!(gamma.len(), 2);
        assert!(gamma.contains(&bind(&[(0, 0), (1, 1)])));
        assert!(gamma.contains(&bind(&[(0, 0), (1, 2)])));
    }

    #[test]
    #[should_panic(expected = "enumeration space too large")]
    fn enumerator_guards_space() {
        let cp = ab_pattern();
        let rows: Vec<(i64, i64, &str)> = (0..40).map(|i| (i, 1, "A")).collect();
        let r = rel(&rows);
        enumerate_candidates(&cp, &r, 1000);
    }
}
