//! Graphviz / textual rendering of SES automata (for `explain`-style
//! tooling and for eyeballing constructions against the paper's figures).

use std::fmt::Write as _;

use crate::automaton::{Automaton, TransCond, Transition};

impl Automaton {
    /// Renders the automaton in Graphviz DOT format. States are labelled
    /// as in the paper's figures (`∅`, `c`, `cd`, …, doubly circled
    /// accepting state); edges carry the bound variable and the condition
    /// set.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph ses {\n  rankdir=LR;\n  node [shape=circle];\n");
        let _ = writeln!(out, "  {} [shape=doublecircle];", self.accept().index());
        let _ = writeln!(out, "  start [shape=none, label=\"\"];");
        let _ = writeln!(out, "  start -> {};", self.start().index());
        for (i, _state) in self.states().iter().enumerate() {
            let label = self.state_label(crate::StateId(i as u32));
            let _ = writeln!(out, "  {i} [label=\"{label}\"];");
        }
        for t in self.transitions() {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\"];",
                t.source.index(),
                t.target.index(),
                escape(&self.transition_label(t)),
            );
        }
        out.push_str("}\n");
        out
    }

    /// A short human-readable label for a transition:
    /// `p+, {p.L = 'P', c.ID = p.ID}`.
    pub fn transition_label(&self, t: &Transition) -> String {
        let p = self.pattern().pattern();
        let mut s = p.var_name(t.var);
        s.push_str(", {");
        for (i, tc) in t.conds.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&self.cond_label(t, tc));
        }
        s.push('}');
        s
    }

    fn cond_label(&self, t: &Transition, tc: &TransCond) -> String {
        let cp = self.pattern();
        let p = cp.pattern();
        let schema = cp.schema();
        match tc {
            TransCond::Const { cond }
            | TransCond::SelfCmp { cond }
            | TransCond::VsBound { cond, .. } => {
                let c = cp.condition(*cond);
                let lhs = format!(
                    "{}.{}",
                    p.var(c.lhs_var).name(),
                    schema.attr_name(c.lhs_attr)
                );
                match &c.rhs {
                    ses_pattern::CompiledRhs::Const(v) => format!("{lhs} {} {v}", c.op),
                    ses_pattern::CompiledRhs::Attr { var, attr } => format!(
                        "{lhs} {} {}.{}",
                        c.op,
                        p.var(*var).name(),
                        schema.attr_name(*attr)
                    ),
                }
            }
            TransCond::TimeAfter { other } => {
                format!("{}.T < {}.T", p.var(*other).name(), p.var(t.var).name())
            }
        }
    }

    /// A multi-line textual description of the full automaton — the
    /// `ses-cli explain` output.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SES automaton: {} states, {} transitions, τ = {}",
            self.num_states(),
            self.num_transitions(),
            self.tau()
        );
        let _ = writeln!(out, "  start:  {}", self.state_label(self.start()));
        let _ = writeln!(out, "  accept: {}", self.state_label(self.accept()));
        for t in self.transitions() {
            let _ = writeln!(
                out,
                "  {} --[{}]--> {}{}",
                self.state_label(t.source),
                self.transition_label(t),
                self.state_label(t.target),
                if t.is_loop { "  (loop)" } else { "" },
            );
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::automaton::Automaton;
    use ses_event::{AttrType, CmpOp, Duration, Schema};
    use ses_pattern::Pattern;

    fn q1_automaton() -> Automaton {
        let schema = Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap();
        let p = Pattern::builder()
            .set(|s| s.var("c").plus("p").var("d"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("d", "L", CmpOp::Eq, "D")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
            .cond_vars("d", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::hours(264))
            .build()
            .unwrap();
        Automaton::build(p.compile(&schema).unwrap()).unwrap()
    }

    #[test]
    fn dot_output_is_wellformed() {
        let a = q1_automaton();
        let dot = a.to_dot();
        assert!(dot.starts_with("digraph ses {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"∅\""));
        // One edge line per transition.
        let edges = dot
            .lines()
            .filter(|l| l.contains("->") && !l.contains("start"))
            .count();
        assert_eq!(edges, a.num_transitions());
    }

    #[test]
    fn describe_mentions_conditions_and_loops() {
        let a = q1_automaton();
        let d = a.describe();
        assert!(d.contains("9 states"));
        assert!(d.contains("(loop)"));
        assert!(d.contains("p.L = 'P'"));
        assert!(d.contains("c.ID = p.ID"));
        assert!(d.contains(".T < b.T"), "{d}");
    }
}
