//! Match selection semantics — conditions 4 and 5 of Definition 2.
//!
//! Algorithm 1 emits the buffer of every accepting automaton run. With
//! nondeterminism (variables that are not pairwise mutually exclusive) and
//! with overlapping starts, the raw runs are a superset of the paper's
//! intended query answers. This module post-filters them. Three modes:
//!
//! * [`MatchSemantics::AllRuns`] — every distinct accepting run, i.e. the
//!   literal output of the paper's Algorithm 1 (conditions 1–3 only).
//! * [`MatchSemantics::Definition2`] — adds conditions 4 and 5:
//!   - **Condition 4 (skip-till-next-match)**: γ is rejected when some
//!     variable `v'` could have been bound to a strictly earlier event
//!     `e''` (with `minT(γ).T < e''.T < e'.T`) by a run that *agrees with
//!     γ on everything before `e''`*. Two sound tests implement this:
//!     the **swap** test (replacing `v'/e'` by `v'/e''` still satisfies
//!     conditions 1–3 — the agreeing run is γ itself minus the swap) and
//!     the **prefix** test (another candidate binds `v'/e''` and has
//!     exactly γ's bindings before `e''`). *Interpretation note*: read
//!     literally, condition 4 quantifies over bindings in arbitrary
//!     `γ' ∈ Γ`, which would reject the paper's own worked answer for
//!     patient 1 (patient 2's `p/e6` falls between `p/e4` and `p/e9`);
//!     the paper's explanation and Example 4 make clear the intended
//!     reading is the earliest *compatible* binding, which the
//!     prefix-agreement formulation captures. See DESIGN.md.
//!   - **Condition 5 (MAXIMAL, greedy)**: γ is rejected if it is a proper
//!     subset of another candidate with the same first binding.
//! * [`MatchSemantics::Maximal`] — [`MatchSemantics::Definition2`] plus
//!   global proper-subset removal. This reproduces the paper's stated Q1
//!   answers exactly: Definition 2 still admits *suffix* matches (e.g.
//!   `{d/e7, c/e8, p/e10, p/e11, b/e13}` in Figure 1, a strict subset of
//!   patient 2's answer that starts one event later), which the paper's
//!   prose — "(1) the earliest possible matching events and (2) the
//!   maximal number of matching events" — clearly excludes.

use ses_event::{EventId, Relation, Timestamp};
use ses_pattern::{CompiledPattern, VarId};

use crate::adjudicate::{GroupIndex, SurvivorStore, ViableIndex};
use crate::engine::RawMatch;
use crate::matches::Match;
use crate::reference::satisfies_conditions_1_3;

/// Which substitutions [`select`] returns. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchSemantics {
    /// Every distinct accepting run of Algorithm 1 (conditions 1–3 only).
    AllRuns,
    /// Conditions 1–5 of Definition 2 (swap interpretation of cond. 4).
    Definition2,
    /// [`MatchSemantics::Definition2`] plus global subset removal — the
    /// paper's worked query answers. The default.
    #[default]
    Maximal,
}

/// Which adjudicator implementation evaluates conditions 4–5 and
/// maximality. Both produce identical matches and identical streaming
/// emission schedules — `tests/adjudicator_vs_bruteforce.rs` proves it —
/// so this is a deployment knob, deliberately excluded from the
/// checkpoint fingerprint like [`crate::ColumnarMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdjudicationMode {
    /// Sorted-group sweep over posting-list/prefix-hash indexes with a
    /// bounded viable-event scan for condition 4 (see
    /// `docs/adjudication.md`). The default.
    #[default]
    Indexed,
    /// The original all-pairs scans, quadratic in the group size and
    /// linear in the retained relation per binding. Kept as the
    /// differential-test oracle and benchmark baseline.
    Pairwise,
}

/// Applies the selected semantics to the engine's raw matches using the
/// default [`AdjudicationMode::Indexed`] adjudicator.
pub fn select(
    raw: Vec<RawMatch>,
    relation: &Relation,
    pattern: &CompiledPattern,
    semantics: MatchSemantics,
) -> Vec<Match> {
    select_with(
        raw,
        relation,
        pattern,
        semantics,
        AdjudicationMode::default(),
    )
}

/// [`select`] with an explicit adjudicator implementation.
pub fn select_with(
    raw: Vec<RawMatch>,
    relation: &Relation,
    pattern: &CompiledPattern,
    semantics: MatchSemantics,
    adjudication: AdjudicationMode,
) -> Vec<Match> {
    let mut candidates: Vec<Match> = raw.into_iter().map(Match::from_raw).collect();
    candidates.sort();
    candidates.dedup();
    if semantics == MatchSemantics::AllRuns {
        return candidates;
    }

    // Conditions 4 and 5 are closed within first-binding groups (see
    // [`Adjudicator`]), and a Maximal killer's first binding never
    // follows its victim's — so adjudicating the groups in ascending
    // first-binding order reproduces the global filter exactly. Batch
    // and streaming share this code path, which is what makes the
    // stream-vs-batch differential suite a structural equivalence.
    let mut groups: std::collections::BTreeMap<GroupKey, Vec<Match>> =
        std::collections::BTreeMap::new();
    for m in candidates {
        groups.entry(group_key(&m)).or_default().push(m);
    }
    let mut adjudicator = Adjudicator::new(semantics, adjudication);
    let mut out = Vec::new();
    for (_, group) in groups {
        out.extend(adjudicator.adjudicate_group(group, relation, pattern));
    }
    // Group order is event-major; restore the canonical match order.
    out.sort();
    out
}

/// A candidate group key: the first binding in `(event, variable)` order.
/// Event ids are chronological, so ascending keys are ascending `minT`.
pub(crate) type GroupKey = (EventId, VarId);

/// The group a candidate belongs to for adjudication purposes.
pub(crate) fn group_key(m: &Match) -> GroupKey {
    let (var, event) = m.bindings()[0];
    (event, var)
}

/// Incremental application of conditions 4–5 and maximality, one
/// first-binding group at a time.
///
/// Feeding groups in ascending [`GroupKey`] order yields exactly the
/// matches the one-shot global filter produces, because the quantifiers
/// of Definition 2 decompose along first bindings:
///
/// * **Condition 4 (prefix test)** — an agreeing run shares every
///   binding of γ strictly before the alternative's timestamp, and the
///   alternative lies strictly after `minT(γ)`; agreement therefore
///   forces the same first binding. The swap test needs no candidate set
///   at all. Both are closed within the group.
/// * **Condition 5** — quantifies over candidates with the same first
///   binding by definition.
/// * **Maximality** — a killer `γ' ⊋ γ` contains γ's first binding, so
///   its own first binding cannot be later: killers live in the same or
///   an earlier group. Earlier groups' Definition-2 survivors are
///   accumulated; later groups can never retroactively kill an emitted
///   match.
///
/// For streaming, a group is adjudicated once the watermark makes it
/// complete (no run starting at `minT` can still grow once
/// `watermark − minT > τ`), and accumulated survivors are prunable once
/// `minT < watermark − 2τ` — any later victim's window reaches back at
/// most τ before its own `minT`, which is itself at least
/// `watermark − τ`.
#[derive(Debug)]
pub(crate) struct Adjudicator {
    semantics: MatchSemantics,
    mode: AdjudicationMode,
    /// Definition-2 survivors of adjudicated groups, kept (with their
    /// `minT`) as potential Maximal killers for later groups.
    survivors: SurvivorStore,
    /// Per-variable viable-event cache for the indexed condition-4 swap
    /// scan, extended monotonically as groups arrive. Rebuilt lazily
    /// after a snapshot restore; never part of the snapshot itself.
    viable: ViableIndex,
}

impl Adjudicator {
    /// An adjudicator with no groups processed yet.
    pub(crate) fn new(semantics: MatchSemantics, mode: AdjudicationMode) -> Adjudicator {
        Adjudicator {
            semantics,
            mode,
            survivors: SurvivorStore::new(),
            viable: ViableIndex::new(),
        }
    }

    /// Adjudicates one complete group of candidates (all sharing a first
    /// binding). Groups must arrive in ascending [`GroupKey`] order, and
    /// candidates must satisfy conditions 1–3 (engine-produced raw
    /// matches do by construction — the indexed swap test relies on it).
    /// Returns the group's final matches under the configured semantics.
    pub(crate) fn adjudicate_group(
        &mut self,
        group: Vec<Match>,
        relation: &Relation,
        pattern: &CompiledPattern,
    ) -> Vec<Match> {
        let mut group = group;
        group.sort();
        group.dedup();
        if group.is_empty() || self.semantics == MatchSemantics::AllRuns {
            return group;
        }
        match self.mode {
            AdjudicationMode::Pairwise => self.adjudicate_pairwise(group, relation, pattern),
            AdjudicationMode::Indexed => self.adjudicate_indexed(group, relation, pattern),
        }
    }

    /// The legacy all-pairs adjudication — the oracle the indexed path
    /// is differentially tested against.
    fn adjudicate_pairwise(
        &mut self,
        group: Vec<Match>,
        relation: &Relation,
        pattern: &CompiledPattern,
    ) -> Vec<Match> {
        let kept: Vec<Match> = group
            .iter()
            .filter(|m| {
                survives_condition_4(m, relation, pattern, &group)
                    && survives_condition_5(m, &group)
            })
            .cloned()
            .collect();

        if self.semantics == MatchSemantics::Definition2 {
            return kept;
        }

        // Maximal: drop matches properly contained in a same-group or
        // earlier-group Definition-2 survivor, then remember this
        // group's survivors as killers for later groups.
        let finals: Vec<Match> = kept
            .iter()
            .filter(|m| {
                !kept.iter().any(|o| m.is_proper_subset_of(o)) && !self.survivors.kills_pairwise(m)
            })
            .cloned()
            .collect();
        for m in kept {
            let min_ts = relation.event(m.first_event()).ts();
            self.survivors.push(min_ts, m);
        }
        finals
    }

    /// The indexed adjudication: identical verdicts in sorted group
    /// order, via the structures in [`crate::adjudicate`].
    fn adjudicate_indexed(
        &mut self,
        group: Vec<Match>,
        relation: &Relation,
        pattern: &CompiledPattern,
    ) -> Vec<Match> {
        let gi = GroupIndex::build(&group, relation);
        self.viable
            .ensure_cover(pattern, relation, gi.cover_needed());
        let kept: Vec<bool> = (0..group.len())
            .map(|i| {
                gi.survives_condition_4(i, relation, pattern, &self.viable)
                    && gi.survives_condition_5(i)
            })
            .collect();

        if self.semantics == MatchSemantics::Definition2 {
            return group
                .into_iter()
                .zip(kept)
                .filter_map(|(m, k)| k.then_some(m))
                .collect();
        }

        let finals: Vec<Match> = (0..group.len())
            .filter(|&i| {
                kept[i]
                    && !gi.dominated_by_kept(i, &kept)
                    && !self.survivors.kills_indexed(&group[i])
            })
            .map(|i| group[i].clone())
            .collect();
        let min_ts = relation.event(group[0].first_event()).ts();
        for (m, k) in group.into_iter().zip(kept) {
            if k {
                self.survivors.push(min_ts, m);
            }
        }
        finals
    }

    /// Discards accumulated survivors whose `minT` precedes `cutoff` —
    /// they can no longer kill any group still to come. Used by the
    /// streaming matcher to bound memory; harmless to never call.
    pub(crate) fn prune_survivors(&mut self, cutoff: Timestamp) {
        self.survivors.prune(cutoff);
    }

    /// Number of retained killer candidates (streaming memory probe).
    pub(crate) fn survivor_count(&self) -> usize {
        self.survivors.live().len()
    }

    /// The retained killers with their `minT` — read by the streaming
    /// matcher's snapshot.
    pub(crate) fn survivors(&self) -> &[(Timestamp, Match)] {
        self.survivors.live()
    }

    /// Replaces the killer set wholesale — the restore counterpart of
    /// [`Adjudicator::survivors`].
    pub(crate) fn restore_survivors(&mut self, survivors: Vec<(Timestamp, Match)>) {
        self.survivors.restore(survivors);
    }
}

/// Condition 4: no variable of γ could have bound a strictly earlier
/// in-extent event via an agreeing-prefix run. Implemented as the union
/// of the swap test (against the full `Γ`, via direct validity checking)
/// and the prefix test (against the accepted candidate set).
fn survives_condition_4(
    m: &Match,
    relation: &Relation,
    pattern: &CompiledPattern,
    candidates: &[Match],
) -> bool {
    let min_ts = relation.event(m.first_event()).ts();
    for &(var, event) in m.bindings() {
        let bound_ts = relation.event(event).ts();
        // Candidate earlier events strictly inside (minT, e.T). Event ids
        // are chronological, so a linear scan up to `event` suffices.
        // Start at the first retained event: anything evicted is older
        // than `minT` of every live candidate and would be skipped anyway.
        for alt_idx in relation.first_index()..event.index() {
            let alt = EventId::from(alt_idx);
            let alt_ts = relation.event(alt).ts();
            if alt_ts <= min_ts || alt_ts >= bound_ts {
                continue;
            }
            if m.events().any(|e| e == alt) {
                continue; // already used in γ (possibly by another variable)
            }
            if swap_is_valid(m, var, event, alt, relation, pattern)
                || prefix_alternative_exists(m, var, alt, alt_ts, relation, candidates)
            {
                return false;
            }
        }
    }
    true
}

/// `true` iff some candidate binds `var/alt` and agrees with `m` on every
/// binding strictly before `alt`'s timestamp (stream position for ties).
fn prefix_alternative_exists(
    m: &Match,
    var: VarId,
    alt: EventId,
    alt_ts: Timestamp,
    relation: &Relation,
    candidates: &[Match],
) -> bool {
    let prefix_of = |x: &Match| -> Vec<(VarId, EventId)> {
        x.bindings()
            .iter()
            .copied()
            .filter(|&(_, e)| relation.event(e).ts() < alt_ts)
            .collect()
    };
    let m_prefix = prefix_of(m);
    candidates
        .iter()
        .any(|other| other.contains(var, alt) && prefix_of(other) == m_prefix)
}

/// Checks whether γ with binding `var/event` replaced by `var/alt`
/// satisfies conditions 1–3.
fn swap_is_valid(
    m: &Match,
    var: VarId,
    event: EventId,
    alt: EventId,
    relation: &Relation,
    pattern: &CompiledPattern,
) -> bool {
    let mut bindings: Vec<(VarId, EventId)> = m
        .bindings()
        .iter()
        .map(|&(v, e)| {
            if v == var && e == event {
                (v, alt)
            } else {
                (v, e)
            }
        })
        .collect();
    bindings.sort_unstable_by_key(|&(v, e)| (e, v));
    satisfies_conditions_1_3(pattern, relation, &bindings)
}

/// Condition 5: not a proper subset of another candidate with the same
/// first binding.
fn survives_condition_5(m: &Match, all: &[Match]) -> bool {
    let first = m.bindings()[0];
    !all.iter()
        .any(|other| other.bindings()[0] == first && m.is_proper_subset_of(other))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn rel(rows: &[(i64, i64, &str)]) -> Relation {
        let mut r = Relation::new(schema());
        for (ts, id, l) in rows {
            r.push_values(Timestamp::new(*ts), [Value::from(*id), Value::from(*l)])
                .unwrap();
        }
        r
    }

    fn raw(bindings: &[(u16, u32)]) -> RawMatch {
        let mut b: Vec<(VarId, EventId)> = bindings
            .iter()
            .map(|&(v, e)| (VarId(v), EventId(e)))
            .collect();
        b.sort_unstable_by_key(|&(var, ev)| (ev, var));
        RawMatch { bindings: b }
    }

    fn ab_pattern() -> CompiledPattern {
        // a then b, same ID.
        Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::ticks(100))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap()
    }

    fn pb_pattern() -> CompiledPattern {
        // p+ then b.
        Pattern::builder()
            .set(|s| s.plus("p"))
            .set(|s| s.var("b"))
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(100))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap()
    }

    #[test]
    fn all_runs_dedups_identical() {
        let cp = ab_pattern();
        let r = rel(&[(0, 1, "A"), (1, 1, "B")]);
        let out = select(
            vec![raw(&[(0, 0), (1, 1)]), raw(&[(0, 0), (1, 1)])],
            &r,
            &cp,
            MatchSemantics::AllRuns,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn condition4_rejects_later_than_necessary_binding() {
        let cp = ab_pattern();
        // A@0, B@1, B@2 (same ID): {a/e1, b/e3} can swap b to e2 → drop;
        // {a/e1, b/e2} survives.
        let r = rel(&[(0, 1, "A"), (1, 1, "B"), (2, 1, "B")]);
        let out = select(
            vec![raw(&[(0, 0), (1, 1)]), raw(&[(0, 0), (1, 2)])],
            &r,
            &cp,
            MatchSemantics::Definition2,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].last_event(), EventId(1));
    }

    #[test]
    fn condition4_swap_respects_other_conditions() {
        let cp = ab_pattern();
        // The earlier B belongs to a different patient: the swap violates
        // a.ID = b.ID, so the later binding is legitimate.
        let r = rel(&[(0, 1, "A"), (1, 2, "B"), (2, 1, "B")]);
        let out = select(
            vec![raw(&[(0, 0), (1, 2)])],
            &r,
            &cp,
            MatchSemantics::Definition2,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn condition4_alternative_before_min_is_harmless() {
        let cp = pb_pattern();
        // P@0 P@1 B@2: the suffix run {p/e2, b/e3} has an earlier P at e1,
        // but e1.T ≤ minT(γ)... it *is* before the start → cannot violate.
        let r = rel(&[(0, 1, "P"), (1, 1, "P"), (2, 1, "B")]);
        let out = select(
            vec![raw(&[(0, 0), (0, 1), (1, 2)]), raw(&[(0, 1), (1, 2)])],
            &r,
            &cp,
            MatchSemantics::Definition2,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn maximal_drops_suffix_runs() {
        let cp = pb_pattern();
        let r = rel(&[(0, 1, "P"), (1, 1, "P"), (2, 1, "B")]);
        let out = select(
            vec![raw(&[(0, 0), (0, 1), (1, 2)]), raw(&[(0, 1), (1, 2)])],
            &r,
            &cp,
            MatchSemantics::Maximal,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn condition5_drops_nonmaximal_same_start() {
        let cp = pb_pattern();
        // Non-greedy run {p/e1, b/e3} is a proper subset of the greedy
        // {p/e1, p/e2, b/e3} with the same first binding.
        let r = rel(&[(0, 1, "P"), (1, 1, "P"), (2, 1, "B")]);
        let out = select(
            vec![raw(&[(0, 0), (1, 2)]), raw(&[(0, 0), (0, 1), (1, 2)])],
            &r,
            &cp,
            MatchSemantics::Definition2,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn condition5_keeps_subsets_with_different_start() {
        let cp = pb_pattern();
        let r = rel(&[(0, 1, "P"), (1, 1, "P"), (2, 1, "B")]);
        let out = select(
            vec![
                raw(&[(0, 0), (0, 1), (1, 2)]),
                raw(&[(0, 1), (1, 2)]), // different first binding
            ],
            &r,
            &cp,
            MatchSemantics::Definition2,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_input() {
        let cp = ab_pattern();
        let r = rel(&[]);
        for sem in [
            MatchSemantics::AllRuns,
            MatchSemantics::Definition2,
            MatchSemantics::Maximal,
        ] {
            assert!(select(vec![], &r, &cp, sem).is_empty());
        }
    }

    const BOTH_BACKENDS: [AdjudicationMode; 2] =
        [AdjudicationMode::Indexed, AdjudicationMode::Pairwise];

    #[test]
    fn condition4_duplicate_timestamp_is_no_swap() {
        let cp = ab_pattern();
        // A@0, then two same-ID Bs sharing ts 5: neither B is *strictly*
        // earlier than the other, so condition 4 cannot swap either
        // binding away — both candidates survive Definition 2.
        let r = rel(&[(0, 1, "A"), (5, 1, "B"), (5, 1, "B")]);
        let group = vec![raw(&[(0, 0), (1, 1)]), raw(&[(0, 0), (1, 2)])];
        for mode in BOTH_BACKENDS {
            let out = select_with(group.clone(), &r, &cp, MatchSemantics::Definition2, mode);
            assert_eq!(out.len(), 2, "{mode:?}");
        }
    }

    #[test]
    fn condition4_swap_fires_across_duplicate_timestamps() {
        let cp = ab_pattern();
        // A@0, B@1, B@1, B@2 (same ID): the B@2 binding has two valid
        // strictly-earlier alternatives (the tied pair at ts 1) → it is
        // later than necessary and drops; the tied pair itself survives,
        // since equal timestamps are not "earlier".
        let r = rel(&[(0, 1, "A"), (1, 1, "B"), (1, 1, "B"), (2, 1, "B")]);
        let group = vec![
            raw(&[(0, 0), (1, 1)]),
            raw(&[(0, 0), (1, 2)]),
            raw(&[(0, 0), (1, 3)]),
        ];
        for mode in BOTH_BACKENDS {
            let out = select_with(group.clone(), &r, &cp, MatchSemantics::Definition2, mode);
            assert_eq!(out.len(), 2, "{mode:?}");
            assert!(
                out.iter().all(|m| m.last_event() != EventId(3)),
                "{mode:?}: the later-than-necessary binding survived"
            );
        }
    }

    #[test]
    fn condition5_drops_whole_nested_chain() {
        let cp = pb_pattern();
        // A nested containment chain sharing one first binding: every
        // proper prefix run is condition-5 food; only the full run stays.
        let r = rel(&[(0, 1, "P"), (1, 1, "P"), (2, 1, "P"), (3, 1, "B")]);
        let group = vec![
            raw(&[(0, 0), (1, 3)]),
            raw(&[(0, 0), (0, 1), (1, 3)]),
            raw(&[(0, 0), (0, 1), (0, 2), (1, 3)]),
        ];
        for mode in BOTH_BACKENDS {
            let out = select_with(group.clone(), &r, &cp, MatchSemantics::Definition2, mode);
            assert_eq!(out.len(), 1, "{mode:?}");
            assert_eq!(out[0].len(), 4, "{mode:?}");
        }
    }

    #[test]
    fn survivor_pruning_cutoff_is_exact() {
        // Streaming prunes survivors at `watermark − 2τ`; a survivor
        // whose minT sits exactly on the cutoff must be retained (a
        // later candidate can still tie into its window), one tick past
        // it must go. Both backends agree on the boundary.
        let cp = ab_pattern();
        let r = rel(&[(10, 1, "A"), (11, 1, "B")]);
        for mode in BOTH_BACKENDS {
            let mut adj = Adjudicator::new(MatchSemantics::Maximal, mode);
            let kept = adj.adjudicate_group(
                vec![Match::from_bindings(vec![
                    (VarId(0), EventId(0)),
                    (VarId(1), EventId(1)),
                ])],
                &r,
                &cp,
            );
            assert_eq!(kept.len(), 1, "{mode:?}");
            assert_eq!(adj.survivor_count(), 1, "{mode:?}");
            adj.prune_survivors(Timestamp::new(10));
            assert_eq!(adj.survivor_count(), 1, "{mode:?}: cutoff == minT dropped");
            adj.prune_survivors(Timestamp::new(11));
            assert_eq!(adj.survivor_count(), 0, "{mode:?}: cutoff > minT retained");
        }
    }
}
