//! Automaton states as variable bitsets.
//!
//! A state of the SES automaton is a subset `q ⊆ V` of the pattern's event
//! variables (Definition 3). With at most 64 variables per pattern, a state
//! is a `u64` bitmask over [`VarId`] indices; the powerset construction and
//! transition targets are then O(1) mask operations.

use std::fmt;

use ses_pattern::VarId;

/// A set of event variables, i.e. the label of an automaton state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct StateSet(u64);

impl StateSet {
    /// The empty set (the automaton's start state `∅`).
    pub const EMPTY: StateSet = StateSet(0);

    /// Creates a state set from a raw bitmask.
    #[inline]
    pub const fn from_bits(bits: u64) -> StateSet {
        StateSet(bits)
    }

    /// The raw bitmask.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The singleton set `{v}`.
    #[inline]
    pub fn singleton(v: VarId) -> StateSet {
        StateSet(v.bit())
    }

    /// `self ∪ {v}`.
    #[inline]
    pub fn with(self, v: VarId) -> StateSet {
        StateSet(self.0 | v.bit())
    }

    /// `v ∈ self`.
    #[inline]
    pub fn contains(self, v: VarId) -> bool {
        self.0 & v.bit() != 0
    }

    /// `self ∪ other`.
    #[inline]
    pub fn union(self, other: StateSet) -> StateSet {
        StateSet(self.0 | other.0)
    }

    /// `self ∩ other`.
    #[inline]
    pub fn intersection(self, other: StateSet) -> StateSet {
        StateSet(self.0 & other.0)
    }

    /// `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: StateSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of variables in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` iff the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the member variables in increasing id order.
    pub fn iter(self) -> impl Iterator<Item = VarId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(VarId(i))
            }
        })
    }

    /// Iterates every subset of `self` (including `∅` and `self`) in
    /// ascending bitmask order — the powerset enumeration of the
    /// automaton construction (§4.2.1).
    pub fn subsets(self) -> impl Iterator<Item = StateSet> {
        let full = self.0;
        let mut next = Some(0u64);
        std::iter::from_fn(move || {
            let cur = next?;
            // Standard submask enumeration: (cur - full) & full steps
            // through submasks in increasing order.
            next = if cur == full {
                None
            } else {
                Some(cur.wrapping_sub(full) & full)
            };
            Some(StateSet(cur))
        })
    }
}

impl fmt::Display for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// Dense identifier of a state within an automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The state's index in the automaton's state table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let a = StateSet::EMPTY.with(VarId(0)).with(VarId(2));
        assert!(a.contains(VarId(0)));
        assert!(!a.contains(VarId(1)));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(StateSet::EMPTY.is_empty());
        assert!(StateSet::singleton(VarId(2)).is_subset_of(a));
        assert!(!a.is_subset_of(StateSet::singleton(VarId(2))));
        assert_eq!(a.union(StateSet::singleton(VarId(1))).len(), 3);
        assert_eq!(a.intersection(StateSet::singleton(VarId(2))).len(), 1);
    }

    #[test]
    fn iter_yields_sorted_vars() {
        let s = StateSet::from_bits(0b1011);
        let vars: Vec<_> = s.iter().map(|v| v.0).collect();
        assert_eq!(vars, vec![0, 1, 3]);
        assert_eq!(StateSet::EMPTY.iter().count(), 0);
    }

    #[test]
    fn subsets_enumerate_full_powerset() {
        let s = StateSet::from_bits(0b101);
        let subs: Vec<_> = s.subsets().map(StateSet::bits).collect();
        assert_eq!(subs, vec![0b000, 0b001, 0b100, 0b101]);
        // Powerset cardinality 2^n.
        assert_eq!(StateSet::from_bits(0b111).subsets().count(), 8);
        assert_eq!(StateSet::EMPTY.subsets().count(), 1);
    }

    #[test]
    fn subsets_are_all_subsets() {
        let s = StateSet::from_bits(0b11010);
        for sub in s.subsets() {
            assert!(sub.is_subset_of(s));
        }
    }

    #[test]
    fn display() {
        let s = StateSet::EMPTY.with(VarId(1)).with(VarId(3));
        assert_eq!(s.to_string(), "{v1,v3}");
        assert_eq!(StateSet::EMPTY.to_string(), "{}");
        assert_eq!(StateId(4).to_string(), "q4");
    }
}
