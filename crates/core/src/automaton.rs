//! SES automaton construction (paper §4.1–4.2).
//!
//! The construction is the paper's two-step process fused into one pass:
//!
//! 1. **Translation of a single event set pattern** (§4.2.1): for `Vi`, a
//!    state per subset of `Vi`, a transition per `(state, unbound
//!    variable)` pair, and a loop transition per `(state, contained group
//!    variable)` pair.
//! 2. **Concatenation** (§4.2.2): the accepting state of `Ni` is merged
//!    with the start state of `Ni+1` by prefixing all of `Ni+1`'s states
//!    with `V1 ∪ … ∪ Vi`; the transitions leaving the merged state gain
//!    the time constraints `v'.T < v.T` for every earlier variable `v'`.
//!
//! A transition's condition set `Θδ` holds exactly the conditions of `Θ`
//! that constrain the newly bound variable against constants, against
//! variables already available in the source state, against itself, plus
//! the concatenation time constraints — Definition 3's construction rule.

use std::collections::HashMap;

use ses_event::Duration;
use ses_pattern::{CompiledPattern, VarId};

use crate::{CoreError, StateId, StateSet};

/// Default cap on the number of automaton states (`Σi 2^|Vi|`).
pub const DEFAULT_MAX_STATES: usize = 1 << 20;

/// One conjunct of a transition's condition set `Θδ`, compiled relative to
/// the variable the transition binds ("the new event").
#[derive(Debug, Clone, PartialEq)]
pub enum TransCond {
    /// A constant condition `v.A φ C` on the new event; `cond` indexes
    /// [`CompiledPattern::conditions`].
    Const {
        /// Condition index in the compiled pattern.
        cond: usize,
    },
    /// A variable condition between the new event and every event already
    /// bound to `other` (the decomposition semantics of §3.2 require every
    /// combination to hold; combinations not involving the new binding
    /// were checked when their own bindings were added).
    VsBound {
        /// Condition index in the compiled pattern.
        cond: usize,
        /// The already-bound variable on the other side.
        other: VarId,
        /// `true` when the new variable is the condition's left-hand side.
        new_is_lhs: bool,
    },
    /// A self-condition `v.A φ v.A'`: under decomposition both occurrences
    /// instantiate to the same event, so it is checked on the new event
    /// alone.
    SelfCmp {
        /// Condition index in the compiled pattern.
        cond: usize,
    },
    /// Concatenation time constraint `other.T < new.T` (strictly before).
    TimeAfter {
        /// The earlier-set variable.
        other: VarId,
    },
}

/// A transition `δ = (q, v, Θδ)` to target `q ∪ {v}`.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Source state.
    pub source: StateId,
    /// Target state (`source` itself for loop transitions).
    pub target: StateId,
    /// The variable the transition binds.
    pub var: VarId,
    /// `true` for a group-variable loop (`q ∪ {v+} = q`).
    pub is_loop: bool,
    /// The compiled condition set `Θδ`.
    pub conds: Vec<TransCond>,
}

/// A state of the automaton.
#[derive(Debug, Clone)]
pub struct State {
    /// The variable set `q ⊆ V` labelling this state.
    pub set: StateSet,
    /// Index of the event set pattern whose lattice this state belongs to
    /// (boundary states belong to the *earlier* set's lattice).
    pub set_index: usize,
}

/// A compiled SES automaton `N = (Q, Δ, qs, qf, τ)` (Definition 3).
#[derive(Debug, Clone)]
pub struct Automaton {
    pattern: CompiledPattern,
    states: Vec<State>,
    by_set: HashMap<u64, StateId>,
    transitions: Vec<Transition>,
    /// `outgoing[q]` is the index range into `transitions` of the
    /// transitions leaving state `q` (transitions are generated grouped by
    /// source).
    outgoing: Vec<std::ops::Range<u32>>,
    /// `outgoing_var_mask[q]` ORs `var.bit()` over the transitions
    /// leaving `q`: when the per-event admission mask shares no bit with
    /// it, no transition can fire and the whole loop is skipped.
    outgoing_var_mask: Vec<u64>,
    start: StateId,
    accept: StateId,
    tau: Duration,
}

impl Automaton {
    /// Builds the SES automaton for a compiled pattern with the default
    /// state budget.
    pub fn build(pattern: CompiledPattern) -> Result<Automaton, CoreError> {
        Automaton::build_with_limit(pattern, DEFAULT_MAX_STATES)
    }

    /// Builds the SES automaton with an explicit state budget.
    pub fn build_with_limit(
        pattern: CompiledPattern,
        max_states: usize,
    ) -> Result<Automaton, CoreError> {
        let p = pattern.pattern();

        // State budget: Σi 2^|Vi| minus shared boundaries.
        let mut required = 1usize; // the start state
        for set in p.sets() {
            let grow = (1usize << set.len()) - 1;
            required = required.saturating_add(grow);
            if required > max_states {
                return Err(CoreError::TooManyStates {
                    required,
                    limit: max_states,
                });
            }
        }

        let mut states: Vec<State> = Vec::with_capacity(required);
        let mut by_set: HashMap<u64, StateId> = HashMap::with_capacity(required);
        let mut transitions: Vec<Transition> = Vec::new();

        let mut intern = |set: StateSet, set_index: usize, states: &mut Vec<State>| -> StateId {
            *by_set.entry(set.bits()).or_insert_with(|| {
                let id = StateId(states.len() as u32);
                states.push(State { set, set_index });
                id
            })
        };

        // Pass 1: intern every state. For set i with prefix P = V1∪…∪Vi−1,
        // the states are { P ∪ s | s ⊆ Vi }. The boundary state P (s = ∅)
        // is the merged accept-of-Ni−1 / start-of-Ni and is interned by the
        // earlier set first, keeping its `set_index` at the earlier set.
        let mut prefix = StateSet::EMPTY;
        let start = intern(prefix, 0, &mut states);
        for (i, set) in p.sets().iter().enumerate() {
            let set_mask = set.iter().fold(StateSet::EMPTY, |acc, v| acc.with(*v));
            for sub in set_mask.subsets() {
                intern(prefix.union(sub), i, &mut states);
            }
            prefix = prefix.union(set_mask);
        }
        // Release the interning closure's mutable borrow of `by_set`.
        #[allow(clippy::drop_non_drop)]
        drop(intern);
        let accept = by_set[&prefix.bits()];

        // Pass 2: transitions, grouped by source state id.
        let num_states = states.len();
        let mut per_source: Vec<Vec<Transition>> = vec![Vec::new(); num_states];
        let mut prefix = StateSet::EMPTY;
        for set in p.sets() {
            let set_mask = set.iter().fold(StateSet::EMPTY, |acc, v| acc.with(*v));
            for sub in set_mask.subsets() {
                let q_set = prefix.union(sub);
                let q = by_set[&q_set.bits()];
                // Binding transitions for each unbound variable of Vi.
                for &v in set {
                    if sub.contains(v) {
                        continue;
                    }
                    let target = by_set[&q_set.with(v).bits()];
                    let conds = compile_conditions(
                        &pattern,
                        v,
                        q_set,
                        /*boundary=*/ sub.is_empty(),
                        prefix,
                    );
                    per_source[q.index()].push(Transition {
                        source: q,
                        target,
                        var: v,
                        is_loop: false,
                        conds,
                    });
                }
                // Loop transitions for each contained group variable of Vi.
                for &v in set {
                    if !sub.contains(v) || !p.var(v).is_group() {
                        continue;
                    }
                    // A loop re-binds v at a state where v is already
                    // available; `sub` is never empty here, so no boundary
                    // time constraints apply (they were enforced when the
                    // first variable of the set was bound).
                    let conds = compile_conditions(&pattern, v, q_set, false, prefix);
                    per_source[q.index()].push(Transition {
                        source: q,
                        target: q,
                        var: v,
                        is_loop: true,
                        conds,
                    });
                }
            }
            prefix = prefix.union(set_mask);
        }

        let mut outgoing = Vec::with_capacity(num_states);
        let mut outgoing_var_mask = Vec::with_capacity(num_states);
        for ts in per_source {
            let begin = transitions.len() as u32;
            outgoing_var_mask.push(ts.iter().fold(0u64, |m, t| m | t.var.bit()));
            transitions.extend(ts);
            outgoing.push(begin..transitions.len() as u32);
        }

        let tau = p.within();
        Ok(Automaton {
            pattern,
            states,
            by_set,
            transitions,
            outgoing,
            outgoing_var_mask,
            start,
            accept,
            tau,
        })
    }

    /// The compiled pattern this automaton implements.
    pub fn pattern(&self) -> &CompiledPattern {
        &self.pattern
    }

    /// All states; indexable by [`StateId`].
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The state labelled with variable set `set`, if it exists.
    pub fn state_for(&self, set: StateSet) -> Option<StateId> {
        self.by_set.get(&set.bits()).copied()
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The transitions leaving state `q`.
    pub fn outgoing(&self, q: StateId) -> &[Transition] {
        let r = &self.outgoing[q.index()];
        &self.transitions[r.start as usize..r.end as usize]
    }

    /// OR of `var.bit()` over the transitions leaving `q`. An event
    /// whose variable-admission mask is disjoint from it cannot fire
    /// any transition from `q`.
    pub fn outgoing_var_mask(&self, q: StateId) -> u64 {
        self.outgoing_var_mask[q.index()]
    }

    /// The start state `qs = ∅`.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The accepting state `qf = V`.
    pub fn accept(&self) -> StateId {
        self.accept
    }

    /// The window `τ`.
    pub fn tau(&self) -> Duration {
        self.tau
    }

    /// Number of states `|Q|`.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions `|Δ|`.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Human-readable label of a state, using the pattern's variable names
    /// concatenated as in the paper's figures (e.g. `cdp+`).
    pub fn state_label(&self, q: StateId) -> String {
        let set = self.states[q.index()].set;
        if set.is_empty() {
            return "∅".to_string();
        }
        let p = self.pattern.pattern();
        set.iter()
            .map(|v| p.var_name(v))
            .collect::<Vec<_>>()
            .join("")
    }
}

/// Definition 3's transition-condition rule: collect every condition that
/// constrains `v` against a constant, against itself, or against a variable
/// in `V1 ∪ … ∪ Vi−1 ∪ q` — plus, on the first transition out of a merged
/// boundary state, the concatenation time constraints against every
/// earlier-set variable.
fn compile_conditions(
    pattern: &CompiledPattern,
    v: VarId,
    q: StateSet,
    boundary: bool,
    prefix: StateSet,
) -> Vec<TransCond> {
    let mut conds = Vec::new();
    // Constant conditions first: they are the cheapest to evaluate and
    // reject most events.
    for &i in pattern.const_conditions_of(v) {
        conds.push(TransCond::Const { cond: i });
    }
    for (i, c) in pattern.conditions().iter().enumerate() {
        let Some(other) = c.other_var() else { continue };
        let lhs = c.lhs_var;
        if lhs == v && other == v {
            conds.push(TransCond::SelfCmp { cond: i });
        } else if lhs == v && (q.contains(other) || other == v) {
            conds.push(TransCond::VsBound {
                cond: i,
                other,
                new_is_lhs: true,
            });
        } else if other == v && q.contains(lhs) {
            conds.push(TransCond::VsBound {
                cond: i,
                other: lhs,
                new_is_lhs: false,
            });
        }
    }
    if boundary {
        for other in prefix.iter() {
            conds.push(TransCond::TimeAfter { other });
        }
    }
    conds
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, CmpOp, Duration, Schema};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    /// The paper's Query Q1 pattern: ⟨{c, p+, d}, {b}⟩.
    fn q1() -> Automaton {
        let p = Pattern::builder()
            .set(|s| s.var("c").plus("p").var("d"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_const("d", "L", CmpOp::Eq, "D")
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
            .cond_vars("c", "ID", CmpOp::Eq, "d", "ID")
            .cond_vars("d", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::hours(264))
            .build()
            .unwrap();
        Automaton::build(p.compile(&schema()).unwrap()).unwrap()
    }

    #[test]
    fn q1_has_the_papers_nine_states() {
        // Figure 5: ∅, c, d, p, cd, cp, dp, cdp, cdpb.
        let a = q1();
        assert_eq!(a.num_states(), 9);
        assert_eq!(a.state_label(a.start()), "∅");
        assert_eq!(a.state_label(a.accept()), "cp+db");
    }

    #[test]
    fn q1_transition_census_matches_figure_5() {
        let a = q1();
        // Figure 5 transitions: 12 binding within V1 (3 from ∅, 2+2+2 from
        // singletons, 1+1+1 into cdp), 4 p+ loops (at p, cp, dp, cdp),
        // 1 b transition = 17.
        assert_eq!(a.num_transitions(), 17);
        let loops = a.transitions().iter().filter(|t| t.is_loop).count();
        assert_eq!(loops, 4);
        // Loops only at states containing p (VarId 1).
        for t in a.transitions().iter().filter(|t| t.is_loop) {
            assert!(a.states()[t.source.index()]
                .set
                .contains(ses_pattern::VarId(1)));
            assert_eq!(t.source, t.target);
        }
    }

    #[test]
    fn start_has_no_incoming_accept_no_outgoing_nonloop() {
        let a = q1();
        assert!(a.transitions().iter().all(|t| t.target != a.start()));
        // Accept state cdpb: no outgoing at all (b is a singleton).
        assert!(a.outgoing(a.accept()).is_empty());
    }

    #[test]
    fn boundary_transitions_carry_time_constraints() {
        let a = q1();
        // The b transition leaves the merged state {c,p,d} and must carry
        // TimeAfter constraints against all three V1 variables (Θ'17).
        let b = ses_pattern::VarId(3);
        let b_trans: Vec<_> = a.transitions().iter().filter(|t| t.var == b).collect();
        assert_eq!(b_trans.len(), 1);
        let time_conds: Vec<_> = b_trans[0]
            .conds
            .iter()
            .filter(|c| matches!(c, TransCond::TimeAfter { .. }))
            .collect();
        assert_eq!(time_conds.len(), 3);
        // And the d.ID = b.ID condition is attached here (d is in q).
        assert!(b_trans[0].conds.iter().any(
            |c| matches!(c, TransCond::VsBound { other, .. } if *other == ses_pattern::VarId(2))
        ));
    }

    #[test]
    fn first_set_transitions_have_no_time_constraints() {
        let a = q1();
        for t in a.transitions() {
            if a.pattern().pattern().var(t.var).set_index() == 0 {
                assert!(
                    !t.conds
                        .iter()
                        .any(|c| matches!(c, TransCond::TimeAfter { .. })),
                    "V1 transition must not carry time constraints"
                );
            }
        }
    }

    #[test]
    fn var_var_condition_attaches_when_other_is_available() {
        let a = q1();
        let c = ses_pattern::VarId(0);
        let p = ses_pattern::VarId(1);
        // From ∅, binding c: only the constant condition (p, d unbound).
        let from_empty: Vec<_> = a
            .outgoing(a.start())
            .iter()
            .filter(|t| t.var == c)
            .collect();
        assert_eq!(from_empty.len(), 1);
        assert!(from_empty[0]
            .conds
            .iter()
            .all(|tc| matches!(tc, TransCond::Const { .. })));
        // From {p}, binding c: constant + c.ID = p.ID (paper's Θ8).
        let p_state = a.state_for(StateSet::singleton(p)).unwrap();
        let from_p: Vec<_> = a.outgoing(p_state).iter().filter(|t| t.var == c).collect();
        assert_eq!(from_p.len(), 1);
        assert!(from_p[0].conds.iter().any(
            |tc| matches!(tc, TransCond::VsBound { other, new_is_lhs: true, .. } if *other == p)
        ));
    }

    #[test]
    fn loop_transitions_recheck_group_conditions() {
        let a = q1();
        let p = ses_pattern::VarId(1);
        let c = ses_pattern::VarId(0);
        // Loop at {c,p}: must include p.L='P' and c.ID=p.ID (paper's Θ13).
        let cp = a.state_for(StateSet::singleton(c).with(p)).unwrap();
        let lp: Vec<_> = a.outgoing(cp).iter().filter(|t| t.is_loop).collect();
        assert_eq!(lp.len(), 1);
        assert!(lp[0]
            .conds
            .iter()
            .any(|tc| matches!(tc, TransCond::Const { .. })));
        assert!(lp[0].conds.iter().any(
            |tc| matches!(tc, TransCond::VsBound { other, new_is_lhs: false, .. } if *other == c)
        ));
        // Loop at {p} alone: only the constant condition (paper's Θ7).
        let p_state = a.state_for(StateSet::singleton(p)).unwrap();
        let lp: Vec<_> = a.outgoing(p_state).iter().filter(|t| t.is_loop).collect();
        assert_eq!(lp.len(), 1);
        assert!(lp[0]
            .conds
            .iter()
            .all(|tc| matches!(tc, TransCond::Const { .. })));
    }

    #[test]
    fn single_set_singleton_pattern_is_two_states() {
        // Figure 3: P = (⟨{b}⟩, {b.L='B'}, 264).
        let p = Pattern::builder()
            .set(|s| s.var("b"))
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::hours(264))
            .build()
            .unwrap();
        let a = Automaton::build(p.compile(&schema()).unwrap()).unwrap();
        assert_eq!(a.num_states(), 2);
        assert_eq!(a.num_transitions(), 1);
        assert_eq!(a.tau(), Duration::hours(264));
        assert_ne!(a.start(), a.accept());
    }

    #[test]
    fn state_budget_is_enforced() {
        let mut b = Pattern::builder();
        b = b.set(|s| {
            for i in 0..25 {
                s.var(format!("v{i}"));
            }
            s
        });
        let p = b.build().unwrap();
        let cp = p.compile(&schema()).unwrap();
        let err = Automaton::build_with_limit(cp, 1 << 20).unwrap_err();
        assert!(matches!(err, CoreError::TooManyStates { .. }));
    }

    #[test]
    fn three_set_concatenation_chains_boundaries() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .set(|s| s.var("c"))
            .build()
            .unwrap();
        let a = Automaton::build(p.compile(&schema()).unwrap()).unwrap();
        // States: ∅, a, ab, abc.
        assert_eq!(a.num_states(), 4);
        assert_eq!(a.num_transitions(), 3);
        // b's transition gets 1 TimeAfter (vs a); c's gets 2 (vs a, b).
        let count_time = |name: &str| {
            let v = a.pattern().pattern().var_id(name).unwrap();
            a.transitions()
                .iter()
                .find(|t| t.var == v)
                .unwrap()
                .conds
                .iter()
                .filter(|c| matches!(c, TransCond::TimeAfter { .. }))
                .count()
        };
        assert_eq!(count_time("a"), 0);
        assert_eq!(count_time("b"), 1);
        assert_eq!(count_time("c"), 2);
    }

    #[test]
    fn exp1_pattern_sizes() {
        // Paper experiment 1: |V1| from 2 to 6 → 2^|V1| + 1 states.
        for n in 2..=6usize {
            let names = ["c", "d", "p", "v", "r", "l"];
            let mut b = Pattern::builder();
            b = b.set(|s| {
                for name in &names[..n] {
                    s.var(*name);
                }
                s
            });
            b = b.set(|s| s.var("b"));
            let p = b.build().unwrap();
            let a = Automaton::build(p.compile(&schema()).unwrap()).unwrap();
            assert_eq!(a.num_states(), (1 << n) + 1);
            // Binding transitions: n · 2^(n−1) within V1 plus 1 for b.
            assert_eq!(a.num_transitions(), n * (1 << (n - 1)) + 1);
        }
    }
}
