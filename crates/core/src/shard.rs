//! Hash-sharded streaming: a [`StreamMatcher`] per shard, routed by a
//! proven partition key.
//!
//! When the pattern proves a partition key (see
//! [`ses_pattern::CompiledPattern::partition_keys`]), no match spans two
//! key values, so a stream splits by `hash(key) % shards` into
//! independent [`StreamMatcher`]s, each with its own instance set Ω,
//! watermark, and eviction window. Per-shard `|Ω|` shrinks to the
//! shard's own keys, and [`ShardedStreamMatcher::push_batch`] runs the
//! shards on scoped threads.
//!
//! Per-shard adjudication is exact under the key proof: adjudication
//! verdicts only compare matches sharing a first binding, and
//! skip-till-next-match swap candidates must satisfy the key equality —
//! both partition-local, so no shard needs another shard's matches.
//!
//! # Idle-shard heartbeat
//!
//! A shard's own watermark only advances when *its* events arrive, so a
//! match on an idle key would otherwise sit pending until the shard's
//! next event (or [`ShardedStreamMatcher::finish`]). Every push
//! therefore *heartbeats* the global watermark to the non-receiving
//! shards ([`StreamMatcher::advance_watermark`]), which sweeps their
//! expired runs, adjudicates decidable matches, and evicts old events —
//! idle shards emit on time and stay bounded. `push_batch` heartbeats
//! each shard once, at the batch's final timestamp, inside the shard's
//! worker thread.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use ses_event::{AttrId, EventError, EventId, PartitionKey, Schema, Timestamp, Value};
use ses_pattern::Pattern;

use crate::automaton::Automaton;
use crate::error::CoreError;
use crate::matcher::{resolve_partition, MatcherOptions, PartitionMode, PartitionStrategy};
use crate::matches::Match;
use crate::probe::{NoProbe, Probe};
use crate::snapshot::{ShardSnapshot, ShardedSnapshot};
use crate::stream::StreamMatcher;

/// One shard: a stream matcher plus the map from its local event ids
/// back to global ones.
#[derive(Debug)]
struct Shard {
    sm: StreamMatcher,
    /// Global ids of this shard's events, indexed by `local - base`.
    ids: Vec<EventId>,
    /// The shard relation's first retained local index; `ids` is pruned
    /// to it whenever the shard evicts.
    base: usize,
    /// Peak `|Ω|` observed on this shard.
    peak_omega: usize,
}

/// Rewrites a shard-local match into global event ids.
fn remap(ids: &[EventId], base: usize, m: &Match) -> Match {
    Match::from_bindings(
        m.bindings()
            .iter()
            .map(|&(v, e)| (v, ids[e.index() - base]))
            .collect(),
    )
}

impl Shard {
    fn note_peak(&mut self) {
        self.peak_omega = self.peak_omega.max(self.sm.active_instances());
    }

    /// Drops id-map entries for events the shard has evicted. Eviction
    /// hysteresis makes this amortized O(1) per event.
    fn prune(&mut self) {
        let first = self.sm.relation().first_index();
        if first > self.base {
            self.ids.drain(..first - self.base);
            self.base = first;
        }
    }
}

/// A partition-parallel [`StreamMatcher`]: events are hash-routed by a
/// proven partition key to independent per-shard stream matchers, and
/// emitted matches are reported in global event ids.
///
/// Requires [`MatcherOptions::partition`] to be `Auto` (with a provable
/// key) or a proven explicit `Key`; construction fails otherwise — a
/// sharded stream over an unproven key would silently lose
/// cross-partition matches.
///
/// ```
/// use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
/// use ses_pattern::Pattern;
/// use ses_core::{MatcherOptions, PartitionMode, ShardedStreamMatcher};
///
/// let schema = Schema::builder()
///     .attr("ID", AttrType::Int)
///     .attr("L", AttrType::Str)
///     .build()
///     .unwrap();
/// let pattern = Pattern::builder()
///     .set(|s| s.var("a").var("b"))
///     .cond_const("a", "L", CmpOp::Eq, "A")
///     .cond_const("b", "L", CmpOp::Eq, "B")
///     .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
///     .within(Duration::ticks(10))
///     .build()
///     .unwrap();
///
/// let options = MatcherOptions {
///     partition: PartitionMode::Auto,
///     ..MatcherOptions::default()
/// };
/// let mut sm = ShardedStreamMatcher::with_options(&pattern, &schema, options, 4).unwrap();
/// for (t, id, l) in [(0, 7, "A"), (1, 9, "A"), (2, 9, "B"), (3, 7, "B")] {
///     sm.push(Timestamp::new(t), [Value::from(id), Value::from(l)]).unwrap();
/// }
/// let mut matches = sm.finish();
/// assert_eq!(matches.len(), 2);
/// ```
#[derive(Debug)]
pub struct ShardedStreamMatcher {
    shards: Vec<Shard>,
    key: AttrId,
    schema: Schema,
    last_ts: Option<Timestamp>,
    next_id: usize,
    emitted: usize,
}

impl ShardedStreamMatcher {
    /// Builds a sharded stream matcher with `shards` shards (clamped to
    /// at least one). Fails with [`CoreError::UnprovenPartitionKey`]
    /// when the options' partition mode does not resolve to a proven
    /// key.
    pub fn with_options(
        pattern: &Pattern,
        schema: &Schema,
        options: MatcherOptions,
        shards: usize,
    ) -> Result<ShardedStreamMatcher, CoreError> {
        let compiled = crate::matcher::compile_pattern(pattern, schema, &options)?;
        let key = match resolve_partition(&compiled, &options)? {
            PartitionStrategy::Key(key) => key,
            // Time slicing is batch-only: a stream has no slice-end
            // flush point, and every shard would need every event — so
            // sharding refuses rather than silently running one shard.
            PartitionStrategy::TimeSliced | PartitionStrategy::Global => {
                let reason = match options.partition {
                    PartitionMode::Off => "partition mode is `Off`; a sharded stream needs a \
                                           key — use `StreamMatcher` for a global stream"
                        .to_string(),
                    PartitionMode::Auto | PartitionMode::TimeAuto if !options.flush_at_end => {
                        "partitioned execution requires `flush_at_end`".to_string()
                    }
                    PartitionMode::TimeAuto => "the pattern proves no partition key, and \
                                                time-sliced execution is batch-only — a stream \
                                                has no slice-end flush point"
                        .to_string(),
                    _ => "the pattern proves no partition key".to_string(),
                };
                return Err(CoreError::UnprovenPartitionKey {
                    attr: "<auto>".to_string(),
                    reason,
                });
            }
        };
        let automaton = Automaton::build_with_limit(compiled, options.max_states)?;
        let shards = (0..shards.max(1))
            .map(|_| Shard {
                sm: StreamMatcher::from_automaton(automaton.clone(), options.clone()),
                ids: Vec::new(),
                base: 0,
                peak_omega: 0,
            })
            .collect();
        Ok(ShardedStreamMatcher {
            shards,
            key,
            schema: schema.clone(),
            last_ts: None,
            next_id: 0,
            emitted: 0,
        })
    }

    /// Enables or disables eviction on every shard (see
    /// [`StreamMatcher::with_eviction`]).
    pub fn with_eviction(mut self, evict: bool) -> ShardedStreamMatcher {
        self.shards = self
            .shards
            .into_iter()
            .map(|mut s| {
                s.sm = s.sm.with_eviction(evict);
                s
            })
            .collect();
        self
    }

    /// Validates a row and the global arrival order before routing.
    fn check(&self, ts: Timestamp, values: &[Value]) -> Result<(), EventError> {
        self.schema.check_row(values)?;
        if let Some(last) = self.last_ts {
            if ts < last {
                return Err(EventError::OutOfOrder {
                    previous: last.ticks(),
                    got: ts.ticks(),
                });
            }
        }
        Ok(())
    }

    fn shard_of(&self, values: &[Value]) -> usize {
        let mut h = DefaultHasher::new();
        PartitionKey::of(&values[self.key.index()]).hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Pushes one event, returning the matches finalized across all
    /// shards: the receiving shard's, plus any an idle shard finalizes
    /// when the global watermark is heartbeat to it.
    pub fn push(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<Vec<Match>, EventError> {
        self.push_with_probe(ts, values, &mut NoProbe)
    }

    /// [`ShardedStreamMatcher::push`] with a probe; the probe observes
    /// the receiving shard's engine events.
    pub fn push_with_probe<P: Probe>(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
        probe: &mut P,
    ) -> Result<Vec<Match>, EventError> {
        let values = values.into();
        self.check(ts, &values)?;
        let si = self.shard_of(&values);
        let shard = &mut self.shards[si];
        // The shard push cannot fail: the row and the global order were
        // checked above, and the shard's last timestamp never exceeds
        // the global one.
        shard.ids.push(EventId::from(self.next_id));
        let out = shard.sm.push_with_probe(ts, values, probe)?;
        self.last_ts = Some(ts);
        self.next_id += 1;
        shard.note_peak();
        let mut out: Vec<Match> = out
            .iter()
            .map(|m| remap(&shard.ids, shard.base, m))
            .collect();
        shard.prune();
        // Heartbeat: idle shards see the global watermark so matches on
        // quiet keys finalize now, not at those shards' next events.
        for (i, s) in self.shards.iter_mut().enumerate() {
            if i == si {
                continue;
            }
            let beat = s.sm.advance_watermark(ts);
            out.extend(beat.iter().map(|m| remap(&s.ids, s.base, m)));
            s.prune();
        }
        out.sort_unstable();
        self.emitted += out.len();
        Ok(out)
    }

    /// Pushes a batch of events, running the shards on scoped threads,
    /// and returns the matches finalized during the batch in canonical
    /// order. Routing (and the order/schema checks) is sequential so
    /// global event ids reflect arrival order; only the per-shard
    /// matching runs in parallel.
    pub fn push_batch(
        &mut self,
        events: Vec<(Timestamp, Vec<Value>)>,
    ) -> Result<Vec<Match>, EventError> {
        let mut routed: Vec<Vec<(Timestamp, Vec<Value>)>> = Vec::new();
        routed.resize_with(self.shards.len(), Vec::new);
        for (ts, values) in events {
            self.check(ts, &values)?;
            let si = self.shard_of(&values);
            self.shards[si].ids.push(EventId::from(self.next_id));
            self.next_id += 1;
            self.last_ts = Some(ts);
            routed[si].push((ts, values));
        }
        // Heartbeat target: once a shard has drained its routed events,
        // advance it to the batch's final global timestamp so idle (or
        // early-finished) shards finalize and evict on time.
        let final_ts = self.last_ts;
        let results: Vec<Result<Vec<Match>, EventError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(routed)
                .map(|(shard, events)| {
                    scope.spawn(move || -> Result<Vec<Match>, EventError> {
                        let mut local = Vec::new();
                        for (ts, values) in events {
                            let emitted = shard.sm.push(ts, values)?;
                            shard.note_peak();
                            local.extend(emitted.iter().map(|m| remap(&shard.ids, shard.base, m)));
                        }
                        if let Some(ts) = final_ts {
                            let beat = shard.sm.advance_watermark(ts);
                            local.extend(beat.iter().map(|m| remap(&shard.ids, shard.base, m)));
                        }
                        shard.prune();
                        Ok(local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut out = Vec::new();
        for r in results {
            // Unreachable after the pre-checks above, but propagated
            // rather than swallowed.
            out.extend(r?);
        }
        out.sort_unstable();
        self.emitted += out.len();
        Ok(out)
    }

    /// Ends every shard's stream, flushing still-accepting instances and
    /// adjudicating pending matches; returns the remaining matches in
    /// canonical order.
    pub fn finish(self) -> Vec<Match> {
        let mut out: Vec<Match> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .into_iter()
                .map(|shard| {
                    scope.spawn(move || {
                        let Shard { sm, ids, base, .. } = shard;
                        sm.finish()
                            .iter()
                            .map(|m| remap(&ids, base, m))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        out.sort_unstable();
        out
    }

    /// Captures the complete dynamic state of every shard plus the
    /// router bookkeeping under one manifest — the sharded counterpart
    /// of [`StreamMatcher::snapshot`].
    pub fn snapshot(&mut self) -> ShardedSnapshot {
        let fingerprint = self.shards[0].sm.fingerprint();
        ShardedSnapshot {
            fingerprint,
            key: self.key,
            last_ts: self.last_ts,
            next_id: self.next_id as u64,
            emitted: self.emitted as u64,
            shards: self
                .shards
                .iter_mut()
                .map(|s| ShardSnapshot {
                    matcher: s.sm.snapshot(),
                    ids: s.ids.clone(),
                    base: s.base as u64,
                    peak_omega: s.peak_omega as u64,
                })
                .collect(),
        }
    }

    /// Rebuilds a sharded matcher from the pattern/schema/options it was
    /// compiled with and a [`ShardedSnapshot`] taken from it. The shard
    /// count comes from the snapshot — the hash router is deterministic
    /// across processes, so replayed events land on the same shards.
    /// Fails with [`CoreError::SnapshotMismatch`] on any disagreement.
    pub fn restore(
        pattern: &Pattern,
        schema: &Schema,
        options: MatcherOptions,
        snapshot: &ShardedSnapshot,
    ) -> Result<ShardedStreamMatcher, CoreError> {
        let mismatch = |reason: String| CoreError::SnapshotMismatch { reason };
        if snapshot.shards.is_empty() {
            return Err(mismatch("sharded snapshot with no shards".to_string()));
        }
        let compiled = crate::matcher::compile_pattern(pattern, schema, &options)?;
        // The key proof must still hold for the (possibly rewritten)
        // pattern — resurrecting shards routed by an unproven key would
        // silently lose cross-partition matches.
        if !compiled.is_partition_key(snapshot.key) {
            let attr = if snapshot.key.index() < schema.len() {
                schema.attr_name(snapshot.key).to_string()
            } else {
                format!("attr#{}", snapshot.key.index())
            };
            return Err(mismatch(format!(
                "snapshot routes by `{attr}`, which is not a proven partition key of \
                 this pattern"
            )));
        }
        let automaton = Automaton::build_with_limit(compiled, options.max_states)?;
        let mut shards = Vec::with_capacity(snapshot.shards.len());
        for (i, ss) in snapshot.shards.iter().enumerate() {
            let mut sm = StreamMatcher::from_automaton(automaton.clone(), options.clone());
            sm.apply_snapshot(&ss.matcher)
                .map_err(|e| mismatch(format!("shard {i}: {e}")))?;
            if ss.ids.len() != sm.relation().len()
                || ss.base as usize != sm.relation().first_index()
            {
                return Err(mismatch(format!(
                    "shard {i}: id map covers {} events at base {}, but the relation \
                     retains {} at base {}",
                    ss.ids.len(),
                    ss.base,
                    sm.relation().len(),
                    sm.relation().first_index()
                )));
            }
            shards.push(Shard {
                sm,
                ids: ss.ids.clone(),
                base: ss.base as usize,
                peak_omega: ss.peak_omega as usize,
            });
        }
        Ok(ShardedStreamMatcher {
            shards,
            key: snapshot.key,
            schema: schema.clone(),
            last_ts: snapshot.last_ts,
            next_id: snapshot.next_id as usize,
            emitted: snapshot.emitted as usize,
        })
    }

    /// Events a log replay from the global watermark must skip, summed
    /// over the shards — see [`StreamMatcher::ties_at_watermark`].
    /// Counted against the *global* last pushed timestamp: shards whose
    /// own last event is older contribute nothing.
    pub fn ties_at_watermark(&self) -> usize {
        let Some(last) = self.last_ts else {
            return 0;
        };
        self.shards
            .iter()
            .map(|s| {
                s.sm.relation()
                    .events()
                    .iter()
                    .rev()
                    .take_while(|e| e.ts() == last)
                    .count()
            })
            .sum()
    }

    /// The attribute events are routed by.
    pub fn partition_key(&self) -> AttrId {
        self.key
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Events routed to each shard so far — the spread is the key skew.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.base + s.ids.len()).collect()
    }

    /// Peak `|Ω|` observed on each shard.
    pub fn shard_peak_omega(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.peak_omega).collect()
    }

    /// Active instances summed over all shards.
    pub fn active_instances(&self) -> usize {
        self.shards.iter().map(|s| s.sm.active_instances()).sum()
    }

    /// Events currently retained, summed over all shards.
    pub fn retained_events(&self) -> usize {
        self.shards.iter().map(|s| s.sm.retained_events()).sum()
    }

    /// Events evicted so far, summed over all shards.
    pub fn evicted_events(&self) -> usize {
        self.shards.iter().map(|s| s.sm.evicted_events()).sum()
    }

    /// Matches emitted by pushes so far (excludes [`finish`]).
    ///
    /// [`finish`]: ShardedStreamMatcher::finish
    pub fn emitted_so_far(&self) -> usize {
        self.emitted
    }

    /// The latest timestamp pushed, if any.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.last_ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Matcher;
    use crate::semantics::MatchSemantics;
    use ses_event::{AttrType, CmpOp, Duration, Relation};

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    /// `{a, b} ; {c}` fully correlated on ID — every attribute-ID chain
    /// connects all three variables, so ID is a proven partition key.
    fn keyed_pattern() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .set(|s| s.var("c"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .cond_vars("a", "ID", CmpOp::Eq, "c", "ID")
            .within(Duration::ticks(10))
            .build()
            .unwrap()
    }

    fn auto_options(semantics: MatchSemantics) -> MatcherOptions {
        MatcherOptions {
            partition: PartitionMode::Auto,
            semantics,
            ..MatcherOptions::default()
        }
    }

    /// A multi-key interleaved workload: each key runs A, B, C with the
    /// keys' events shuffled together.
    fn workload() -> Vec<(Timestamp, Vec<Value>)> {
        let mut events = Vec::new();
        let labels = ["A", "B", "C"];
        for step in 0..3 {
            for key in 0..5i64 {
                let t = step * 5 + key;
                events.push((
                    Timestamp::new(t),
                    vec![Value::from(key), Value::from(labels[step as usize])],
                ));
            }
        }
        events
    }

    fn global_answer(semantics: MatchSemantics) -> Vec<Match> {
        let mut rel = Relation::new(schema());
        for (ts, values) in workload() {
            rel.push_values(ts, values).unwrap();
        }
        let matcher = Matcher::with_options(
            &keyed_pattern(),
            &schema(),
            MatcherOptions {
                semantics,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        matcher.find(&rel)
    }

    #[test]
    fn sharded_stream_union_equals_global_batch() {
        for semantics in [
            MatchSemantics::AllRuns,
            MatchSemantics::Definition2,
            MatchSemantics::Maximal,
        ] {
            let mut sm = ShardedStreamMatcher::with_options(
                &keyed_pattern(),
                &schema(),
                auto_options(semantics),
                4,
            )
            .unwrap();
            let mut got = Vec::new();
            for (ts, values) in workload() {
                got.extend(sm.push(ts, values).unwrap());
            }
            assert_eq!(sm.num_shards(), 4);
            assert_eq!(sm.shard_sizes().iter().sum::<usize>(), 15);
            got.extend(sm.finish());
            got.sort_unstable();
            assert_eq!(got, global_answer(semantics), "{semantics:?}");
        }
    }

    #[test]
    fn push_batch_equals_per_event_pushes() {
        let mut a = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            auto_options(MatchSemantics::AllRuns),
            3,
        )
        .unwrap();
        let mut b = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            auto_options(MatchSemantics::AllRuns),
            3,
        )
        .unwrap();
        let mut got_a = Vec::new();
        for (ts, values) in workload() {
            got_a.extend(a.push(ts, values).unwrap());
        }
        let mut got_b = b.push_batch(workload()).unwrap();
        assert_eq!(a.shard_sizes(), b.shard_sizes());
        assert_eq!(a.shard_peak_omega(), b.shard_peak_omega());
        got_a.extend(a.finish());
        got_b.extend(b.finish());
        got_a.sort_unstable();
        got_b.sort_unstable();
        assert_eq!(got_a, got_b);
    }

    #[test]
    fn single_shard_matches_plain_stream_matcher() {
        let mut sharded = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            auto_options(MatchSemantics::Maximal),
            1,
        )
        .unwrap();
        let mut plain =
            StreamMatcher::with_options(&keyed_pattern(), &schema(), MatcherOptions::default())
                .unwrap();
        let mut got_s = Vec::new();
        let mut got_p = Vec::new();
        for (ts, values) in workload() {
            got_s.extend(sharded.push(ts, values.clone()).unwrap());
            got_p.extend(plain.push(ts, values).unwrap());
        }
        got_s.extend(sharded.finish());
        got_p.extend(plain.finish());
        got_s.sort_unstable();
        got_p.sort_unstable();
        assert_eq!(got_s, got_p);
    }

    #[test]
    fn rejects_partition_off() {
        let err = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            MatcherOptions::default(),
            4,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::UnprovenPartitionKey { .. }));
        assert!(err.to_string().contains("Off"));
    }

    #[test]
    fn rejects_keyless_pattern() {
        // No cross-variable equalities: nothing confines a match to one
        // ID, so Auto resolves to no key and sharding must refuse.
        let pattern = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(10))
            .build()
            .unwrap();
        let err = ShardedStreamMatcher::with_options(
            &pattern,
            &schema(),
            auto_options(MatchSemantics::Maximal),
            4,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no partition key"));
    }

    #[test]
    fn rejects_out_of_order_pushes() {
        let mut sm = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            auto_options(MatchSemantics::Maximal),
            4,
        )
        .unwrap();
        sm.push(Timestamp::new(5), [Value::from(1i64), Value::from("A")])
            .unwrap();
        // Regression guard: the order check must be *global*, not per
        // shard — key 2 likely routes to a different shard whose own
        // stream would happily accept t=3.
        let err = sm
            .push(Timestamp::new(3), [Value::from(2i64), Value::from("A")])
            .unwrap_err();
        assert!(matches!(
            err,
            EventError::OutOfOrder {
                previous: 5,
                got: 3
            }
        ));
    }

    #[test]
    fn idle_shard_heartbeat_emits_without_new_shard_events() {
        // Two shards; a complete match lands on one, then *only* the
        // other shard receives events. Before the heartbeat fix the
        // match starved until finish(); now the foreign pushes advance
        // the idle shard's watermark and it emits mid-stream.
        let mut sm = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            auto_options(MatchSemantics::Maximal),
            2,
        )
        .unwrap();
        let key_a = 0i64;
        let row = |key: i64, l: &str| vec![Value::from(key), Value::from(l)];
        let shard_a = sm.shard_of(&row(key_a, "A"));
        let key_b = (1..100)
            .find(|&k| sm.shard_of(&row(k, "A")) != shard_a)
            .expect("some key hashes to the other shard");

        // Complete match for key_a inside τ = 10.
        for (t, l) in [(0, "A"), (1, "B"), (2, "C")] {
            assert!(sm
                .push(Timestamp::new(t), row(key_a, l))
                .unwrap()
                .is_empty());
        }
        // Starve key_a's shard: only key_b events from here on. The
        // first push past minT + τ must surface key_a's match.
        assert!(sm
            .push(Timestamp::new(9), row(key_b, "A"))
            .unwrap()
            .is_empty());
        let out = sm.push(Timestamp::new(50), row(key_b, "A")).unwrap();
        assert_eq!(out.len(), 1, "idle shard starved: {out:?}");
        assert_eq!(sm.emitted_so_far(), 1);
        // The idle shard's decided window is also reclaimed.
        let evicted = sm.evicted_events();
        assert!(evicted >= 3, "idle shard not evicted: {evicted}");
        // Exactly-once: nothing duplicated at finish.
        assert!(sm.finish().is_empty());
    }

    #[test]
    fn push_batch_heartbeats_idle_shards() {
        let mut sm = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            auto_options(MatchSemantics::Maximal),
            2,
        )
        .unwrap();
        let row = |key: i64, l: &str| vec![Value::from(key), Value::from(l)];
        let shard_a = sm.shard_of(&row(0, "A"));
        let key_b = (1..100)
            .find(|&k| sm.shard_of(&row(k, "A")) != shard_a)
            .expect("some key hashes to the other shard");
        let batch = vec![
            (Timestamp::new(0), row(0, "A")),
            (Timestamp::new(1), row(0, "B")),
            (Timestamp::new(2), row(0, "C")),
            (Timestamp::new(50), row(key_b, "A")),
        ];
        let out = sm.push_batch(batch).unwrap();
        assert_eq!(out.len(), 1, "batch heartbeat starved: {out:?}");
        assert!(sm.finish().is_empty());
    }

    #[test]
    fn rejects_time_auto() {
        // TimeAuto on a keyless pattern resolves to time slicing, which
        // is batch-only — the sharded stream must refuse loudly.
        let pattern = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(10))
            .build()
            .unwrap();
        let err = ShardedStreamMatcher::with_options(
            &pattern,
            &schema(),
            MatcherOptions {
                partition: PartitionMode::TimeAuto,
                ..MatcherOptions::default()
            },
            4,
        )
        .unwrap_err();
        assert!(err.to_string().contains("batch-only"), "{err}");

        // With a proven key, TimeAuto shards exactly like Auto.
        let sm = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::TimeAuto,
                ..MatcherOptions::default()
            },
            4,
        )
        .unwrap();
        assert_eq!(sm.partition_key(), schema().attr_id("ID").unwrap());
    }

    #[test]
    fn sharded_snapshot_restore_resumes_identically() {
        let events = workload();
        for cut in 0..events.len() {
            let mut live = ShardedStreamMatcher::with_options(
                &keyed_pattern(),
                &schema(),
                auto_options(MatchSemantics::Maximal),
                3,
            )
            .unwrap();
            let mut twin = ShardedStreamMatcher::with_options(
                &keyed_pattern(),
                &schema(),
                auto_options(MatchSemantics::Maximal),
                3,
            )
            .unwrap();
            let mut live_out = Vec::new();
            let mut twin_out = Vec::new();
            for (ts, values) in &events[..cut] {
                live_out.extend(live.push(*ts, values.clone()).unwrap());
                twin_out.extend(twin.push(*ts, values.clone()).unwrap());
            }
            let snap = live.snapshot();
            drop(live);
            let mut restored = ShardedStreamMatcher::restore(
                &keyed_pattern(),
                &schema(),
                auto_options(MatchSemantics::Maximal),
                &snap,
            )
            .unwrap();
            assert_eq!(restored.num_shards(), 3);
            assert_eq!(restored.emitted_so_far(), twin.emitted_so_far());
            assert_eq!(restored.shard_sizes(), twin.shard_sizes());
            for (ts, values) in &events[cut..] {
                live_out.extend(restored.push(*ts, values.clone()).unwrap());
                twin_out.extend(twin.push(*ts, values.clone()).unwrap());
            }
            live_out.extend(restored.finish());
            twin_out.extend(twin.finish());
            assert_eq!(live_out, twin_out, "divergence after restore at cut {cut}");
        }
    }

    #[test]
    fn sharded_restore_rejects_unproven_key() {
        let mut sm = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            auto_options(MatchSemantics::Maximal),
            2,
        )
        .unwrap();
        sm.push(Timestamp::new(0), [Value::from(1i64), Value::from("A")])
            .unwrap();
        let mut snap = sm.snapshot();
        // Route by an attribute the pattern proves nothing about.
        snap.key = schema().attr_id("L").unwrap();
        let err = ShardedStreamMatcher::restore(
            &keyed_pattern(),
            &schema(),
            auto_options(MatchSemantics::Maximal),
            &snap,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SnapshotMismatch { .. }), "{err}");
        assert!(err.to_string().contains("not a proven partition key"));
    }

    #[test]
    fn eviction_keeps_id_maps_bounded() {
        let mut sm = ShardedStreamMatcher::with_options(
            &keyed_pattern(),
            &schema(),
            auto_options(MatchSemantics::AllRuns),
            2,
        )
        .unwrap();
        let labels = ["A", "B", "C"];
        for i in 0..3000i64 {
            let key = i % 4;
            let label = labels[(i % 3) as usize];
            sm.push(Timestamp::new(i), [Value::from(key), Value::from(label)])
                .unwrap();
        }
        assert!(sm.evicted_events() > 0, "eviction never ran");
        let retained = sm.retained_events();
        let mapped: usize = sm.shards.iter().map(|s| s.ids.len()).sum();
        // The id map tracks the retained window, not the whole stream.
        assert!(
            mapped <= retained + 64,
            "id maps not pruned: {mapped} mapped vs {retained} retained"
        );
        assert_eq!(sm.shard_sizes().iter().sum::<usize>(), 3000);
    }
}
