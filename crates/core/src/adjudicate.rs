//! Indexed adjudication structures — the O(R log R)-style formulation of
//! conditions 4–5 and maximality behind [`crate::AdjudicationMode::Indexed`].
//!
//! The pairwise adjudicator in [`crate::semantics`] re-derives every
//! quantifier of Definition 2 from scratch per candidate: condition 4
//! scans the whole retained relation per binding, the prefix test
//! re-materializes binding prefixes per (candidate × alternative), and
//! condition 5 / maximality compare all candidate pairs. This module
//! replaces those scans with three indexes, each *exact* — pre-filters
//! narrow the witness space, and every surviving witness is verified
//! against the very predicate the pairwise code evaluates:
//!
//! * [`ViableIndex`] — per-variable sorted lists of *viable* events
//!   (events satisfying the variable's constant and self-conditions).
//!   Swap alternatives for a binding `v/e` can only be viable events in
//!   the open interval dictated by condition 2, so the relation scan
//!   collapses to a binary-searched slice. Lists are extended
//!   monotonically as groups arrive in ascending order, so classifying
//!   each event costs amortized O(vars) once per event — not per
//!   candidate per binding.
//! * [`GroupIndex`] — per adjudication group: posting lists
//!   `(var, event) → candidates` drive the condition-5 and within-group
//!   maximality subset checks (a subset victim must appear in every
//!   posting list of its killer, so the *least frequent* binding of a
//!   candidate bounds the killer search), and a prefix-hash map
//!   `(var, alt, hash(bindings before alt)) → candidates` answers the
//!   condition-4 prefix-agreement test with one lookup per alternative
//!   (hash hits are confirmed by exact slice comparison, so collisions
//!   cannot flip a verdict). Candidates sort by (start asc, end desc)
//!   within a group — `Match`'s canonical order — so every potential
//!   killer is indexed before its victims are queried, making the
//!   single sweep over the sorted group exact.
//! * [`SurvivorStore`] — the accumulated Definition-2 survivors that act
//!   as cross-group Maximal killers. Groups arrive in ascending `minT`
//!   order, so pruning is a head-offset advance (keeping
//!   [`SurvivorStore::live`] a contiguous slice — the streaming snapshot
//!   format is unchanged), and the same posting-list trick bounds the
//!   killer search; a binding never seen in any survivor refutes
//!   subsumption in O(1).
//!
//! Worst-case inputs (R candidates sharing almost every binding) can
//! still force O(R²) verified comparisons — binding-set containment is
//! strictly harder than interval containment — but the pre-filters make
//! the expected cost near-linear in the posting-list sizes, and the
//! early-exit discipline (first verified killer wins) keeps dense nested
//! chains linear. See `docs/adjudication.md` for the correctness
//! argument and the measured speedups.

use std::collections::HashMap;

use ses_event::{EventId, Relation, Timestamp};
use ses_pattern::{CompiledPattern, CompiledRhs, VarId};

use crate::matches::Match;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Folds one binding into a running FNV-1a hash. Used for prefix-hash
/// keys; exact slice comparison confirms every hit.
fn fnv_binding(mut h: u64, var: VarId, event: EventId) -> u64 {
    for b in var.0.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    for b in event.0.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// `true` iff the canonically ordered `bindings` bind `event` (to any
/// variable). Events in a substitution are distinct, so the event
/// component is strictly increasing and binary-searchable.
fn binds_event(bindings: &[(VarId, EventId)], event: EventId) -> bool {
    let i = bindings.partition_point(|&(_, e)| e < event);
    i < bindings.len() && bindings[i].1 == event
}

/// A binary condition as seen from one of its two variables: the
/// condition index, the partner variable, and whether this variable is
/// the left-hand side.
type BinaryUse = (usize, VarId, bool);

/// Per-variable viable-event lists plus the per-pattern condition
/// analysis they are built from, owned by the adjudicator and extended
/// monotonically across groups.
///
/// An event is *viable* for variable `v` iff it satisfies every constant
/// condition and self-condition on `v` — exactly the unary part of
/// condition 1, which [`crate::satisfies_conditions_1_3`] also enforces,
/// so viability is necessary for any swap to be valid.
#[derive(Debug, Default)]
pub(crate) struct ViableIndex {
    /// Sorted `(event, ts)` per variable; ids ascend and timestamps are
    /// non-decreasing (relation push order), so both are binary-searchable.
    lists: Vec<Vec<(EventId, Timestamp)>>,
    /// Indices into `pattern.conditions()` of each variable's unary
    /// (constant or self) conditions.
    unary: Vec<Vec<usize>>,
    /// Each variable's binary conditions, from that variable's side.
    binary: Vec<Vec<BinaryUse>>,
    /// The set each variable belongs to.
    var_set: Vec<usize>,
    /// Exclusive upper end of the classified id range.
    cover_hi: usize,
    ready: bool,
}

impl ViableIndex {
    pub(crate) fn new() -> ViableIndex {
        ViableIndex::default()
    }

    fn init(&mut self, pattern: &CompiledPattern, relation: &Relation) {
        let p = pattern.pattern();
        let nv = p.num_vars();
        self.lists = vec![Vec::new(); nv];
        self.unary = vec![Vec::new(); nv];
        self.binary = vec![Vec::new(); nv];
        for (ci, c) in pattern.conditions().iter().enumerate() {
            match &c.rhs {
                CompiledRhs::Const(_) => self.unary[c.lhs_var.index()].push(ci),
                CompiledRhs::Attr { var, .. } => {
                    if *var == c.lhs_var {
                        self.unary[c.lhs_var.index()].push(ci);
                    } else {
                        self.binary[c.lhs_var.index()].push((ci, *var, true));
                        self.binary[var.index()].push((ci, c.lhs_var, false));
                    }
                }
            }
        }
        self.var_set = vec![0; nv];
        for s in 0..p.num_sets() {
            for &v in p.set(s) {
                self.var_set[v.index()] = s;
            }
        }
        self.cover_hi = relation.first_index();
        self.ready = true;
    }

    /// The set index of `var`.
    pub(crate) fn set_of(&self, var: VarId) -> usize {
        self.var_set[var.index()]
    }

    /// The binary conditions involving `var`.
    fn binary_of(&self, var: VarId) -> &[BinaryUse] {
        &self.binary[var.index()]
    }

    /// Extends classification so every retained event with id `< hi` is
    /// in the lists of the variables it is viable for, and drops list
    /// heads the advancing relation has evicted. Ids at or above `hi`
    /// carry timestamps no earlier than any alternative the current
    /// group can ever ask for, so this coverage is complete.
    pub(crate) fn ensure_cover(
        &mut self,
        pattern: &CompiledPattern,
        relation: &Relation,
        hi: usize,
    ) {
        if !self.ready {
            self.init(pattern, relation);
        }
        let first = relation.first_index();
        for list in &mut self.lists {
            let cut = list.partition_point(|&(e, _)| e.index() < first);
            // Hysteresis: drain only when the dead prefix dominates, so
            // steady-state streaming amortizes the memmove.
            if cut > 64 && cut * 2 >= list.len() {
                list.drain(..cut);
            }
        }
        if hi <= self.cover_hi {
            return;
        }
        let conds = pattern.conditions();
        for idx in self.cover_hi.max(first)..hi {
            let ev = relation.event(EventId::from(idx));
            'vars: for v in 0..self.lists.len() {
                for &ci in &self.unary[v] {
                    let c = &conds[ci];
                    let ok = match &c.rhs {
                        CompiledRhs::Const(_) => c.eval_const(ev),
                        CompiledRhs::Attr { .. } => c.eval_vars(ev, ev),
                    };
                    if !ok {
                        continue 'vars;
                    }
                }
                self.lists[v].push((EventId::from(idx), ev.ts()));
            }
        }
        self.cover_hi = hi;
    }

    /// The viable events for `var` with `lo < ts < hi` (both strict, per
    /// conditions 2 and 4).
    fn viable_between(&self, var: VarId, lo: Timestamp, hi: Timestamp) -> &[(EventId, Timestamp)] {
        let list = &self.lists[var.index()];
        let a = list.partition_point(|&(_, t)| t <= lo);
        let b = list.partition_point(|&(_, t)| t < hi);
        &list[a..b.max(a)]
    }
}

/// Per-group indexes over one sorted, deduplicated adjudication group
/// (all candidates share a first binding, hence `minT`).
pub(crate) struct GroupIndex<'g> {
    group: &'g [Match],
    /// Per candidate: its bindings' timestamps, in canonical order.
    ts: Vec<Vec<Timestamp>>,
    /// Per candidate: running FNV-1a prefix hashes, `phash[i][j]` =
    /// hash of the first `j` bindings.
    phash: Vec<Vec<u64>>,
    /// `(var, event) → candidate indices` (ascending) over the full
    /// group — condition-5 killers are the *raw* group, including
    /// candidates that themselves fail condition 4.
    postings: HashMap<(VarId, EventId), Vec<u32>>,
    /// `(var, alt, hash of bindings strictly before alt.ts) → candidates
    /// binding var/alt with that prefix` — the condition-4 prefix test.
    prefix: HashMap<(VarId, EventId, u64), Vec<u32>>,
    /// Distinct events bound to each variable by any candidate, sorted.
    var_alts: HashMap<VarId, Vec<(EventId, Timestamp)>>,
    min_ts: Timestamp,
    /// One past the largest bound event id — the [`ViableIndex`]
    /// coverage this group needs.
    cover_needed: usize,
}

impl<'g> GroupIndex<'g> {
    /// Indexes a non-empty group. Candidates must be in sorted canonical
    /// order (they are: `adjudicate_group` sorts and dedups first).
    pub(crate) fn build(group: &'g [Match], relation: &Relation) -> GroupIndex<'g> {
        let min_ts = relation.event(group[0].first_event()).ts();
        let mut ts = Vec::with_capacity(group.len());
        let mut phash = Vec::with_capacity(group.len());
        let mut postings: HashMap<(VarId, EventId), Vec<u32>> = HashMap::new();
        let mut prefix: HashMap<(VarId, EventId, u64), Vec<u32>> = HashMap::new();
        let mut cover_needed = 0;
        for (i, m) in group.iter().enumerate() {
            let b = m.bindings();
            let mts: Vec<Timestamp> = b.iter().map(|&(_, e)| relation.event(e).ts()).collect();
            let mut ph = Vec::with_capacity(b.len() + 1);
            ph.push(FNV_OFFSET);
            for &(v, e) in b {
                ph.push(fnv_binding(*ph.last().expect("seeded"), v, e));
            }
            for (j, &(v, e)) in b.iter().enumerate() {
                postings.entry((v, e)).or_default().push(i as u32);
                if mts[j] > min_ts {
                    let boundary = mts.partition_point(|&t| t < mts[j]);
                    prefix
                        .entry((v, e, ph[boundary]))
                        .or_default()
                        .push(i as u32);
                }
            }
            cover_needed = cover_needed.max(m.last_event().index() + 1);
            ts.push(mts);
            phash.push(ph);
        }
        let mut var_alts: HashMap<VarId, Vec<(EventId, Timestamp)>> = HashMap::new();
        for &(v, e) in postings.keys() {
            var_alts
                .entry(v)
                .or_default()
                .push((e, relation.event(e).ts()));
        }
        for list in var_alts.values_mut() {
            list.sort_unstable();
        }
        GroupIndex {
            group,
            ts,
            phash,
            postings,
            prefix,
            var_alts,
            min_ts,
            cover_needed,
        }
    }

    /// One past the largest event id any condition-4 scan for this group
    /// can touch — pass to [`ViableIndex::ensure_cover`].
    pub(crate) fn cover_needed(&self) -> usize {
        self.cover_needed
    }

    /// Condition 4 for candidate `i`: no variable could have bound a
    /// strictly earlier in-extent event via a valid swap or an
    /// agreeing-prefix candidate. Exact equivalent of the pairwise
    /// `survives_condition_4` for candidates satisfying conditions 1–3
    /// (which engine-produced raw matches do by construction).
    pub(crate) fn survives_condition_4(
        &self,
        i: usize,
        relation: &Relation,
        pattern: &CompiledPattern,
        viable: &ViableIndex,
    ) -> bool {
        let m = &self.group[i];
        let b = m.bindings();
        let ts = &self.ts[i];
        let ph = &self.phash[i];

        // Per-set temporal extent of m, for the condition-2 bounds of
        // swap alternatives.
        let nsets = pattern.pattern().num_sets();
        let mut set_min: Vec<Option<Timestamp>> = vec![None; nsets];
        let mut set_max: Vec<Option<Timestamp>> = vec![None; nsets];
        for (j, &(v, _)) in b.iter().enumerate() {
            let s = viable.set_of(v);
            set_min[s] = Some(set_min[s].map_or(ts[j], |t: Timestamp| t.min(ts[j])));
            set_max[s] = Some(set_max[s].map_or(ts[j], |t: Timestamp| t.max(ts[j])));
        }

        for (j, &(var, _)) in b.iter().enumerate() {
            let bound_ts = ts[j];
            if bound_ts <= self.min_ts {
                continue; // no room strictly inside (minT, e.T)
            }

            // Prefix test: alternatives are events other candidates bind
            // to `var`, strictly inside (minT, e.T).
            if let Some(alts) = self.var_alts.get(&var) {
                let lo = alts.partition_point(|&(_, t)| t <= self.min_ts);
                let hi = alts.partition_point(|&(_, t)| t < bound_ts);
                for &(alt, alt_ts) in &alts[lo..hi.max(lo)] {
                    if binds_event(b, alt) {
                        continue; // already used in γ (possibly by another variable)
                    }
                    let boundary = ts.partition_point(|&t| t < alt_ts);
                    if let Some(offers) = self.prefix.get(&(var, alt, ph[boundary])) {
                        for &o in offers {
                            let ob = self.group[o as usize].bindings();
                            let oboundary = self.ts[o as usize].partition_point(|&t| t < alt_ts);
                            if ob[..oboundary] == b[..boundary] {
                                return false;
                            }
                        }
                    }
                }
            }

            // Swap test: alternatives are viable events for `var` in the
            // interval condition 2 allows; the remaining validity of the
            // swapped substitution reduces to `var`'s binary conditions
            // against m's other bindings (see docs/adjudication.md for
            // why conditions 2–3 collapse to the interval).
            let si = viable.set_of(var);
            let mut lo_ts = self.min_ts;
            if si > 0 {
                if let Some(t) = set_max[si - 1] {
                    lo_ts = lo_ts.max(t);
                }
            }
            let mut hi_ts = bound_ts;
            if si + 1 < nsets {
                if let Some(t) = set_min[si + 1] {
                    hi_ts = hi_ts.min(t);
                }
            }
            for &(alt, _) in viable.viable_between(var, lo_ts, hi_ts) {
                if binds_event(b, alt) {
                    continue;
                }
                if self.swap_binary_ok(m, var, alt, relation, pattern, viable) {
                    return false;
                }
            }
        }
        true
    }

    /// The binary-condition part of swap validity: `alt` (replacing one
    /// of `var`'s bindings) must satisfy every binary condition
    /// involving `var` against all of m's bindings of the partner
    /// variable. Unary conditions are pre-filtered by [`ViableIndex`];
    /// conditions not involving `var` are untouched by the swap.
    fn swap_binary_ok(
        &self,
        m: &Match,
        var: VarId,
        alt: EventId,
        relation: &Relation,
        pattern: &CompiledPattern,
        viable: &ViableIndex,
    ) -> bool {
        let ae = relation.event(alt);
        let conds = pattern.conditions();
        for &(ci, partner, lhs_is_var) in viable.binary_of(var) {
            let c = &conds[ci];
            for e in m.events_of(partner) {
                let pe = relation.event(e);
                let ok = if lhs_is_var {
                    c.eval_vars(ae, pe)
                } else {
                    c.eval_vars(pe, ae)
                };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// Condition 5 for candidate `i`: not a proper subset of *any* group
    /// candidate (all share the first binding by construction).
    pub(crate) fn survives_condition_5(&self, i: usize) -> bool {
        !self.dominated(i, None)
    }

    /// Within-group maximality: `i` is a proper subset of a candidate
    /// the `kept` mask admits.
    pub(crate) fn dominated_by_kept(&self, i: usize, kept: &[bool]) -> bool {
        self.dominated(i, Some(kept))
    }

    /// `true` iff some candidate (restricted to `mask` when given) is a
    /// proper superset of candidate `i`. A superset must appear in the
    /// posting list of every binding of `i`; the least frequent binding
    /// bounds the search.
    fn dominated(&self, i: usize, mask: Option<&[bool]>) -> bool {
        let m = &self.group[i];
        if self.group.len() == 1 {
            return false;
        }
        let list = m
            .bindings()
            .iter()
            .map(|bind| &self.postings[bind])
            .min_by_key(|l| l.len())
            .expect("matches are non-empty");
        list.iter().any(|&o| {
            let o = o as usize;
            o != i
                && mask.is_none_or(|k| k[o])
                && self.group[o].len() > m.len()
                && m.is_proper_subset_of(&self.group[o])
        })
    }
}

/// Accumulated Definition-2 survivors — the cross-group Maximal killer
/// set — with posting lists for indexed kill queries and a head offset
/// so pruning never reindexes.
///
/// Groups arrive in ascending first-binding order, so pushed `minT`s are
/// non-decreasing and pruning at a cutoff is exactly a prefix drop; the
/// live survivors stay one contiguous slice, which keeps the streaming
/// snapshot format (`StreamSnapshot::survivors`) byte-identical to the
/// pairwise adjudicator's.
#[derive(Debug, Default)]
pub(crate) struct SurvivorStore {
    items: Vec<(Timestamp, Match)>,
    head: usize,
    postings: HashMap<(VarId, EventId), Vec<u32>>,
}

impl SurvivorStore {
    pub(crate) fn new() -> SurvivorStore {
        SurvivorStore::default()
    }

    /// Appends a survivor. `min_ts` must be non-decreasing across pushes
    /// (guaranteed by ascending group order).
    pub(crate) fn push(&mut self, min_ts: Timestamp, m: Match) {
        debug_assert!(self.items.last().is_none_or(|&(t, _)| t <= min_ts));
        let idx = self.items.len() as u32;
        for &bind in m.bindings() {
            self.postings.entry(bind).or_default().push(idx);
        }
        self.items.push((min_ts, m));
    }

    /// Drops survivors with `minT < cutoff` by advancing the head;
    /// compacts storage once the dead prefix dominates.
    pub(crate) fn prune(&mut self, cutoff: Timestamp) {
        self.head += self.items[self.head..].partition_point(|&(t, _)| t < cutoff);
        if self.head > 1024 && self.head * 2 >= self.items.len() {
            self.items.drain(..self.head);
            self.head = 0;
            self.postings.clear();
            for (i, (_, m)) in self.items.iter().enumerate() {
                for &bind in m.bindings() {
                    self.postings.entry(bind).or_default().push(i as u32);
                }
            }
        }
    }

    /// The live survivors, oldest first.
    pub(crate) fn live(&self) -> &[(Timestamp, Match)] {
        &self.items[self.head..]
    }

    /// Replaces the survivor set wholesale (snapshot restore).
    pub(crate) fn restore(&mut self, items: Vec<(Timestamp, Match)>) {
        self.items = items;
        self.head = 0;
        self.postings.clear();
        for (i, (_, m)) in self.items.iter().enumerate() {
            for &bind in m.bindings() {
                self.postings.entry(bind).or_default().push(i as u32);
            }
        }
    }

    /// Indexed kill query: is `m` a proper subset of a live survivor?
    /// Any binding absent from every survivor refutes it immediately;
    /// otherwise the least frequent binding's posting list is verified.
    pub(crate) fn kills_indexed(&self, m: &Match) -> bool {
        if self.items.len() == self.head {
            return false;
        }
        let mut best: Option<&Vec<u32>> = None;
        for bind in m.bindings() {
            match self.postings.get(bind) {
                None => return false,
                Some(list) => {
                    if best.is_none_or(|b| list.len() < b.len()) {
                        best = Some(list);
                    }
                }
            }
        }
        let list = best.expect("matches are non-empty");
        let start = list.partition_point(|&i| (i as usize) < self.head);
        list[start..]
            .iter()
            .any(|&i| m.is_proper_subset_of(&self.items[i as usize].1))
    }

    /// Pairwise kill query — the legacy linear scan, kept verbatim as
    /// the differential-test oracle.
    pub(crate) fn kills_pairwise(&self, m: &Match) -> bool {
        self.live().iter().any(|(_, o)| m.is_proper_subset_of(o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(bindings: &[(u16, u32)]) -> Match {
        Match::from_bindings(
            bindings
                .iter()
                .map(|&(v, e)| (VarId(v), EventId(e)))
                .collect(),
        )
    }

    #[test]
    fn survivor_store_prunes_as_a_prefix_and_keeps_killing() {
        let mut s = SurvivorStore::new();
        for t in 0..10i64 {
            s.push(Timestamp::new(t), m(&[(0, t as u32), (1, t as u32 + 100)]));
        }
        assert_eq!(s.live().len(), 10);
        let victim = m(&[(0, 7)]);
        assert!(s.kills_indexed(&victim));
        assert!(s.kills_pairwise(&victim));

        s.prune(Timestamp::new(8));
        assert_eq!(s.live().len(), 2);
        assert_eq!(s.live()[0].0, Timestamp::new(8));
        // The victim's only potential killers were pruned.
        assert!(!s.kills_indexed(&victim));
        assert!(!s.kills_pairwise(&victim));
        assert!(s.kills_indexed(&m(&[(0, 9)])));
    }

    #[test]
    fn survivor_store_compacts_without_changing_answers() {
        let mut s = SurvivorStore::new();
        for t in 0..3000i64 {
            s.push(Timestamp::new(t), m(&[(0, t as u32), (1, 90_000)]));
        }
        s.prune(Timestamp::new(2500));
        assert_eq!(s.live().len(), 500);
        assert!(s.head == 0, "compaction should have run");
        assert!(!s.kills_indexed(&m(&[(0, 100)])));
        assert!(s.kills_indexed(&m(&[(0, 2600)])));
        // A binding no survivor has refutes in O(1).
        assert!(!s.kills_indexed(&m(&[(5, 2600)])));
    }

    #[test]
    fn restore_round_trips_live_set() {
        let mut s = SurvivorStore::new();
        s.push(Timestamp::new(1), m(&[(0, 1), (1, 2)]));
        s.push(Timestamp::new(3), m(&[(0, 3), (1, 4)]));
        s.prune(Timestamp::new(2));
        let saved: Vec<_> = s.live().to_vec();

        let mut r = SurvivorStore::new();
        r.restore(saved);
        assert_eq!(r.live().len(), 1);
        assert!(r.kills_indexed(&m(&[(0, 3)])));
        assert!(!r.kills_indexed(&m(&[(0, 1)])));
    }
}
