//! Columnar admission: batch pre-evaluation of constant conditions into
//! per-variable bitmask vectors.
//!
//! The scalar hot path decides, for every event, which variables it can
//! bind (`satisfies_var_constants`, one typed value comparison per
//! constant condition) and whether the §4.5 filter keeps it at all.
//! Those decisions depend only on the event's own attributes, so over a
//! batch of events they factor into a *columnar* pass: evaluate each
//! distinct constant condition — a **lane**, from the analyzer-backed
//! [`AdmissionLanes`] enumeration shared with `PatternIndex` — once per
//! event into a `u64` bit-vector (bit *i* = event *i* of the batch),
//! AND a variable's lane vectors word-by-word into its admission-group
//! vector, and OR group/lane vectors into the filter vector. The
//! instance loop then reads one precomputed `(filter, var-mask)` pair
//! per event instead of re-running value comparisons per condition.
//!
//! Lane evaluation is type-specialized: `Int`/`Str`/`Bool` constants
//! run monomorphic comparison loops (falling back to the generic
//! [`Value::compare`] on a variant mismatch so outcomes stay identical
//! bit-for-bit), while `Float` constants always take the generic path —
//! the same scanned-fallback discipline `PatternIndex` applies to Float
//! point pins. Multiple `Str`-equality lanes over one attribute (the
//! common "seven medication types on L" shape) share a single pass:
//! distinct constants are mutually exclusive, so the first hit wins.
//!
//! Soundness: a variable's group bit equals the conjunction of exactly
//! the conditions `satisfies_var_constants` evaluates, and the filter
//! vector is composed from the same lanes `EventFilter::passes`
//! consults — see `docs/columnar.md` for the full argument.

use ses_event::{CmpOp, Event, Value};
use ses_pattern::{AdmissionLanes, CompiledPattern, ConstLane};
use std::sync::Arc;

use crate::filter::FilterMode;

/// Whether the columnar admission layer is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnarMode {
    /// Columnar when the pattern has constant conditions and the batch
    /// is large enough to amortize the plan (the default).
    #[default]
    Auto,
    /// Always columnar, even for trivial plans — differential tests use
    /// this to force the path.
    On,
    /// Always scalar.
    Off,
}

/// Batches below this length stay scalar under [`ColumnarMode::Auto`]:
/// the lane pass cannot amortize over a handful of events.
pub(crate) const COLUMNAR_AUTO_MIN_BATCH: usize = 16;

impl ColumnarMode {
    /// Resolves the mode against a concrete plan (its constant-lane
    /// count, e.g. `AdmissionLanes::of(..).lanes().len()`) and batch
    /// length — `true` iff that batch runs columnar.
    pub fn active(self, num_lanes: usize, batch_len: usize) -> bool {
        match self {
            ColumnarMode::On => true,
            ColumnarMode::Off => false,
            ColumnarMode::Auto => num_lanes > 0 && batch_len >= COLUMNAR_AUTO_MIN_BATCH,
        }
    }
}

/// The per-event admission decision the columnar layer hands the
/// engine: the §4.5 filter verdict plus the "which variables can this
/// event bind" mask (bit *v* = `VarId(v)` admitted).
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventAdmission {
    pub passes: bool,
    pub var_ok: u64,
}

/// One type-specialized lane evaluator.
#[derive(Debug, Clone)]
enum Kernel {
    /// `attr ⟨op⟩ Int` — exact `i64` comparison on `Int` values, `f64`
    /// comparison on `Float` values, `false` otherwise (matching
    /// `Value::try_cmp`).
    Int { lane: usize, op: CmpOp, rhs: i64 },
    /// `attr ⟨op⟩ Str` — `Str` values compare lexicographically, every
    /// other variant is incomparable (`as_f64` is `None` for strings).
    Str {
        lane: usize,
        op: CmpOp,
        rhs: Arc<str>,
    },
    /// `attr ⟨op⟩ Bool` — `Bool` values compare, everything else is
    /// incomparable.
    Bool { lane: usize, op: CmpOp, rhs: bool },
    /// Generic fallback via [`Value::compare`]. All `Float` constants
    /// land here — the scanned-fallback discipline `PatternIndex`
    /// applies to Float point pins.
    Generic { lane: usize, op: CmpOp, rhs: Value },
    /// ≥ 2 `Str`-equality lanes over one attribute, evaluated in a
    /// single pass: distinct constants are mutually exclusive, so the
    /// first match sets its lane bit and ends the scan.
    StrEqSet { lanes: Vec<(usize, Arc<str>)> },
}

/// A compiled columnar evaluation plan for one pattern: its distinct
/// constant-condition lanes (shared derivation with `PatternIndex`),
/// type-specialized kernels, and the lane compositions for variable
/// groups and filter modes.
#[derive(Debug, Clone)]
pub(crate) struct ColumnarPlan {
    /// Kernels grouped per attribute read; order is irrelevant (each
    /// kernel owns its lane bits exclusively).
    kernels: Vec<(ses_event::AttrId, Kernel)>,
    /// Lane ids per positive variable, in `VarId` order. Empty list =
    /// unconstrained variable (admitted everywhere).
    var_groups: Vec<Vec<usize>>,
    /// Union of all variable groups' lanes — the OR set of the Paper
    /// filter (`satisfies_any_constant`). Negation-only lanes are
    /// excluded, exactly as the scalar filter excludes negations.
    paper_lanes: Vec<usize>,
    num_lanes: usize,
}

impl ColumnarPlan {
    pub(crate) fn new(cp: &CompiledPattern) -> ColumnarPlan {
        let lanes = AdmissionLanes::of(cp);
        let var_groups: Vec<Vec<usize>> = (0..lanes.num_vars())
            .map(|v| lanes.var_group(ses_pattern::VarId(v as u16)).lanes.clone())
            .collect();
        let mut paper_lanes: Vec<usize> = var_groups.iter().flatten().copied().collect();
        paper_lanes.sort_unstable();
        paper_lanes.dedup();

        // Collect Str-equality lanes per attribute for the shared pass;
        // everything else gets an individual kernel.
        let mut kernels: Vec<(ses_event::AttrId, Kernel)> = Vec::new();
        // Lane indices paired with their string constants, keyed by attribute.
        type StrEqLanes = Vec<(usize, Arc<str>)>;
        let mut str_eq: Vec<(ses_event::AttrId, StrEqLanes)> = Vec::new();
        for (i, lane) in lanes.lanes().iter().enumerate() {
            if lane.op == CmpOp::Eq {
                if let Value::Str(s) = &lane.value {
                    match str_eq.iter_mut().find(|(a, _)| *a == lane.attr) {
                        Some((_, set)) => set.push((i, s.clone())),
                        None => str_eq.push((lane.attr, vec![(i, s.clone())])),
                    }
                    continue;
                }
            }
            kernels.push((lane.attr, scalar_kernel(i, lane)));
        }
        for (attr, set) in str_eq {
            if set.len() == 1 {
                let (lane, rhs) = set.into_iter().next().unwrap();
                kernels.push((
                    attr,
                    Kernel::Str {
                        lane,
                        op: CmpOp::Eq,
                        rhs,
                    },
                ));
            } else {
                kernels.push((attr, Kernel::StrEqSet { lanes: set }));
            }
        }

        ColumnarPlan {
            kernels,
            var_groups,
            paper_lanes,
            num_lanes: lanes.lanes().len(),
        }
    }

    /// Number of distinct constant-condition lanes.
    pub(crate) fn num_lanes(&self) -> usize {
        self.num_lanes
    }

    /// Evaluates the plan over a batch of `len` events (fetched through
    /// `get`, 0-based batch positions) into `out`, whose buffers are
    /// reused across calls. `filter` must be the **effective** filter
    /// mode (after any unsound-downgrade), so the filter vector agrees
    /// with `EventFilter::passes`.
    pub(crate) fn evaluate<'e, F>(
        &self,
        len: usize,
        get: F,
        filter: FilterMode,
        out: &mut ColumnarBatch,
    ) where
        F: Fn(usize) -> &'e Event,
    {
        let words = len.div_ceil(64);
        out.len = len;
        out.words = words;
        out.lane_bits.clear();
        out.lane_bits.resize(self.num_lanes * words, 0);
        let num_vars = self.var_groups.len();

        // Lane pass: one type-specialized sweep per kernel.
        for (attr, kernel) in &self.kernels {
            let attr = *attr;
            match kernel {
                Kernel::Int { lane, op, rhs } => {
                    let bits = lane_mut(&mut out.lane_bits, *lane, words);
                    for i in 0..len {
                        let hit = match get(i).value(attr) {
                            Value::Int(x) => op.eval(x.cmp(rhs)),
                            Value::Float(f) => f
                                .partial_cmp(&(*rhs as f64))
                                .is_some_and(|ord| op.eval(ord)),
                            _ => false,
                        };
                        bits[i / 64] |= (hit as u64) << (i % 64);
                    }
                }
                Kernel::Str { lane, op, rhs } => {
                    let bits = lane_mut(&mut out.lane_bits, *lane, words);
                    for i in 0..len {
                        let hit = match get(i).value(attr) {
                            Value::Str(s) => op.eval(s.as_ref().cmp(rhs.as_ref())),
                            _ => false,
                        };
                        bits[i / 64] |= (hit as u64) << (i % 64);
                    }
                }
                Kernel::Bool { lane, op, rhs } => {
                    let bits = lane_mut(&mut out.lane_bits, *lane, words);
                    for i in 0..len {
                        let hit = match get(i).value(attr) {
                            Value::Bool(b) => op.eval(b.cmp(rhs)),
                            _ => false,
                        };
                        bits[i / 64] |= (hit as u64) << (i % 64);
                    }
                }
                Kernel::Generic { lane, op, rhs } => {
                    let bits = lane_mut(&mut out.lane_bits, *lane, words);
                    for i in 0..len {
                        let hit = get(i).value(attr).compare(*op, rhs);
                        bits[i / 64] |= (hit as u64) << (i % 64);
                    }
                }
                Kernel::StrEqSet { lanes } => {
                    for i in 0..len {
                        if let Value::Str(s) = get(i).value(attr) {
                            for (lane, rhs) in lanes {
                                if s.as_ref() == rhs.as_ref() {
                                    out.lane_bits[lane * words + i / 64] |= 1u64 << (i % 64);
                                    break; // distinct constants: at most one hits
                                }
                            }
                        }
                    }
                }
            }
        }

        // Group pass: AND a variable's lanes word-by-word; a variable
        // with no lanes is unconstrained — all-ones.
        out.group_bits.clear();
        out.group_bits.resize(num_vars * words, 0);
        for (v, group) in self.var_groups.iter().enumerate() {
            let base = v * words;
            match group.split_first() {
                None => out.group_bits[base..base + words].fill(!0u64),
                Some((&first, rest)) => {
                    for w in 0..words {
                        let mut acc = out.lane_bits[first * words + w];
                        for &l in rest {
                            acc &= out.lane_bits[l * words + w];
                        }
                        out.group_bits[base + w] = acc;
                    }
                }
            }
        }

        // Filter pass, honoring the effective mode.
        out.filtered = filter != FilterMode::Off;
        out.filter_bits.clear();
        match filter {
            FilterMode::Off => {}
            FilterMode::Paper => {
                out.filter_bits.resize(words, 0);
                for &l in &self.paper_lanes {
                    for w in 0..words {
                        out.filter_bits[w] |= out.lane_bits[l * words + w];
                    }
                }
            }
            FilterMode::PerVariable => {
                out.filter_bits.resize(words, 0);
                for v in 0..num_vars {
                    for w in 0..words {
                        out.filter_bits[w] |= out.group_bits[v * words + w];
                    }
                }
            }
        }

        // Transpose the group vectors into per-event variable masks.
        out.masks.clear();
        out.masks.resize(len, 0);
        for v in 0..num_vars {
            let base = v * words;
            let bit = 1u64 << v;
            for (i, m) in out.masks.iter_mut().enumerate() {
                if out.group_bits[base + i / 64] >> (i % 64) & 1 != 0 {
                    *m |= bit;
                }
            }
        }
    }
}

/// The individual (non-shared) kernel for one lane.
fn scalar_kernel(lane: usize, l: &ConstLane) -> Kernel {
    match &l.value {
        Value::Int(rhs) => Kernel::Int {
            lane,
            op: l.op,
            rhs: *rhs,
        },
        Value::Str(rhs) => Kernel::Str {
            lane,
            op: l.op,
            rhs: rhs.clone(),
        },
        Value::Bool(rhs) => Kernel::Bool {
            lane,
            op: l.op,
            rhs: *rhs,
        },
        // Float constants always take the generic compare — the same
        // scanned fallback PatternIndex uses for Float point pins.
        Value::Float(_) => Kernel::Generic {
            lane,
            op: l.op,
            rhs: l.value.clone(),
        },
    }
}

fn lane_mut(lane_bits: &mut [u64], lane: usize, words: usize) -> &mut [u64] {
    &mut lane_bits[lane * words..(lane + 1) * words]
}

/// The evaluated admission bit-vectors for one batch. All buffers are
/// pooled: `evaluate` clears and refills them, so steady-state batch
/// evaluation allocates nothing once capacities plateau.
#[derive(Debug, Clone, Default)]
pub(crate) struct ColumnarBatch {
    len: usize,
    words: usize,
    /// Lane-major bit-vectors: `lane_bits[l*words + i/64]` bit `i%64` =
    /// lane `l` holds on batch event `i`.
    lane_bits: Vec<u64>,
    /// Variable-group bit-vectors (AND of the group's lanes).
    group_bits: Vec<u64>,
    /// Filter verdicts; empty when the effective mode is `Off`.
    filter_bits: Vec<u64>,
    filtered: bool,
    /// Per-event variable-admission masks (transposed group bits).
    masks: Vec<u64>,
}

impl ColumnarBatch {
    /// The admission decision for batch event `i`.
    pub(crate) fn admission(&self, i: usize) -> EventAdmission {
        debug_assert!(i < self.len);
        let passes = !self.filtered || self.filter_bits[i / 64] >> (i % 64) & 1 != 0;
        EventAdmission {
            passes,
            var_ok: self.masks[i],
        }
    }

    /// Number of events in the evaluated batch.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::EventFilter;
    use ses_event::{AttrType, Relation, Schema, Timestamp};
    use ses_pattern::{Pattern, VarId};

    fn schema() -> Schema {
        Schema::builder()
            .attr("L", AttrType::Str)
            .attr("ID", AttrType::Int)
            .build()
            .unwrap()
    }

    fn rel(rows: &[(i64, &str, i64)]) -> Relation {
        let mut r = Relation::new(schema());
        for (ts, l, id) in rows {
            r.push_values(Timestamp::new(*ts), [Value::from(*l), Value::from(*id)])
                .unwrap();
        }
        r
    }

    /// Columnar admission must agree with the scalar reference
    /// (`satisfies_var_constants` + `EventFilter::passes`) on every
    /// event, for every filter mode.
    fn assert_matches_scalar(cp: &CompiledPattern, relation: &Relation) {
        let plan = ColumnarPlan::new(cp);
        let mut batch = ColumnarBatch::default();
        let n = relation.len();
        for mode in [FilterMode::Off, FilterMode::Paper, FilterMode::PerVariable] {
            let filter = EventFilter::new(cp, mode);
            plan.evaluate(
                n,
                |i| relation.event(ses_event::EventId::from(i)),
                filter.effective_mode(),
                &mut batch,
            );
            assert_eq!(batch.len(), n);
            for i in 0..n {
                let event = relation.event(ses_event::EventId::from(i));
                let adm = batch.admission(i);
                assert_eq!(
                    adm.passes,
                    filter.passes(cp, event),
                    "filter bit diverges at event {i} under {mode:?}"
                );
                for v in 0..cp.pattern().num_vars() {
                    let scalar = cp.satisfies_var_constants(VarId(v as u16), event);
                    let bit = adm.var_ok >> v & 1 != 0;
                    assert_eq!(bit, scalar, "var {v} bit diverges at event {i}");
                }
            }
        }
    }

    fn two_var_pattern() -> CompiledPattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("a", "ID", CmpOp::Gt, 3)
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(ses_event::Duration::ticks(100))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap()
    }

    #[test]
    fn agrees_with_scalar_on_mixed_batch() {
        let cp = two_var_pattern();
        let rows: Vec<(i64, &str, i64)> = (0..40)
            .map(|i| {
                (
                    i,
                    ["A", "B", "X", "A"][i as usize % 4],
                    (i % 7) - 1, // exercises ID > 3 both ways
                )
            })
            .collect();
        assert_matches_scalar(&cp, &rel(&rows));
    }

    #[test]
    fn word_boundary_batches_63_64_65_128_129() {
        let cp = two_var_pattern();
        for n in [63i64, 64, 65, 128, 129] {
            let rows: Vec<(i64, &str, i64)> = (0..n)
                .map(|i| (i, if i % 3 == 0 { "A" } else { "B" }, i % 9))
                .collect();
            let r = rel(&rows);
            assert_eq!(r.len() as i64, n);
            assert_matches_scalar(&cp, &r);
        }
    }

    #[test]
    fn empty_batch_evaluates_cleanly() {
        let cp = two_var_pattern();
        let plan = ColumnarPlan::new(&cp);
        let mut batch = ColumnarBatch::default();
        let r = rel(&[]);
        plan.evaluate(
            0,
            |i| r.event(ses_event::EventId::from(i)),
            FilterMode::Paper,
            &mut batch,
        );
        assert_eq!(batch.len(), 0);
    }

    #[test]
    fn sixty_five_lanes_span_group_words() {
        // 33 variables × 2 conditions each = 66 distinct lanes: the
        // lane count itself crosses 64 while every group stays a small
        // conjunction. Bits must still agree with the scalar oracle.
        let mut b = Pattern::builder().set(|s| {
            let mut s = s;
            for i in 0..33 {
                s = s.var(format!("v{i}"));
            }
            s
        });
        for i in 0..33 {
            // Ne conditions are almost always true → they don't starve
            // the batch, but each (attr, op, value) stays distinct.
            b = b.cond_const(format!("v{i}"), "L", CmpOp::Ne, format!("zz{i}"));
            b = b.cond_const(format!("v{i}"), "ID", CmpOp::Ne, 1000 + i as i64);
        }
        let cp = b
            .within(ses_event::Duration::ticks(1000))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let plan = ColumnarPlan::new(&cp);
        assert_eq!(plan.num_lanes(), 66);
        let rows: Vec<(i64, &str, i64)> = (0..70)
            .map(|i| (i, if i == 5 { "zz3" } else { "ok" }, 1000 + (i % 40)))
            .collect();
        assert_matches_scalar(&cp, &rel(&rows));
    }

    #[test]
    fn float_lanes_take_the_generic_kernel() {
        let fschema = Schema::builder()
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .build()
            .unwrap();
        let cp = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "V", CmpOp::Eq, 0.0)
            .cond_const("b", "V", CmpOp::Gt, 2.5)
            .within(ses_event::Duration::ticks(100))
            .build()
            .unwrap()
            .compile(&fschema)
            .unwrap();
        let plan = ColumnarPlan::new(&cp);
        assert!(plan
            .kernels
            .iter()
            .all(|(_, k)| matches!(k, Kernel::Generic { .. })));
        let mut r = Relation::new(fschema);
        // -0.0 must satisfy V = 0.0 exactly as the scalar compare does.
        for (ts, v) in [(0i64, 0.0f64), (1, -0.0), (2, 3.5), (3, 1.0)] {
            r.push_values(Timestamp::new(ts), [Value::from("E"), Value::from(v)])
                .unwrap();
        }
        let mut batch = ColumnarBatch::default();
        plan.evaluate(
            r.len(),
            |i| r.event(ses_event::EventId::from(i)),
            FilterMode::Off,
            &mut batch,
        );
        assert_eq!(batch.admission(0).var_ok, 0b01);
        assert_eq!(batch.admission(1).var_ok, 0b01, "-0.0 == 0.0");
        assert_eq!(batch.admission(2).var_ok, 0b10);
        assert_eq!(batch.admission(3).var_ok, 0b00);
    }

    #[test]
    fn str_eq_lanes_share_one_pass() {
        let mut b = Pattern::builder().set(|s| {
            let mut s = s;
            for i in 0..7 {
                s = s.var(format!("m{i}"));
            }
            s
        });
        for (i, l) in ["C", "D", "P", "V", "R", "L", "B"].iter().enumerate() {
            b = b.cond_const(format!("m{i}"), "L", CmpOp::Eq, *l);
        }
        let cp = b
            .within(ses_event::Duration::ticks(1000))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let plan = ColumnarPlan::new(&cp);
        assert!(plan
            .kernels
            .iter()
            .any(|(_, k)| matches!(k, Kernel::StrEqSet { lanes } if lanes.len() == 7)));
        let rows: Vec<(i64, &str, i64)> = (0..30)
            .map(|i| (i, ["C", "D", "X", "B", "R"][i as usize % 5], i))
            .collect();
        assert_matches_scalar(&cp, &rel(&rows));
    }

    #[test]
    fn auto_mode_thresholds() {
        assert!(!ColumnarMode::Auto.active(0, 1_000_000), "no lanes");
        assert!(!ColumnarMode::Auto.active(5, COLUMNAR_AUTO_MIN_BATCH - 1));
        assert!(ColumnarMode::Auto.active(5, COLUMNAR_AUTO_MIN_BATCH));
        assert!(ColumnarMode::On.active(0, 0));
        assert!(!ColumnarMode::Off.active(99, 1 << 20));
    }

    #[test]
    fn buffers_are_reused_across_batches() {
        let cp = two_var_pattern();
        let plan = ColumnarPlan::new(&cp);
        let mut batch = ColumnarBatch::default();
        let big = rel(&(0..200)
            .map(|i| (i, if i % 2 == 0 { "A" } else { "B" }, i))
            .collect::<Vec<_>>());
        plan.evaluate(
            big.len(),
            |i| big.event(ses_event::EventId::from(i)),
            FilterMode::Paper,
            &mut batch,
        );
        let cap = (
            batch.lane_bits.capacity(),
            batch.group_bits.capacity(),
            batch.masks.capacity(),
        );
        // A smaller follow-up batch must fit in the pooled buffers.
        let small = rel(&[(0, "A", 9), (1, "B", 0)]);
        plan.evaluate(
            small.len(),
            |i| small.event(ses_event::EventId::from(i)),
            FilterMode::Paper,
            &mut batch,
        );
        assert_eq!(batch.len(), 2);
        assert_eq!(
            (
                batch.lane_bits.capacity(),
                batch.group_bits.capacity(),
                batch.masks.capacity(),
            ),
            cap,
            "pooled buffers must not shrink or reallocate"
        );
        assert_matches_scalar(&cp, &small);
    }
}
