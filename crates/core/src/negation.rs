//! Enforcement of negated variables (gap constraints) on candidate
//! matches.
//!
//! A negation `¬x` between event set patterns `Vi` and `Vi+1` (see
//! [`ses_pattern::Negation`]) rejects a candidate match when any event
//! strictly inside the gap — after the chronologically last `Vi` binding
//! and before the first `Vi+1` binding — satisfies all of `x`'s
//! conditions against the candidate's own bindings. Negations are
//! checked on raw candidates *before* the Definition-2 semantics filter,
//! so maximality never resurrects a negated match's subsets.

use ses_event::{EventId, Relation, Timestamp};
use ses_pattern::{CompiledPattern, VarId};

use crate::engine::RawMatch;

/// Retains only the raw matches that satisfy every negation. A no-op
/// (and allocation-free) for patterns without negations.
pub fn filter_negations(
    raw: Vec<RawMatch>,
    relation: &Relation,
    pattern: &CompiledPattern,
) -> Vec<RawMatch> {
    if pattern.negations().is_empty() {
        return raw;
    }
    raw.into_iter()
        .filter(|m| passes_negations(m, relation, pattern))
        .collect()
}

/// Whether one raw match satisfies every negation of the pattern.
pub fn passes_negations(m: &RawMatch, relation: &Relation, pattern: &CompiledPattern) -> bool {
    let p = pattern.pattern();
    let bindings_of = |var: VarId| -> Vec<EventId> {
        m.bindings
            .iter()
            .filter(|&&(v, _)| v == var)
            .map(|&(_, e)| e)
            .collect()
    };

    for neg in pattern.negations() {
        let set_ts = |set_idx: usize| -> Vec<Timestamp> {
            p.set(set_idx)
                .iter()
                .flat_map(|&v| bindings_of(v))
                .map(|e| relation.event(e).ts())
                .collect()
        };
        let Some(gap_lo) = set_ts(neg.after_set).into_iter().max() else {
            continue; // incomplete candidate (cannot happen for accepts)
        };
        let Some(gap_hi) = set_ts(neg.after_set + 1).into_iter().min() else {
            continue;
        };
        if gap_lo >= gap_hi {
            continue; // empty gap
        }
        // Events strictly inside (gap_lo, gap_hi); ids are chronological,
        // so binary-search the boundaries.
        let events = relation.events();
        let from = events.partition_point(|e| e.ts() <= gap_lo);
        let to = events.partition_point(|e| e.ts() < gap_hi);
        for event in &events[from..to] {
            if neg.violated_by(event, relation, &bindings_of) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MatchSemantics, Matcher, MatcherOptions};
    use ses_event::{AttrType, CmpOp, Duration, Schema, Value};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn rel(rows: &[(i64, i64, &str)]) -> Relation {
        let mut r = Relation::new(schema());
        for (t, id, l) in rows {
            r.push_values(Timestamp::new(*t), [Value::from(*id), Value::from(*l)])
                .unwrap();
        }
        r
    }

    /// ⟨{a}, ¬x, {b}⟩: no X event between the A and the B.
    fn neg_pattern(correlated: bool) -> Pattern {
        let mut b = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("x")
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .neg_cond_const("x", "L", CmpOp::Eq, "X");
        if correlated {
            b = b.neg_cond_vars("x", "ID", CmpOp::Eq, "a", "ID");
        }
        b.within(Duration::ticks(100)).build().unwrap()
    }

    #[test]
    fn negation_blocks_gap_events() {
        let m = Matcher::compile(&neg_pattern(false), &schema()).unwrap();
        // A X B → blocked; A Y B → allowed.
        assert!(m
            .find(&rel(&[(0, 1, "A"), (1, 1, "X"), (2, 1, "B")]))
            .is_empty());
        assert_eq!(
            m.find(&rel(&[(0, 1, "A"), (1, 1, "Y"), (2, 1, "B")])).len(),
            1
        );
    }

    #[test]
    fn negation_only_guards_the_gap() {
        let m = Matcher::compile(&neg_pattern(false), &schema()).unwrap();
        // X before A or after B is harmless.
        assert_eq!(
            m.find(&rel(&[(0, 1, "X"), (1, 1, "A"), (2, 1, "B")])).len(),
            1
        );
        assert_eq!(
            m.find(&rel(&[(0, 1, "A"), (1, 1, "B"), (2, 1, "X")])).len(),
            1
        );
        // X exactly at the boundary timestamps is *not* inside the open
        // interval.
        let tie = rel(&[(0, 1, "A"), (0, 1, "X"), (2, 1, "B")]);
        assert_eq!(m.find(&tie).len(), 1);
    }

    #[test]
    fn correlated_negation_scopes_to_bindings() {
        let m = Matcher::compile(&neg_pattern(true), &schema()).unwrap();
        // The gap X belongs to another patient → allowed.
        assert_eq!(
            m.find(&rel(&[(0, 1, "A"), (1, 2, "X"), (2, 1, "B")])).len(),
            1
        );
        // Same patient → blocked.
        assert!(m
            .find(&rel(&[(0, 1, "A"), (1, 1, "X"), (2, 1, "B")]))
            .is_empty());
    }

    #[test]
    fn negation_applies_before_maximality() {
        // ⟨{p+}, ¬x, {b}⟩ on P P X B: both the 2-P and the suffix 1-P run
        // have an X in their gap → nothing survives (maximality cannot
        // resurrect a shorter variant whose gap is clean, because the gap
        // is the same).
        let p = Pattern::builder()
            .set(|s| s.plus("p"))
            .negate("x")
            .set(|s| s.var("b"))
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .neg_cond_const("x", "L", CmpOp::Eq, "X")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let m = Matcher::compile(&p, &schema()).unwrap();
        assert!(m
            .find(&rel(&[(0, 1, "P"), (1, 1, "P"), (2, 1, "X"), (3, 1, "B")]))
            .is_empty());
        // Without the X the maximal match returns.
        assert_eq!(
            m.find(&rel(&[(0, 1, "P"), (1, 1, "P"), (3, 1, "B")])).len(),
            1
        );
    }

    #[test]
    fn multi_gap_negations() {
        // ⟨{a}, ¬x, {b}, ¬y, {c}⟩.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("x")
            .set(|s| s.var("b"))
            .negate("y")
            .set(|s| s.var("c"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_const("c", "L", CmpOp::Eq, "C")
            .neg_cond_const("x", "L", CmpOp::Eq, "X")
            .neg_cond_const("y", "L", CmpOp::Eq, "Y")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let m = Matcher::compile(&p, &schema()).unwrap();
        // Y in the first gap is fine; Y in the second gap blocks.
        assert_eq!(
            m.find(&rel(&[(0, 1, "A"), (1, 1, "Y"), (2, 1, "B"), (3, 1, "C")]))
                .len(),
            1
        );
        assert!(m
            .find(&rel(&[(0, 1, "A"), (1, 1, "B"), (2, 1, "Y"), (3, 1, "C")]))
            .is_empty());
        assert!(m
            .find(&rel(&[(0, 1, "A"), (1, 1, "X"), (2, 1, "B"), (3, 1, "C")]))
            .is_empty());
    }

    #[test]
    fn all_semantics_respect_negations() {
        let pat = neg_pattern(false);
        let blocked = rel(&[(0, 1, "A"), (1, 1, "X"), (2, 1, "B")]);
        for semantics in [
            MatchSemantics::AllRuns,
            MatchSemantics::Definition2,
            MatchSemantics::Maximal,
        ] {
            let m = Matcher::with_options(
                &pat,
                &schema(),
                MatcherOptions {
                    semantics,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            assert!(m.find(&blocked).is_empty(), "{semantics:?}");
        }
    }
}
