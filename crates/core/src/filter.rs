//! Event pre-filtering (paper §4.5).
//!
//! Events that satisfy no condition of the form `v.A φ C` can never be
//! bound by any transition, yet Algorithm 1 would still iterate every
//! active instance for them. The paper inserts a filter "immediately after
//! they are read": an event reaches the instance loop only if it satisfies
//! **at least one** constant condition of `Θ`.
//!
//! We additionally provide a strictly stronger, still sound variant,
//! [`FilterMode::PerVariable`]: the event must satisfy **all** constant
//! conditions of at least one variable — a necessary criterion for the
//! event to ever bind anywhere. The ablation bench
//! `ablation_filter_selectivity` compares the three modes.
//!
//! Both filters are only sound when *every* variable carries at least one
//! constant condition (otherwise some variable accepts arbitrary events).
//! [`EventFilter::new`] silently downgrades to [`FilterMode::Off`] in that
//! case and records the downgrade.

use ses_event::Event;
use ses_pattern::CompiledPattern;

/// Filtering strategy applied to each input event before instance
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterMode {
    /// No filtering: every event is offered to every instance.
    Off,
    /// The paper's §4.5 filter: keep events satisfying ≥ 1 constant
    /// condition of `Θ`.
    #[default]
    Paper,
    /// Keep events satisfying **all** constant conditions of ≥ 1 variable
    /// (implies the paper's criterion; never weaker).
    PerVariable,
}

/// A compiled event filter for one pattern.
#[derive(Debug, Clone)]
pub struct EventFilter {
    mode: FilterMode,
    requested: FilterMode,
}

impl EventFilter {
    /// Compiles the filter, downgrading to [`FilterMode::Off`] when the
    /// pattern has a variable without constant conditions (filtering would
    /// then be unsound).
    pub fn new(pattern: &CompiledPattern, requested: FilterMode) -> EventFilter {
        let mode = if requested == FilterMode::Off || pattern.every_var_constrained() {
            requested
        } else {
            FilterMode::Off
        };
        EventFilter { mode, requested }
    }

    /// The mode actually in effect.
    pub fn effective_mode(&self) -> FilterMode {
        self.mode
    }

    /// The mode the options asked for (before any downgrade).
    pub fn requested_mode(&self) -> FilterMode {
        self.requested
    }

    /// `true` iff the requested mode had to be downgraded to `Off`.
    pub fn downgraded(&self) -> bool {
        self.mode != self.requested
    }

    /// Decides whether `event` passes the filter.
    #[inline]
    pub fn passes(&self, pattern: &CompiledPattern, event: &Event) -> bool {
        match self.mode {
            FilterMode::Off => true,
            FilterMode::Paper => pattern.satisfies_any_constant(event),
            FilterMode::PerVariable => {
                let n = pattern.pattern().num_vars();
                (0..n).any(|i| pattern.satisfies_var_constants(ses_pattern::VarId(i as u16), event))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, CmpOp, Event, Schema, Timestamp, Value};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .build()
            .unwrap()
    }

    fn ev(l: &str, v: f64) -> Event {
        Event::new(Timestamp::new(0), vec![Value::from(l), Value::from(v)])
    }

    fn pattern_two_consts() -> CompiledPattern {
        // a: L='A' ∧ V>10;  b: L='B'
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("a", "V", CmpOp::Gt, 10.0)
            .cond_const("b", "L", CmpOp::Eq, "B")
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap()
    }

    #[test]
    fn paper_filter_needs_any_constant() {
        let p = pattern_two_consts();
        let f = EventFilter::new(&p, FilterMode::Paper);
        assert!(!f.downgraded());
        // 'A' with small V satisfies a.L='A' → passes the paper filter.
        assert!(f.passes(&p, &ev("A", 1.0)));
        assert!(f.passes(&p, &ev("B", 1.0)));
        // V=50 satisfies a.V>10 even with alien label → passes.
        assert!(f.passes(&p, &ev("X", 50.0)));
        assert!(!f.passes(&p, &ev("X", 1.0)));
    }

    #[test]
    fn per_variable_filter_is_stronger() {
        let p = pattern_two_consts();
        let f = EventFilter::new(&p, FilterMode::PerVariable);
        // 'A' with small V fails a's full set and is not a 'B' → dropped.
        assert!(!f.passes(&p, &ev("A", 1.0)));
        assert!(f.passes(&p, &ev("A", 11.0)));
        assert!(f.passes(&p, &ev("B", 1.0)));
        assert!(!f.passes(&p, &ev("X", 50.0)));
    }

    #[test]
    fn per_variable_implies_paper() {
        let p = pattern_two_consts();
        let paper = EventFilter::new(&p, FilterMode::Paper);
        let pv = EventFilter::new(&p, FilterMode::PerVariable);
        for e in [
            ev("A", 1.0),
            ev("A", 11.0),
            ev("B", 0.0),
            ev("X", 50.0),
            ev("X", 0.0),
        ] {
            if pv.passes(&p, &e) {
                assert!(paper.passes(&p, &e), "PerVariable must be ⊆ Paper");
            }
        }
    }

    #[test]
    fn unconstrained_variable_downgrades() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("free"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let f = EventFilter::new(&p, FilterMode::Paper);
        assert!(f.downgraded());
        assert_eq!(f.effective_mode(), FilterMode::Off);
        // Everything passes after the downgrade.
        assert!(f.passes(&p, &ev("Z", 0.0)));
    }

    #[test]
    fn off_never_downgrades() {
        let p = pattern_two_consts();
        let f = EventFilter::new(&p, FilterMode::Off);
        assert!(!f.downgraded());
        assert!(f.passes(&p, &ev("Z", 0.0)));
    }
}
