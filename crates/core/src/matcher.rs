//! High-level matching API.
//!
//! [`Matcher`] bundles automaton construction, execution options, and the
//! Definition-2 semantics filter behind one call:
//!
//! ```
//! use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value, Relation};
//! use ses_pattern::Pattern;
//! use ses_core::Matcher;
//!
//! let schema = Schema::builder()
//!     .attr("L", AttrType::Str)
//!     .build()
//!     .unwrap();
//! let pattern = Pattern::builder()
//!     .set(|s| s.var("a").var("b"))
//!     .cond_const("a", "L", CmpOp::Eq, "A")
//!     .cond_const("b", "L", CmpOp::Eq, "B")
//!     .within(Duration::ticks(10))
//!     .build()
//!     .unwrap();
//!
//! let matcher = Matcher::compile(&pattern, &schema).unwrap();
//!
//! let mut rel = Relation::new(schema);
//! rel.push_values(Timestamp::new(0), [Value::from("B")]).unwrap();
//! rel.push_values(Timestamp::new(1), [Value::from("A")]).unwrap();
//!
//! let matches = matcher.find(&rel);
//! assert_eq!(matches.len(), 1); // B and A in any order
//! ```

use ses_event::{AttrId, Relation, Schema};
use ses_pattern::{CompiledPattern, Pattern};

use crate::automaton::{Automaton, DEFAULT_MAX_STATES};
use crate::columnar::ColumnarMode;
use crate::engine::{execute, EventSelection, ExecOptions};
use crate::filter::FilterMode;
use crate::matches::Match;
use crate::probe::{NoProbe, Probe};
use crate::semantics::{select_with, AdjudicationMode, MatchSemantics};
use crate::CoreError;

/// How a [`Matcher`] splits its input for partition-parallel execution.
///
/// Splitting is sound only when every match is confined to one value of
/// the partitioning attribute — see
/// [`CompiledPattern::partition_keys`] for the proof the matcher relies
/// on. Partitioning also requires `flush_at_end` (the default): without
/// the end-of-input flush, emission is driven by *later* events arriving
/// in the same scan, and a partition lacks the other keys' events that
/// would expire its instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// Never partition: one global scan (the default).
    #[default]
    Off,
    /// Partition by the first proven key, when the analyzer proves one
    /// and `flush_at_end` is set; fall back to a global scan otherwise.
    /// Never an error.
    Auto,
    /// Partition by this attribute. Construction fails with
    /// [`CoreError::UnprovenPartitionKey`] unless the attribute is a
    /// proven key and `flush_at_end` is set — an unproven split could
    /// silently lose cross-partition matches.
    Key(AttrId),
    /// Like [`PartitionMode::Auto`], but when no key is provable fall
    /// back to *time-sliced* execution
    /// ([`crate::parallel::find_time_sliced`]) instead of a global scan:
    /// the window `τ` bounds every match's temporal extent, so
    /// `τ`-overlapping time ranges cover every match even when nothing
    /// confines matches to one key value. Requires `flush_at_end` like
    /// every split mode (falls back to a global scan without it). Never
    /// an error. Batch-only: [`crate::ShardedStreamMatcher`] refuses it.
    TimeAuto,
}

/// How a [`Matcher`] actually executes, resolved from
/// [`MatcherOptions::partition`] against the compiled pattern at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// One global scan.
    #[default]
    Global,
    /// Key-partitioned scan over this proven attribute
    /// ([`crate::parallel::find_partitioned`]).
    Key(AttrId),
    /// Time-sliced scan over `τ`-overlapping ranges
    /// ([`crate::parallel::find_time_sliced`]).
    TimeSliced,
}

/// Configuration for a [`Matcher`].
#[derive(Debug, Clone)]
pub struct MatcherOptions {
    /// Event pre-filtering (§4.5). Default: the paper's filter.
    pub filter: FilterMode,
    /// Event selection strategy. Default: the paper's
    /// skip-till-next-match; see [`EventSelection::SkipTillAnyMatch`]
    /// for the Γ-complete extension.
    pub selection: EventSelection,
    /// Match selection semantics. Default: [`MatchSemantics::Maximal`],
    /// the paper's worked query answers.
    pub semantics: MatchSemantics,
    /// Emit accepting instances at end of input. Default: `true`.
    pub flush_at_end: bool,
    /// Per-event variable precheck optimization (see
    /// [`ExecOptions::type_precheck`]). Default: `true`.
    pub type_precheck: bool,
    /// Apply [`ses_pattern::equality_closure`] before compiling: derive
    /// the transitive closure of `=` conditions so every intermediate
    /// transition is fully correlated. Semantically conservative w.r.t.
    /// Definition 2, but under greedy skip-till-next-match it prevents
    /// instances from derailing on under-correlated patterns (strictly
    /// more matches found). Default: `false` (paper-faithful Θ).
    pub derive_equalities: bool,
    /// Run the full static-analyzer rewrite ([`ses_pattern::analyze`])
    /// before compiling: equality closure **plus** order-and-constant
    /// propagation, redundant constant conditions dropped. Derived
    /// constants can rescue the §4.5 filter from its silent `Off`
    /// downgrade when a variable is only correlated to a
    /// constant-constrained one. Implies the effect of
    /// `derive_equalities`. Default: `false` (paper-faithful Θ).
    pub propagate_constants: bool,
    /// State budget for the powerset construction.
    pub max_states: usize,
    /// Optional hard cap on simultaneous instances (tests/guards only).
    pub max_instances: Option<usize>,
    /// Partition-parallel execution mode. Default: [`PartitionMode::Off`].
    pub partition: PartitionMode,
    /// Worker threads for partitioned execution. `None` (the default)
    /// uses [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Columnar admission (see [`crate::ColumnarMode`]): batch
    /// pre-evaluation of constant conditions into per-variable bitmask
    /// vectors. Semantics-neutral deployment knob — deliberately
    /// excluded from the checkpoint fingerprint. Default:
    /// [`ColumnarMode::Auto`].
    pub columnar: ColumnarMode,
    /// Adjudicator implementation for conditions 4–5 and maximality
    /// (see [`crate::AdjudicationMode`]). Observably identical either
    /// way; like `columnar`, excluded from the checkpoint fingerprint.
    /// Default: [`AdjudicationMode::Indexed`].
    pub adjudication: AdjudicationMode,
}

impl Default for MatcherOptions {
    fn default() -> Self {
        MatcherOptions {
            filter: FilterMode::Paper,
            selection: EventSelection::SkipTillNextMatch,
            semantics: MatchSemantics::Maximal,
            flush_at_end: true,
            type_precheck: true,
            derive_equalities: false,
            propagate_constants: false,
            max_states: DEFAULT_MAX_STATES,
            max_instances: None,
            partition: PartitionMode::Off,
            threads: None,
            columnar: ColumnarMode::Auto,
            adjudication: AdjudicationMode::Indexed,
        }
    }
}

/// A compiled, reusable matcher for one pattern over one schema.
#[derive(Debug, Clone)]
pub struct Matcher {
    automaton: Automaton,
    options: MatcherOptions,
    /// How [`Matcher::find`] executes, resolved from `options.partition`
    /// at construction.
    partition: PartitionStrategy,
}

/// Compiles `pattern` against `schema`, honoring the analyzer-rewrite
/// options: full constant propagation, the equality closure, or the
/// paper-faithful Θ verbatim. The single compile path shared by
/// [`Matcher`], [`crate::StreamMatcher`], [`crate::ShardedStreamMatcher`],
/// and [`crate::PatternBank`] — the bank relies on it to build its
/// predicate index from the *same* compiled pattern its matchers run.
pub(crate) fn compile_pattern(
    pattern: &Pattern,
    schema: &Schema,
    options: &MatcherOptions,
) -> Result<CompiledPattern, CoreError> {
    Ok(if options.propagate_constants {
        ses_pattern::analyze(pattern, schema)
            .pattern
            .compile(schema)?
    } else if options.derive_equalities {
        ses_pattern::equality_closure(pattern).compile(schema)?
    } else {
        pattern.compile(schema)?
    })
}

/// Resolves a [`PartitionMode`] against a compiled pattern's proven
/// keys. Shared by [`Matcher`] and [`crate::ShardedStreamMatcher`].
pub(crate) fn resolve_partition(
    compiled: &CompiledPattern,
    options: &MatcherOptions,
) -> Result<PartitionStrategy, CoreError> {
    let auto_key = || {
        if options.flush_at_end {
            compiled.partition_keys().first().copied()
        } else {
            None
        }
    };
    match options.partition {
        PartitionMode::Off => Ok(PartitionStrategy::Global),
        PartitionMode::Auto => Ok(auto_key()
            .map(PartitionStrategy::Key)
            .unwrap_or(PartitionStrategy::Global)),
        PartitionMode::TimeAuto => Ok(match auto_key() {
            // A proven key beats time slicing: it shrinks the per-event
            // instance loop and duplicates no work, while slices re-scan
            // the τ overlaps.
            Some(key) => PartitionStrategy::Key(key),
            None if options.flush_at_end => PartitionStrategy::TimeSliced,
            None => PartitionStrategy::Global,
        }),
        PartitionMode::Key(attr) => {
            if attr.index() >= compiled.schema().len() {
                return Err(CoreError::UnprovenPartitionKey {
                    attr: attr.to_string(),
                    reason: "the schema has no such attribute".to_string(),
                });
            }
            let name = compiled.schema().attr_name(attr);
            if !options.flush_at_end {
                return Err(CoreError::UnprovenPartitionKey {
                    attr: name.to_string(),
                    reason: "partitioned execution requires `flush_at_end`: without the \
                             end-of-input flush, emission depends on later events of \
                             *other* keys expiring the instance"
                        .to_string(),
                });
            }
            if !compiled.is_partition_key(attr) {
                return Err(CoreError::UnprovenPartitionKey {
                    attr: name.to_string(),
                    reason: format!(
                        "the equality-condition graph on `{name}` does not connect every \
                         variable, so a match could span two `{name}` values"
                    ),
                });
            }
            Ok(PartitionStrategy::Key(attr))
        }
    }
}

impl Matcher {
    /// Compiles `pattern` against `schema` with default options.
    pub fn compile(pattern: &Pattern, schema: &Schema) -> Result<Matcher, CoreError> {
        Matcher::with_options(pattern, schema, MatcherOptions::default())
    }

    /// Compiles `pattern` against `schema` with explicit options.
    pub fn with_options(
        pattern: &Pattern,
        schema: &Schema,
        options: MatcherOptions,
    ) -> Result<Matcher, CoreError> {
        let compiled = compile_pattern(pattern, schema, &options)?;
        Matcher::from_compiled(compiled, options)
    }

    /// Builds a matcher from an already compiled pattern.
    pub fn from_compiled(
        compiled: CompiledPattern,
        options: MatcherOptions,
    ) -> Result<Matcher, CoreError> {
        let partition = resolve_partition(&compiled, &options)?;
        let automaton = Automaton::build_with_limit(compiled, options.max_states)?;
        Ok(Matcher {
            automaton,
            options,
            partition,
        })
    }

    /// The underlying SES automaton.
    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    /// The matcher's options.
    pub fn options(&self) -> &MatcherOptions {
        &self.options
    }

    /// The attribute [`Matcher::find`] partitions by, if any — `Some`
    /// when the configured [`PartitionMode`] resolved against a proven
    /// key at construction.
    pub fn partition_key(&self) -> Option<AttrId> {
        match self.partition {
            PartitionStrategy::Key(attr) => Some(attr),
            _ => None,
        }
    }

    /// How [`Matcher::find`] executes — the configured [`PartitionMode`]
    /// resolved against the pattern's proven keys at construction.
    pub fn partition_strategy(&self) -> PartitionStrategy {
        self.partition
    }

    pub(crate) fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            filter: self.options.filter,
            selection: self.options.selection,
            flush_at_end: self.options.flush_at_end,
            type_precheck: self.options.type_precheck,
            max_instances: self.options.max_instances,
            spawn_start: true,
            columnar: self.options.columnar,
        }
    }

    /// Finds all matching substitutions in `relation`.
    pub fn find(&self, relation: &Relation) -> Vec<Match> {
        self.find_with_probe(relation, &mut NoProbe)
    }

    /// Finds all matching substitutions, reporting engine events to
    /// `probe`.
    ///
    /// When the resolved [`PartitionStrategy`] splits the input (by key
    /// or by time) the scan runs in parallel. Per-event probe hooks are
    /// then sampled inside worker threads and only the aggregate hooks
    /// (`partitions`/`slices`, `partition_events`/`slice_events`,
    /// per-split peak `omega`, `filter_mode`) reach `probe` — use
    /// [`crate::parallel::find_partitioned_with`] or
    /// [`crate::parallel::find_time_sliced_with`] directly for full
    /// per-split instrumentation.
    pub fn find_with_probe<P: Probe>(&self, relation: &Relation, probe: &mut P) -> Vec<Match> {
        /// Minimal per-split worker probe: peak `|Ω|` only.
        #[derive(Default)]
        struct Peak(usize);
        impl Probe for Peak {
            fn omega(&mut self, n: usize) {
                self.0 = self.0.max(n);
            }
        }
        // A provably unsatisfiable Θ (analyzer SES001) matches nothing;
        // skip the scan entirely.
        if !self.automaton.pattern().is_satisfiable() {
            return Vec::new();
        }
        match self.partition {
            PartitionStrategy::Key(key) => {
                let (matches, peaks) = crate::parallel::find_partitioned_with(
                    self,
                    relation,
                    key,
                    self.options.threads,
                    probe,
                    Peak::default,
                );
                for p in peaks {
                    probe.omega(p.0);
                }
                return matches;
            }
            PartitionStrategy::TimeSliced => {
                let (matches, peaks) = crate::parallel::find_time_sliced_with(
                    self,
                    relation,
                    self.options.threads,
                    probe,
                    Peak::default,
                );
                for p in peaks {
                    probe.omega(p.0);
                }
                return matches;
            }
            PartitionStrategy::Global => {}
        }
        let raw = execute(&self.automaton, relation, &self.exec_options(), probe);
        let raw = crate::negation::filter_negations(raw, relation, self.automaton.pattern());
        select_with(
            raw,
            relation,
            self.automaton.pattern(),
            self.options.semantics,
            self.options.adjudication,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, CmpOp, Duration, Timestamp, Value};

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn rel(rows: &[(i64, i64, &str)]) -> Relation {
        let mut r = Relation::new(schema());
        for (ts, id, l) in rows {
            r.push_values(Timestamp::new(*ts), [Value::from(*id), Value::from(*l)])
                .unwrap();
        }
        r
    }

    #[test]
    fn paper_semantics_collapses_symmetric_runs() {
        // ⟨{x,y}⟩ same-type: raw runs {x/e1,y/e2} and {y/e1,x/e2}. Both
        // satisfy Definition 2 (neither violates cond. 4: the alternative
        // binding at e1 is not strictly inside (e1, e2)... it IS the min).
        let p = Pattern::builder()
            .set(|s| s.var("x").var("y"))
            .cond_const("x", "L", CmpOp::Eq, "M")
            .cond_const("y", "L", CmpOp::Eq, "M")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let m = Matcher::compile(&p, &schema()).unwrap();
        let out = m.find(&rel(&[(0, 1, "M"), (1, 1, "M")]));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn semantics_modes_on_group_extension() {
        // ⟨{p+},{b}⟩ on P P B: one accepting run per starting P.
        let p = Pattern::builder()
            .set(|s| s.plus("p"))
            .set(|s| s.var("b"))
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        let r = rel(&[(0, 1, "P"), (1, 1, "P"), (2, 1, "B")]);

        let count = |sem: MatchSemantics| {
            let m = Matcher::with_options(
                &p,
                &schema(),
                MatcherOptions {
                    semantics: sem,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            m.find(&r).len()
        };
        // Definition 2 keeps the suffix run {p/e2, b/e3} (different first
        // binding); Maximal drops it as a proper subset of the full match.
        assert_eq!(count(MatchSemantics::AllRuns), 2);
        assert_eq!(count(MatchSemantics::Definition2), 2);
        assert_eq!(count(MatchSemantics::Maximal), 1);

        let m = Matcher::compile(&p, &schema()).unwrap();
        let out = m.find(&r);
        assert_eq!(out[0].to_string(), "{v0/e1, v0/e2, v1/e3}");
    }

    #[test]
    fn options_expose_filter_downgrade_behaviour() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let m = Matcher::with_options(
            &p,
            &schema(),
            MatcherOptions {
                filter: FilterMode::PerVariable,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(m.options().filter, FilterMode::PerVariable);
        assert_eq!(m.find(&rel(&[(0, 1, "A")])).len(), 1);
    }

    #[test]
    fn equality_closure_rescues_star_correlated_patterns() {
        // Star: a.ID = hub.ID, b.ID = hub.ID — the a–b pair is
        // unconstrained, so a greedy instance in state {a} absorbs a
        // foreign b and derails. With derive_equalities the implied
        // a.ID = b.ID keeps it on track.
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b").var("hub"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_const("hub", "L", CmpOp::Eq, "H")
            .cond_vars("a", "ID", CmpOp::Eq, "hub", "ID")
            .cond_vars("b", "ID", CmpOp::Eq, "hub", "ID")
            .within(Duration::ticks(100))
            .build()
            .unwrap();
        // Patient 1's A, then patient 2's B (the trap), then patient 1's
        // B and H.
        let r = rel(&[(0, 1, "A"), (1, 2, "B"), (2, 1, "B"), (3, 1, "H")]);

        let plain = Matcher::compile(&p, &schema()).unwrap().find(&r);
        assert!(plain.is_empty(), "greedy star pattern derails");

        let closed = Matcher::with_options(
            &p,
            &schema(),
            MatcherOptions {
                derive_equalities: true,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        let found = closed.find(&r);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].to_string(), "{v0/e1, v1/e3, v2/e4}");
    }

    #[test]
    fn unsatisfiable_pattern_short_circuits() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "ID", CmpOp::Gt, 10)
            .cond_const("a", "ID", CmpOp::Lt, 5)
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let m = Matcher::compile(&p, &schema()).unwrap();
        assert!(!m.automaton().pattern().is_satisfiable());
        // No event can match (the engine is never even consulted).
        struct Panicking;
        impl Probe for Panicking {
            fn event_read(&mut self) {
                panic!("engine ran on an unsatisfiable pattern");
            }
        }
        let out = m.find_with_probe(&rel(&[(0, 1, "A"), (1, 7, "B")]), &mut Panicking);
        assert!(out.is_empty());
    }

    #[test]
    fn propagated_constants_rescue_the_event_filter() {
        // `b` carries no constant condition — only the correlation
        // b.ID = a.ID to the constant-constrained `a`. Without the
        // analyzer the §4.5 filter silently downgrades to Off; with
        // propagate_constants the derived `b.ID = 1` makes every variable
        // constrained and the filter runs in the requested Paper mode.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "ID", CmpOp::Eq, 1)
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_vars("b", "ID", CmpOp::Eq, "a", "ID")
            .within(Duration::ticks(100))
            .build()
            .unwrap();

        #[derive(Default)]
        struct Modes {
            requested: Option<FilterMode>,
            effective: Option<FilterMode>,
        }
        impl Probe for Modes {
            fn filter_mode(&mut self, requested: FilterMode, effective: FilterMode) {
                self.requested = Some(requested);
                self.effective = Some(effective);
            }
        }

        let r = rel(&[(0, 1, "A"), (1, 1, "X")]);

        let plain = Matcher::compile(&p, &schema()).unwrap();
        let mut modes = Modes::default();
        let baseline = plain.find_with_probe(&r, &mut modes);
        assert_eq!(modes.requested, Some(FilterMode::Paper));
        assert_eq!(modes.effective, Some(FilterMode::Off), "silent downgrade");

        let analyzed = Matcher::with_options(
            &p,
            &schema(),
            MatcherOptions {
                propagate_constants: true,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert!(analyzed.automaton().pattern().every_var_constrained());
        let mut modes = Modes::default();
        let found = analyzed.find_with_probe(&r, &mut modes);
        assert_eq!(modes.effective, Some(FilterMode::Paper), "filter rescued");
        // Same matches either way.
        assert_eq!(
            found.iter().map(|m| m.to_string()).collect::<Vec<_>>(),
            baseline.iter().map(|m| m.to_string()).collect::<Vec<_>>(),
        );
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn matcher_is_reusable_across_relations() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let m = Matcher::compile(&p, &schema()).unwrap();
        assert_eq!(m.find(&rel(&[(0, 1, "A")])).len(), 1);
        assert_eq!(m.find(&rel(&[(0, 1, "B")])).len(), 0);
        assert_eq!(m.find(&rel(&[(0, 1, "A"), (100, 2, "A")])).len(), 2);
    }

    fn correlated_pair() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::ticks(10))
            .build()
            .unwrap()
    }

    #[test]
    fn auto_partition_uses_the_proven_key() {
        let m = Matcher::with_options(
            &correlated_pair(),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::Auto,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(m.partition_key(), schema().attr_id("ID"));
    }

    #[test]
    fn auto_partition_falls_back_without_flush_or_proof() {
        // flush_at_end=false: partitioning is unsound (emission would
        // depend on other keys' events expiring instances), so Auto
        // silently runs global.
        let m = Matcher::with_options(
            &correlated_pair(),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::Auto,
                flush_at_end: false,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(m.partition_key(), None);

        // Uncorrelated pattern: nothing provable, Auto runs global.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(10))
            .build()
            .unwrap();
        let m = Matcher::with_options(
            &p,
            &schema(),
            MatcherOptions {
                partition: PartitionMode::Auto,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(m.partition_key(), None);
    }

    #[test]
    fn explicit_unproven_key_is_refused() {
        // L carries no cross-variable equality: partitioning by it could
        // split a's event from b's, so Key(L) must be rejected loudly.
        let err = Matcher::with_options(
            &correlated_pair(),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::Key(schema().attr_id("L").unwrap()),
                ..MatcherOptions::default()
            },
        )
        .unwrap_err();
        match err {
            CoreError::UnprovenPartitionKey { attr, reason } => {
                assert_eq!(attr, "L");
                assert!(reason.contains("does not connect every"), "{reason}");
            }
            other => panic!("expected UnprovenPartitionKey, got {other:?}"),
        }

        // Out-of-schema attribute ids are refused, not panicked on.
        let err = Matcher::with_options(
            &correlated_pair(),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::Key(AttrId(99)),
                ..MatcherOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("no such attribute"));

        // A proven explicit key is accepted.
        let m = Matcher::with_options(
            &correlated_pair(),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::Key(schema().attr_id("ID").unwrap()),
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(m.partition_key(), schema().attr_id("ID"));
    }
}
