//! Errors of the automaton construction and execution engine.

use std::fmt;

/// Errors raised by `ses-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The powerset construction would exceed the configured state budget
    /// (`Σi 2^|Vi|` states; an event set pattern with dozens of variables
    /// is almost certainly a mistake).
    TooManyStates {
        /// States the pattern requires.
        required: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// A pattern failed to compile against the schema.
    Pattern(ses_pattern::PatternError),
    /// An explicitly requested partition key could not be proven sound
    /// for the pattern — splitting by it could lose cross-partition
    /// matches, so the matcher refuses rather than silently mis-answer.
    /// Use `PartitionMode::Auto` to partition only when provable.
    UnprovenPartitionKey {
        /// The requested attribute's name.
        attr: String,
        /// Why the proof failed.
        reason: String,
    },
    /// A snapshot could not be applied to this matcher: its fingerprint
    /// disagrees with the matcher's pattern/schema/options, or its
    /// payload is internally inconsistent. Restoring anyway would
    /// silently corrupt matching, so the matcher refuses.
    SnapshotMismatch {
        /// What disagreed.
        reason: String,
    },
    /// A dynamic subscription could not be registered on a running
    /// pattern bank (duplicate name, or the bank executes a structural
    /// sharing plan that live registration would invalidate).
    Subscription {
        /// Why the registration was refused.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TooManyStates { required, limit } => write!(
                f,
                "automaton would need {required} states, exceeding the limit of {limit}"
            ),
            CoreError::Pattern(e) => write!(f, "pattern error: {e}"),
            CoreError::UnprovenPartitionKey { attr, reason } => write!(
                f,
                "`{attr}` is not a proven partition key: {reason} \
                 (use `Auto` to partition only when provable)"
            ),
            CoreError::SnapshotMismatch { reason } => {
                write!(f, "snapshot cannot be restored: {reason}")
            }
            CoreError::Subscription { reason } => {
                write!(f, "subscription rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Pattern(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ses_pattern::PatternError> for CoreError {
    fn from(e: ses_pattern::PatternError) -> Self {
        CoreError::Pattern(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CoreError::TooManyStates {
            required: 1 << 30,
            limit: 1 << 20,
        };
        assert!(e.to_string().contains("exceeding"));
        let p = CoreError::Pattern(ses_pattern::PatternError::NoSets);
        assert!(p.to_string().starts_with("pattern error:"));
    }
}
