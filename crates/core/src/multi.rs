//! Multi-query matching: evaluate many patterns over one relation in a
//! single pass.
//!
//! A monitoring deployment rarely runs one query. [`MultiMatcher`] steps
//! every compiled matcher's execution in lock-step over the shared input,
//! so the relation is traversed once regardless of how many patterns are
//! registered, and per-query probes sample `|Ω|` at the same instants
//! (the same mechanism the brute-force baseline uses for its bank).

use ses_event::Relation;

use crate::engine::{ExecOptions, Execution};
use crate::matcher::Matcher;
use crate::matches::Match;
use crate::probe::{NoProbe, Probe};
use crate::semantics::select_with;

/// A bank of independent matchers evaluated in one pass.
#[derive(Debug, Default)]
pub struct MultiMatcher {
    matchers: Vec<(String, Matcher)>,
}

impl MultiMatcher {
    /// An empty bank.
    pub fn new() -> MultiMatcher {
        MultiMatcher::default()
    }

    /// Registers a named matcher; returns `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, matcher: Matcher) -> MultiMatcher {
        self.matchers.push((name.into(), matcher));
        self
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// `true` iff no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.matchers.is_empty()
    }

    /// The registered query names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.matchers.iter().map(|(n, _)| n.as_str())
    }

    /// Evaluates every query over `relation` in one pass; results are
    /// returned per query, in registration order, each under its own
    /// matcher's semantics. Identical to running each matcher alone.
    pub fn find_all(&self, relation: &Relation) -> Vec<(String, Vec<Match>)> {
        self.find_all_with_probe(relation, &mut NoProbe)
    }

    /// [`MultiMatcher::find_all`] with a shared probe (receives the
    /// union of all queries' engine callbacks; `omega` reports the sum
    /// across queries after each event).
    pub fn find_all_with_probe<P: Probe>(
        &self,
        relation: &Relation,
        probe: &mut P,
    ) -> Vec<(String, Vec<Match>)> {
        struct SuppressOmega<'p, P: Probe>(&'p mut P);
        impl<P: Probe> Probe for SuppressOmega<'_, P> {
            fn event_read(&mut self) {}
            fn event_filtered(&mut self) {
                self.0.event_filtered();
            }
            fn instance_spawned(&mut self) {
                self.0.instance_spawned();
            }
            fn instance_branched(&mut self) {
                self.0.instance_branched();
            }
            fn instance_expired(&mut self) {
                self.0.instance_expired();
            }
            fn transition_evaluated(&mut self) {
                self.0.transition_evaluated();
            }
            fn transition_taken(&mut self) {
                self.0.transition_taken();
            }
            fn match_emitted(&mut self) {
                self.0.match_emitted();
            }
            fn omega(&mut self, _n: usize) {}
        }

        let exec_opts: Vec<ExecOptions> = self
            .matchers
            .iter()
            .map(|(_, m)| {
                let o = m.options();
                ExecOptions {
                    filter: o.filter,
                    selection: o.selection,
                    flush_at_end: o.flush_at_end,
                    type_precheck: o.type_precheck,
                    max_instances: o.max_instances,
                    spawn_start: true,
                    columnar: o.columnar,
                }
            })
            .collect();
        let mut executions: Vec<Execution<'_>> = self
            .matchers
            .iter()
            .zip(&exec_opts)
            .map(|((_, m), opts)| Execution::new(m.automaton(), relation, opts))
            .collect();

        let mut shared = SuppressOmega(probe);
        for _ in 0..relation.len() {
            for exec in &mut executions {
                exec.step(&mut shared);
            }
            let total: usize = executions.iter().map(Execution::omega_len).sum();
            shared.0.omega(total);
            shared.0.event_read();
        }

        executions
            .into_iter()
            .zip(&self.matchers)
            .map(|(exec, (name, matcher))| {
                let raw = exec.finish(&mut shared);
                let raw =
                    crate::negation::filter_negations(raw, relation, matcher.automaton().pattern());
                let matches = select_with(
                    raw,
                    relation,
                    matcher.automaton().pattern(),
                    matcher.options().semantics,
                    matcher.options().adjudication,
                );
                (name.clone(), matches)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn rel(rows: &[(i64, i64, &str)]) -> Relation {
        let mut r = Relation::new(schema());
        for (ts, id, l) in rows {
            r.push_values(Timestamp::new(*ts), [Value::from(*id), Value::from(*l)])
                .unwrap();
        }
        r
    }

    fn seq(first: &str, second: &str) -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, first)
            .cond_const("b", "L", CmpOp::Eq, second)
            .within(Duration::ticks(100))
            .build()
            .unwrap()
    }

    #[test]
    fn multi_matches_equal_individual_runs() {
        let schema = schema();
        let r = rel(&[
            (0, 1, "A"),
            (1, 1, "B"),
            (2, 1, "C"),
            (3, 1, "A"),
            (4, 1, "C"),
        ]);
        let q_ab = Matcher::compile(&seq("A", "B"), &schema).unwrap();
        let q_ac = Matcher::compile(&seq("A", "C"), &schema).unwrap();
        let q_bc = Matcher::compile(&seq("B", "C"), &schema).unwrap();

        let multi = MultiMatcher::new()
            .with("ab", q_ab.clone())
            .with("ac", q_ac.clone())
            .with("bc", q_bc.clone());
        assert_eq!(multi.len(), 3);
        assert_eq!(multi.names().collect::<Vec<_>>(), vec!["ab", "ac", "bc"]);

        let grouped = multi.find_all(&r);
        for ((name, got), single) in grouped.iter().zip([&q_ab, &q_ac, &q_bc]) {
            let expected = single.find(&r);
            assert_eq!(got, &expected, "query {name}");
        }
        // Sanity on actual contents.
        assert_eq!(grouped[0].1.len(), 1); // A→B
        assert_eq!(grouped[1].1.len(), 2); // A→C twice
        assert_eq!(grouped[2].1.len(), 1); // B→C
    }

    #[test]
    fn shared_probe_sums_omega() {
        struct MaxOmega(usize);
        impl Probe for MaxOmega {
            fn omega(&mut self, n: usize) {
                self.0 = self.0.max(n);
            }
        }
        let schema = schema();
        let r = rel(&[(0, 1, "A"), (1, 1, "B"), (2, 1, "C")]);
        let multi = MultiMatcher::new()
            .with("ab", Matcher::compile(&seq("A", "B"), &schema).unwrap())
            .with("ac", Matcher::compile(&seq("A", "C"), &schema).unwrap());
        let mut probe = MaxOmega(0);
        multi.find_all_with_probe(&r, &mut probe);
        // Both queries hold an instance after e1 → the summed |Ω| ≥ 2.
        assert!(probe.0 >= 2, "summed |Ω| = {}", probe.0);
    }

    #[test]
    fn empty_bank_is_fine() {
        let r = rel(&[(0, 1, "A")]);
        let multi = MultiMatcher::new();
        assert!(multi.is_empty());
        assert!(multi.find_all(&r).is_empty());
    }
}
