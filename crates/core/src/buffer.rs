//! Persistent match buffers.
//!
//! The match buffer `β` of an automaton instance collects variable/event
//! bindings (§4.1). Nondeterminism makes instances *branch* (Algorithm 2
//! line 5), and in the worst case `|Ω|` grows factorially (Theorems 2–3) —
//! so buffers must be cheap to fork. [`Buffer`] is an immutable,
//! structurally shared cons list: `push` allocates one node and shares the
//! whole tail, making a branch O(1) in time and memory.

use std::fmt;
use std::sync::Arc;

use ses_event::{EventId, Timestamp};
use ses_pattern::VarId;

/// One binding `v/e` of a variable to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// The event variable.
    pub var: VarId,
    /// The bound event.
    pub event: EventId,
    /// The bound event's occurrence time (cached to avoid relation
    /// lookups in the expiry check).
    pub ts: Timestamp,
}

#[derive(Debug)]
struct Node {
    binding: Binding,
    next: Option<Arc<Node>>,
}

/// An immutable, structurally shared match buffer.
#[derive(Debug, Clone, Default)]
pub struct Buffer {
    head: Option<Arc<Node>>,
    len: u32,
    /// Timestamp of the chronologically first binding (`minT`), tracked
    /// incrementally. Events are consumed in stream order, so this is the
    /// timestamp of the oldest node — but we keep it explicit for O(1)
    /// expiry checks.
    min_ts: Option<Timestamp>,
}

impl Buffer {
    /// The empty buffer `β = ∅`.
    pub const EMPTY: Buffer = Buffer {
        head: None,
        len: 0,
        min_ts: None,
    };

    /// Returns a new buffer extending `self` with one binding; `self` is
    /// untouched and shares its nodes with the result.
    pub fn push(&self, var: VarId, event: EventId, ts: Timestamp) -> Buffer {
        Buffer {
            head: Some(Arc::new(Node {
                binding: Binding { var, event, ts },
                next: self.head.clone(),
            })),
            len: self.len + 1,
            min_ts: Some(match self.min_ts {
                Some(m) => m.min(ts),
                None => ts,
            }),
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` iff the buffer holds no bindings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Timestamp of the chronologically earliest binding, if any — the
    /// `minT(γ)` of Definition 2.
    pub fn min_ts(&self) -> Option<Timestamp> {
        self.min_ts
    }

    /// Iterates bindings newest-first (reverse binding order).
    pub fn iter(&self) -> BufferIter<'_> {
        BufferIter {
            node: self.head.as_deref(),
        }
    }

    /// Iterates the bindings of one variable, newest-first.
    pub fn bindings_of(&self, var: VarId) -> impl Iterator<Item = Binding> + '_ {
        self.iter().filter(move |b| b.var == var)
    }

    /// The (single) binding of a variable, if present. For group variables
    /// this returns the most recent binding.
    pub fn binding_of(&self, var: VarId) -> Option<Binding> {
        self.bindings_of(var).next()
    }

    /// Extracts the bindings as a vector sorted by `(event, var)` — the
    /// canonical form used for match comparison and deduplication.
    pub fn to_sorted_bindings(&self) -> Vec<(VarId, EventId)> {
        let mut v: Vec<(VarId, EventId)> = self.iter().map(|b| (b.var, b.event)).collect();
        v.sort_unstable_by_key(|&(var, ev)| (ev, var));
        v
    }
}

/// Iterator over a buffer's bindings, newest-first.
pub struct BufferIter<'a> {
    node: Option<&'a Node>,
}

impl Iterator for BufferIter<'_> {
    type Item = Binding;

    fn next(&mut self) -> Option<Binding> {
        let n = self.node?;
        self.node = n.next.as_deref();
        Some(n.binding)
    }
}

impl fmt::Display for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut bindings: Vec<Binding> = self.iter().collect();
        bindings.reverse(); // oldest first, like the paper's figures
        write!(f, "{{")?;
        for (i, b) in bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", b.var, b.event)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: i64) -> Timestamp {
        Timestamp::new(t)
    }

    #[test]
    fn push_is_persistent() {
        let a = Buffer::EMPTY.push(VarId(0), EventId(0), ts(1));
        let b = a.push(VarId(1), EventId(1), ts(2));
        let c = a.push(VarId(2), EventId(2), ts(3)); // fork from a
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(b.binding_of(VarId(1)).unwrap().event, EventId(1));
        assert_eq!(c.binding_of(VarId(2)).unwrap().event, EventId(2));
        assert!(b.binding_of(VarId(2)).is_none());
    }

    #[test]
    fn min_ts_tracks_earliest() {
        let b = Buffer::EMPTY
            .push(VarId(0), EventId(5), ts(10))
            .push(VarId(1), EventId(6), ts(20));
        assert_eq!(b.min_ts(), Some(ts(10)));
        assert_eq!(Buffer::EMPTY.min_ts(), None);
        // Even if a later push has an earlier ts (ties in stream order).
        let c = b.push(VarId(2), EventId(7), ts(5));
        assert_eq!(c.min_ts(), Some(ts(5)));
    }

    #[test]
    fn bindings_of_group_variable() {
        let p = VarId(1);
        let b = Buffer::EMPTY
            .push(p, EventId(3), ts(1))
            .push(VarId(0), EventId(4), ts(2))
            .push(p, EventId(8), ts(3));
        let events: Vec<_> = b.bindings_of(p).map(|x| x.event.0).collect();
        assert_eq!(events, vec![8, 3]); // newest first
        assert_eq!(b.binding_of(p).unwrap().event, EventId(8));
    }

    #[test]
    fn sorted_bindings_are_canonical() {
        let b = Buffer::EMPTY
            .push(VarId(2), EventId(9), ts(1))
            .push(VarId(0), EventId(3), ts(2));
        assert_eq!(
            b.to_sorted_bindings(),
            vec![(VarId(0), EventId(3)), (VarId(2), EventId(9))]
        );
    }

    #[test]
    fn display_oldest_first() {
        let b = Buffer::EMPTY
            .push(VarId(0), EventId(0), ts(1))
            .push(VarId(1), EventId(2), ts(2));
        assert_eq!(b.to_string(), "{v0/e1, v1/e3}");
        assert_eq!(Buffer::EMPTY.to_string(), "{}");
    }

    #[test]
    fn empty_buffer_iterates_nothing() {
        assert_eq!(Buffer::EMPTY.iter().count(), 0);
        assert!(Buffer::EMPTY.is_empty());
        assert_eq!(Buffer::default().len(), 0);
    }
}
