//! Step-by-step execution traces — the paper's Figure 6 as a library
//! feature.
//!
//! [`trace_execution`] replays `SESExec` event by event and records how
//! the instance set `Ω` evolves: which instances advanced (and along
//! which variable binding), which were freshly started, which expired,
//! and which matches were emitted. [`ExecutionTrace::render`] prints the
//! story in the style of the paper's Figure 6.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ses_event::{EventId, Relation};

use crate::buffer::Buffer;
use crate::engine::{ExecOptions, Execution, Instance};
use crate::probe::NoProbe;
use crate::{Automaton, StateId};

/// What happened to the instance set at one input event.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The consumed event.
    pub event: EventId,
    /// `true` when the §4.5 filter dropped the event (nothing else
    /// happens on such steps).
    pub filtered: bool,
    /// Instances present after the step, as `(state, buffer)` pairs.
    pub instances: Vec<(StateId, Buffer)>,
    /// How many instances of the previous step expired at this event.
    pub expired: usize,
    /// Raw matches emitted at this event (on expiry).
    pub emitted: usize,
    /// `|Ω|` after the step.
    pub omega: usize,
}

/// A full execution trace.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    /// One step per input event, in stream order.
    pub steps: Vec<TraceStep>,
    /// Total raw matches produced (including the end-of-input flush).
    pub total_matches: usize,
}

/// Replays the automaton over `relation`, recording every step.
///
/// Tracing clones the instance set at every event — use it for
/// debugging and documentation, not for measurement.
pub fn trace_execution(
    automaton: &Automaton,
    relation: &Relation,
    options: &ExecOptions,
) -> ExecutionTrace {
    let mut exec = Execution::new(automaton, relation, options);
    let mut steps = Vec::with_capacity(relation.len());
    let mut emitted_during_run = 0usize;

    struct StepProbe {
        filtered: bool,
        expired: usize,
        emitted: usize,
    }
    impl crate::Probe for StepProbe {
        fn event_filtered(&mut self) {
            self.filtered = true;
        }
        fn instance_expired(&mut self) {
            self.expired += 1;
        }
        fn match_emitted(&mut self) {
            self.emitted += 1;
        }
    }

    loop {
        let position = exec.position();
        let mut probe = StepProbe {
            filtered: false,
            expired: 0,
            emitted: 0,
        };
        if !exec.step(&mut probe) {
            break;
        }
        let instances: Vec<(StateId, Buffer)> = exec
            .instances()
            .iter()
            .map(|i: &Instance| (i.state, i.buffer.clone()))
            .collect();
        steps.push(TraceStep {
            event: EventId::from(position),
            filtered: probe.filtered,
            omega: instances.len(),
            instances,
            expired: probe.expired,
            emitted: probe.emitted,
        });
        emitted_during_run += probe.emitted;
    }
    let mut flush_probe = NoProbe;
    let results = exec.finish(&mut flush_probe);
    ExecutionTrace {
        steps,
        total_matches: results.len().max(emitted_during_run),
    }
}

impl ExecutionTrace {
    /// Renders the trace in the style of the paper's Figure 6. When
    /// `follow` is given, only instances whose buffer starts with that
    /// event are shown (the paper follows the patient-1 instance).
    pub fn render(&self, automaton: &Automaton, follow: Option<EventId>) -> String {
        let pattern = automaton.pattern().pattern();
        let mut out = String::new();
        for step in &self.steps {
            let _ = write!(out, "read {}: ", step.event);
            if step.filtered {
                let _ = writeln!(out, "filtered (§4.5)");
                continue;
            }
            let _ = write!(out, "|Ω| = {}", step.omega);
            if step.expired > 0 {
                let _ = write!(out, ", {} expired", step.expired);
            }
            if step.emitted > 0 {
                let _ = write!(out, ", {} match(es) emitted", step.emitted);
            }
            let _ = writeln!(out);
            for (state, buffer) in &step.instances {
                if let Some(first) = follow {
                    let starts_with = buffer
                        .iter()
                        .last() // oldest binding
                        .is_some_and(|b| b.event == first);
                    if !starts_with {
                        continue;
                    }
                }
                let bindings: BTreeMap<EventId, String> = buffer
                    .iter()
                    .map(|b| (b.event, format!("{}/{}", pattern.var_name(b.var), b.event)))
                    .collect();
                let rendered: Vec<String> = bindings.into_values().collect();
                let _ = writeln!(
                    out,
                    "  qc = {:<8} β = {{{}}}",
                    automaton.state_label(*state),
                    rendered.join(", ")
                );
            }
        }
        let _ = writeln!(out, "total matches: {}", self.total_matches);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecOptions, Matcher};
    use ses_event::Timestamp;

    /// Figure 6: the patient-1 instance of the running example steps
    /// through {c} → {c,d} → {c,d,p} (e4), ignores e6, re-binds p at e9,
    /// and reaches the accepting state at e12.
    #[test]
    fn figure6_patient1_trace() {
        let relation = ses_figure1();
        let q1 = ses_q1();
        let matcher = Matcher::compile(&q1, relation.schema()).unwrap();
        let automaton = matcher.automaton();
        let trace = trace_execution(automaton, &relation, &ExecOptions::default());

        // Follow the instance started at e1 (the paper's Ñ).
        let follow = Some(ses_event::EventId(0));
        let find_state = |event_idx: usize| -> Vec<String> {
            trace.steps[event_idx]
                .instances
                .iter()
                .filter(|(_, b)| {
                    b.iter()
                        .last()
                        .is_some_and(|x| x.event == ses_event::EventId(0))
                })
                .map(|(s, _)| automaton.state_label(*s))
                .collect()
        };

        assert_eq!(find_state(0), vec!["c"]); // Fig. 6(b): read e1, match starts
        assert_eq!(find_state(1), vec!["c"]); // Fig. 6(c): e2 ignored
        assert_eq!(find_state(2), vec!["cd"]); // Fig. 6(d): e3 matched
        assert_eq!(find_state(3), vec!["cp+d"]); // Fig. 6(e): e4 matched
        assert_eq!(find_state(5), vec!["cp+d"]); // Fig. 6(f): e6 ignored
                                                 // Fig. 6(g): e9 loop extends the buffer.
        let e9_buffers: Vec<usize> = trace.steps[8]
            .instances
            .iter()
            .filter(|(_, b)| {
                b.iter()
                    .last()
                    .is_some_and(|x| x.event == ses_event::EventId(0))
            })
            .map(|(_, b)| b.len())
            .collect();
        assert_eq!(e9_buffers, vec![4]); // c, d, p, p
        assert_eq!(find_state(11), vec!["cp+db"]); // Fig. 6(h): accepting

        // The rendering mentions the accepting buffer of Figure 6(h).
        let rendered = trace.render(automaton, follow);
        assert!(
            rendered.contains("β = {c/e1, d/e3, p+/e4, p+/e9, b/e12}"),
            "{rendered}"
        );
        // The trace reports *raw* Algorithm-1 runs: the two Figure-1
        // answers plus the suffix run starting at e7 (Definition-2's
        // Maximal semantics later reduces them to 2).
        assert!(rendered.contains("total matches: 3"), "{rendered}");
    }

    #[test]
    fn filtered_steps_are_marked() {
        let relation = {
            let schema = ses_event::Schema::builder()
                .attr("L", ses_event::AttrType::Str)
                .build()
                .unwrap();
            let mut r = Relation::new(schema);
            for (t, l) in [(0, "A"), (1, "Z"), (2, "B")] {
                r.push_values(Timestamp::new(t), [ses_event::Value::from(l)])
                    .unwrap();
            }
            r
        };
        let p = ses_pattern::Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", ses_event::CmpOp::Eq, "A")
            .cond_const("b", "L", ses_event::CmpOp::Eq, "B")
            .within(ses_event::Duration::ticks(10))
            .build()
            .unwrap();
        let m = Matcher::compile(&p, relation.schema()).unwrap();
        let trace = trace_execution(m.automaton(), &relation, &ExecOptions::default());
        assert!(!trace.steps[0].filtered);
        assert!(trace.steps[1].filtered, "Z satisfies no constant condition");
        assert!(!trace.steps[2].filtered);
        let rendered = trace.render(m.automaton(), None);
        assert!(rendered.contains("filtered (§4.5)"), "{rendered}");
    }

    fn ses_figure1() -> Relation {
        // A local copy of Figure 1 (ses-core cannot depend on
        // ses-workload).
        let schema = ses_event::Schema::builder()
            .attr("ID", ses_event::AttrType::Int)
            .attr("L", ses_event::AttrType::Str)
            .build()
            .unwrap();
        let rows: [(i64, &str, i64); 14] = [
            (1, "C", 57),
            (1, "B", 58),
            (1, "D", 59),
            (1, "P", 81),
            (2, "B", 105),
            (2, "P", 106),
            (2, "D", 107),
            (2, "C", 129),
            (1, "P", 130),
            (2, "P", 131),
            (2, "P", 153),
            (1, "B", 273),
            (2, "B", 297),
            (2, "B", 321),
        ];
        let mut r = Relation::new(schema);
        for (id, l, t) in rows {
            r.push_values(
                Timestamp::new(t),
                [ses_event::Value::from(id), ses_event::Value::from(l)],
            )
            .unwrap();
        }
        r
    }

    fn ses_q1() -> ses_pattern::Pattern {
        ses_pattern::Pattern::builder()
            .set(|s| s.var("c").plus("p").var("d"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", ses_event::CmpOp::Eq, "C")
            .cond_const("d", "L", ses_event::CmpOp::Eq, "D")
            .cond_const("p", "L", ses_event::CmpOp::Eq, "P")
            .cond_const("b", "L", ses_event::CmpOp::Eq, "B")
            .cond_vars("c", "ID", ses_event::CmpOp::Eq, "p", "ID")
            .cond_vars("c", "ID", ses_event::CmpOp::Eq, "d", "ID")
            .cond_vars("d", "ID", ses_event::CmpOp::Eq, "b", "ID")
            .within(ses_event::Duration::hours(264))
            .build()
            .unwrap()
    }
}
