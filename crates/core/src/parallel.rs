//! Partition-parallel batch execution.
//!
//! When the pattern proves a partition key (see
//! [`ses_pattern::CompiledPattern::partition_keys`]), no match spans two
//! key values, so the relation splits into per-key zero-copy
//! [`ses_event::RelationView`]s matched independently and in parallel:
//!
//! 1. [`ses_event::partition_views`] builds one index vector per
//!    distinct key value — event payloads are never cloned;
//! 2. worker threads claim partitions largest-first off a shared atomic
//!    counter (greedy LPT scheduling, which bounds the makespan under
//!    key skew) and run the engine on each view;
//! 3. per-partition raw matches are remapped to global event ids and a
//!    **single** global [`select`] adjudicates the union, so the output
//!    is exactly the global scan's answer — adjudication verdicts only
//!    compare matches sharing a first binding and swap candidates that
//!    satisfy the key equality, both of which are partition-local.
//!
//! The speedup has two independent sources: thread parallelism, and the
//! per-event instance loop shrinking from `|Ω|` to the partition's own
//! instances (the paper's Theorems 2–3 make `|Ω|` the dominant cost), so
//! partitioned execution wins even on one core.
//!
//! # Time-sliced execution
//!
//! When the pattern proves *no* key, the window `τ` (Definition 2,
//! condition 3) still bounds every match's temporal extent, so the time
//! axis splits instead ([`find_time_sliced`]): consecutive own regions
//! of width `w ≥ τ` partition the timeline, each slice scans its own
//! region *plus* the following `τ` overlap, and a raw match is kept by
//! the unique slice whose own region contains its first event. The
//! merged raw set is exactly the global scan's (see `docs/parallel.md`
//! for the argument), and the same single global negation-filter +
//! [`select`] adjudicates it. Unlike key partitioning this re-scans the
//! overlaps, so it is the fallback axis, not the preferred one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ses_event::{partition_views, AttrId, EventId, Relation, RelationView};

use crate::engine::{execute, RawMatch};
use crate::matcher::Matcher;
use crate::matches::Match;
use crate::probe::{NoProbe, Probe};
use crate::semantics::select_with;

/// Matches `relation` per distinct value of `key`, in parallel, and
/// returns the adjudicated matches with bindings expressed in the
/// original relation's event ids — exactly [`Matcher::find`]'s answer
/// when `key` is a proven partition key.
///
/// Prefer configuring [`crate::PartitionMode`] on the matcher (which
/// checks the proof); this free function is the unchecked primitive.
pub fn find_partitioned(matcher: &Matcher, relation: &Relation, key: AttrId) -> Vec<Match> {
    find_partitioned_with(matcher, relation, key, None, &mut NoProbe, || NoProbe).0
}

/// [`find_partitioned`] with full instrumentation: `coordinator`
/// receives the aggregate hooks ([`Probe::partitions`],
/// [`Probe::partition_events`] per partition in first-occurrence order,
/// and `filter_mode`); `make_probe` builds one worker probe per
/// partition, returned in the same first-occurrence order for per-shard
/// statistics.
pub fn find_partitioned_with<C, P, F>(
    matcher: &Matcher,
    relation: &Relation,
    key: AttrId,
    threads: Option<usize>,
    coordinator: &mut C,
    make_probe: F,
) -> (Vec<Match>, Vec<P>)
where
    C: Probe,
    P: Probe + Send,
    F: Fn() -> P + Sync,
{
    let pattern = matcher.automaton().pattern();
    if !pattern.is_satisfiable() {
        return (Vec::new(), Vec::new());
    }
    let views = partition_views(relation, key);
    coordinator.partitions(views.len());
    for (_, view) in &views {
        coordinator.partition_events(view.ids().len());
    }

    // Largest partition first: with greedy worker claiming this is LPT
    // scheduling, whose makespan is within 4/3 of optimal — the right
    // bias under key skew, where one hot key dominates.
    let mut order: Vec<usize> = (0..views.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(views[i].1.ids().len()));

    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, views.len().max(1));

    let exec = matcher.exec_options();
    let automaton = matcher.automaton();
    let run_one = |idx: usize| -> (Vec<RawMatch>, P) {
        let (_, view) = &views[idx];
        let mut probe = make_probe();
        let mut raw = execute(automaton, view, &exec, &mut probe);
        // Remap view-local event ids to global ones. The id map is
        // ascending, so sorted bindings stay sorted.
        let ids = view.ids();
        for m in &mut raw {
            for b in &mut m.bindings {
                b.1 = ids[b.1.index()];
            }
        }
        (raw, probe)
    };

    let mut raw: Vec<RawMatch> = Vec::new();
    let mut probes: Vec<P> = Vec::with_capacity(views.len());
    for (r, p) in run_on_workers(views.len(), &order, workers, run_one) {
        raw.extend(r);
        probes.push(p);
    }
    // One *global* adjudication over the merged raw set: `select` orders
    // candidates internally, so the result is identical to the global
    // scan's regardless of partition emission order.
    let raw = crate::negation::filter_negations(raw, relation, pattern);
    let matches = select_with(
        raw,
        relation,
        pattern,
        matcher.options().semantics,
        matcher.options().adjudication,
    );
    (matches, probes)
}

/// Runs `run_one` for every index in `0..n` on up to `workers` scoped
/// threads — workers claim indices greedily off a shared counter in
/// `order` — and returns the results in index order.
fn run_on_workers<T: Send>(
    n: usize,
    order: &[usize],
    workers: usize,
    run_one: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    if workers <= 1 {
        for &idx in order {
            slots[idx] = Some(run_one(idx));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots_sink = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&idx) = order.get(i) else { break };
                    let result = run_one(idx);
                    slots_sink.lock().expect("no poisoned workers")[idx] = Some(result);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was executed"))
        .collect()
}

/// The time-slice layout [`find_time_sliced`] uses: consecutive *own
/// regions* of `width` ticks starting at `t0` partition the timeline
/// (the last region is unbounded), and each slice additionally scans the
/// `tau` ticks after its region so every match starting inside the
/// region is complete in the slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceLayout {
    /// First event's timestamp in ticks — the first own region's start.
    pub t0: i64,
    /// Own-region width in ticks, `max(⌈span/k⌉, τ, 1)`.
    pub width: i64,
    /// Number of slices, `⌈span/width⌉`.
    pub slices: usize,
    /// The window `τ` in ticks (the inter-slice overlap).
    pub tau: i64,
}

impl SliceLayout {
    /// Computes the layout for `relation` under the matcher's window,
    /// targeting `slices` slices (`None`: one per available core).
    /// `None` when the relation is empty — there is nothing to slice.
    pub fn plan(
        matcher: &Matcher,
        relation: &Relation,
        slices: Option<usize>,
    ) -> Option<SliceLayout> {
        let events = relation.events();
        let (first, last) = (events.first()?, events.last()?);
        let t0 = first.ts().ticks();
        let span = last.ts().ticks().saturating_sub(t0).saturating_add(1);
        let tau = matcher.automaton().tau().as_ticks();
        let k = slices
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        // Own regions no narrower than τ: the overlap then never exceeds
        // the region it extends (bounding duplicated work at 50%), and
        // τ ≥ span degenerates to a single slice — a plain global scan.
        // `1 + (a-1)/b` is ⌈a/b⌉ for a ≥ 1 without overflowing at
        // `span = i64::MAX` (a saturated subtraction above).
        let ceil_div = |a: i64, b: i64| 1 + (a - 1) / b;
        let width = ceil_div(span, k as i64).max(tau).max(1);
        Some(SliceLayout {
            t0,
            width,
            slices: ceil_div(span, width) as usize,
            tau,
        })
    }

    /// The slice whose own region contains `ts` — the slice that *keeps*
    /// a raw match first-bound at `ts`. Timestamps beyond the last
    /// region's start clamp to the last slice (its region is unbounded).
    pub fn owner(&self, ts: i64) -> usize {
        let offset = ts.saturating_sub(self.t0).max(0);
        ((offset / self.width) as usize).min(self.slices - 1)
    }

    /// The own region's start timestamp, in ticks.
    pub fn region_start(&self, slice: usize) -> i64 {
        self.t0
            .saturating_add(self.width.saturating_mul(slice as i64))
    }

    /// One past the last timestamp the slice scans: region end plus the
    /// `τ` overlap (`i64::MAX` for the last, unbounded slice).
    pub fn cover_end(&self, slice: usize) -> i64 {
        if slice + 1 == self.slices {
            i64::MAX
        } else {
            self.region_start(slice + 1).saturating_add(self.tau)
        }
    }
}

/// Matches `relation` split into `τ`-overlapping time slices run in
/// parallel, and returns the adjudicated matches — exactly
/// [`Matcher::find`]'s answer for *any* satisfiable pattern, keyed or
/// not: the window bounds every match to one slice's scan range, and
/// each match is kept exactly once, by the slice whose own region holds
/// its first event.
///
/// `slices` targets that many slices (`None`: one per available core);
/// the realized count can be lower — own regions are never narrower
/// than `τ`, so a relation spanning less than `2τ` runs as one slice.
///
/// Prefer configuring [`crate::PartitionMode::TimeAuto`] on the matcher
/// (which gates on `flush_at_end` and prefers a proven key); this free
/// function is the unchecked primitive. Like [`find_partitioned`] it
/// assumes `flush_at_end` semantics — without the end-of-input flush a
/// slice would need later slices' events to expire its instances.
pub fn find_time_sliced(
    matcher: &Matcher,
    relation: &Relation,
    slices: Option<usize>,
) -> Vec<Match> {
    find_time_sliced_with(matcher, relation, slices, &mut NoProbe, || NoProbe).0
}

/// [`find_time_sliced`] with full instrumentation: `coordinator`
/// receives the aggregate hooks ([`Probe::slices`] and
/// [`Probe::slice_events`] per slice in chronological order);
/// `make_probe` builds one worker probe per slice, returned in the same
/// chronological order for per-slice statistics.
pub fn find_time_sliced_with<C, P, F>(
    matcher: &Matcher,
    relation: &Relation,
    slices: Option<usize>,
    coordinator: &mut C,
    make_probe: F,
) -> (Vec<Match>, Vec<P>)
where
    C: Probe,
    P: Probe + Send,
    F: Fn() -> P + Sync,
{
    let pattern = matcher.automaton().pattern();
    if !pattern.is_satisfiable() {
        return (Vec::new(), Vec::new());
    }
    let Some(layout) = SliceLayout::plan(matcher, relation, slices) else {
        coordinator.slices(0);
        return (Vec::new(), Vec::new());
    };
    let events = relation.events();
    let base = relation.first_index();
    coordinator.slices(layout.slices);
    // Per-slice event index ranges over the retained events. A slice
    // scans [region_start, cover_end): its own region plus the τ
    // overlap, so every match first-bound in the region is complete.
    let ranges: Vec<(usize, usize)> = (0..layout.slices)
        .map(|i| {
            let start = events.partition_point(|e| e.ts().ticks() < layout.region_start(i));
            let end = if i + 1 == layout.slices {
                events.len()
            } else {
                events.partition_point(|e| e.ts().ticks() < layout.cover_end(i))
            };
            coordinator.slice_events(end - start);
            (start, end)
        })
        .collect();

    // Largest slice first, as in `find_partitioned_with` — slices are
    // equal-width in *time* but can be arbitrarily skewed in events.
    let mut order: Vec<usize> = (0..layout.slices).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(ranges[i].1 - ranges[i].0));

    let workers = slices
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, layout.slices);

    let exec = matcher.exec_options();
    let automaton = matcher.automaton();
    let run_one = |idx: usize| -> (Vec<RawMatch>, P) {
        let (start, end) = ranges[idx];
        let ids: Vec<EventId> = (base + start..base + end).map(EventId::from).collect();
        let view = RelationView::new(relation, ids);
        let mut probe = make_probe();
        let mut raw = execute(automaton, &view, &exec, &mut probe);
        let ids = view.ids();
        for m in &mut raw {
            for b in &mut m.bindings {
                b.1 = ids[b.1.index()];
            }
        }
        // Seam dedup: keep only the matches this slice *owns* — first
        // event inside the own region. Matches first-bound in the τ
        // overlap are rediscovered (identically: instance evolution
        // depends only on events within the window after the first
        // binding, all present in the owner's scan range) by the next
        // slice, which owns them.
        raw.retain(|m| layout.owner(relation.event(m.first_event()).ts().ticks()) == idx);
        (raw, probe)
    };

    let mut raw: Vec<RawMatch> = Vec::new();
    let mut probes: Vec<P> = Vec::with_capacity(layout.slices);
    for (r, p) in run_on_workers(layout.slices, &order, workers, run_one) {
        raw.extend(r);
        probes.push(p);
    }
    // Identical to `find_partitioned_with`: one global adjudication over
    // the merged raw set, with negations checked against the *full*
    // relation — which is why negated patterns are admissible here.
    let raw = crate::negation::filter_negations(raw, relation, pattern);
    let matches = select_with(
        raw,
        relation,
        pattern,
        matcher.options().semantics,
        matcher.options().adjudication,
    );
    (matches, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{MatcherOptions, PartitionMode};
    use crate::semantics::MatchSemantics;
    use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn keyed_pattern() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .set(|s| s.var("c"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .cond_vars("a", "ID", CmpOp::Eq, "c", "ID")
            .within(Duration::ticks(12))
            .build()
            .unwrap()
    }

    /// Five keys, events interleaved so every partition's runs overlap
    /// in time with every other's.
    fn relation() -> Relation {
        let mut rel = Relation::new(schema());
        let labels = ["A", "B", "A", "C", "B", "C"];
        for (step, label) in labels.iter().enumerate() {
            for key in 0..5i64 {
                rel.push_values(
                    Timestamp::new(step as i64 * 5 + key),
                    [Value::from(key), Value::from(*label)],
                )
                .unwrap();
            }
        }
        rel
    }

    #[test]
    fn partitioned_equals_global_across_semantics_and_threads() {
        let rel = relation();
        let key = schema().attr_id("ID").unwrap();
        for semantics in [
            MatchSemantics::AllRuns,
            MatchSemantics::Definition2,
            MatchSemantics::Maximal,
        ] {
            let matcher = Matcher::with_options(
                &keyed_pattern(),
                &schema(),
                MatcherOptions {
                    semantics,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            let global = matcher.find(&rel);
            assert!(!global.is_empty(), "workload should match ({semantics:?})");
            for threads in [None, Some(1), Some(2), Some(64)] {
                let (got, probes) =
                    find_partitioned_with(&matcher, &rel, key, threads, &mut NoProbe, || NoProbe);
                assert_eq!(got, global, "{semantics:?} threads={threads:?}");
                assert_eq!(probes.len(), 5);
            }
        }
    }

    #[test]
    fn coordinator_sees_partition_layout() {
        #[derive(Default)]
        struct Layout {
            partitions: usize,
            events: Vec<usize>,
        }
        impl Probe for Layout {
            fn partitions(&mut self, n: usize) {
                self.partitions = n;
            }
            fn partition_events(&mut self, n: usize) {
                self.events.push(n);
            }
        }
        let matcher = Matcher::compile(&keyed_pattern(), &schema()).unwrap();
        let key = schema().attr_id("ID").unwrap();
        let mut layout = Layout::default();
        find_partitioned_with(&matcher, &relation(), key, Some(1), &mut layout, || NoProbe);
        assert_eq!(layout.partitions, 5);
        assert_eq!(layout.events, vec![6; 5]);
    }

    #[test]
    fn matcher_auto_mode_routes_find_through_partitions() {
        let auto = Matcher::with_options(
            &keyed_pattern(),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::Auto,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(auto.partition_key(), schema().attr_id("ID"));
        let off = Matcher::compile(&keyed_pattern(), &schema()).unwrap();
        assert_eq!(off.partition_key(), None);
        let rel = relation();
        assert_eq!(auto.find(&rel), off.find(&rel));
    }

    #[test]
    fn empty_relation_partitions_to_nothing() {
        let matcher = Matcher::compile(&keyed_pattern(), &schema()).unwrap();
        let key = schema().attr_id("ID").unwrap();
        assert!(find_partitioned(&matcher, &Relation::new(schema()), key).is_empty());
    }

    /// ⟨{a};{b}⟩ with constants only — no equality chain, so nothing
    /// proves a key and time slicing is the only parallel axis.
    fn keyless_pattern(tau: i64) -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(tau))
            .build()
            .unwrap()
    }

    fn rel(rows: &[(i64, &str)]) -> Relation {
        let mut r = Relation::new(schema());
        for (i, (ts, l)) in rows.iter().enumerate() {
            r.push_values(
                Timestamp::new(*ts),
                [Value::from(i as i64), Value::from(*l)],
            )
            .unwrap();
        }
        r
    }

    fn assert_sliced_equals_global(pattern: &Pattern, rel: &Relation, slices: &[Option<usize>]) {
        for semantics in [
            MatchSemantics::AllRuns,
            MatchSemantics::Definition2,
            MatchSemantics::Maximal,
        ] {
            let matcher = Matcher::with_options(
                pattern,
                &schema(),
                MatcherOptions {
                    semantics,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            let global = matcher.find(rel);
            for &k in slices {
                let got = find_time_sliced(&matcher, rel, k);
                assert_eq!(got, global, "{semantics:?} slices={k:?}");
            }
        }
    }

    #[test]
    fn match_exactly_spanning_a_slice_boundary() {
        // span = [0, 9], τ = 5, 2 slices → width 5, own regions [0,5)
        // and [5,∞). The a@4/b@9 pair is exactly τ apart and straddles
        // the seam; slice 0's τ-overlap must reach b@9 inclusively.
        let r = rel(&[(0, "X"), (4, "A"), (9, "B")]);
        let matcher = Matcher::compile(&keyless_pattern(5), &schema()).unwrap();
        let layout = SliceLayout::plan(&matcher, &r, Some(2)).unwrap();
        assert_eq!((layout.width, layout.slices), (5, 2));
        assert_eq!(layout.owner(4), 0);
        assert_eq!(layout.owner(5), 1);
        let global = matcher.find(&r);
        assert_eq!(global.len(), 1);
        assert_eq!(global[0].to_string(), "{v0/e2, v1/e3}");
        assert_sliced_equals_global(&keyless_pattern(5), &r, &[Some(2), Some(3), None]);
    }

    #[test]
    fn tau_wider_than_slice_width_degenerates_to_one_slice() {
        // τ ≥ span: every requested slice count collapses to a single
        // slice (own regions are never narrower than τ).
        let r = rel(&[(0, "A"), (3, "B"), (9, "B")]);
        let matcher = Matcher::compile(&keyless_pattern(20), &schema()).unwrap();
        for k in [1, 2, 4, 64] {
            let layout = SliceLayout::plan(&matcher, &r, Some(k)).unwrap();
            assert_eq!(layout.slices, 1, "slices={k}");
            assert_eq!(layout.width, 20);
        }
        assert_sliced_equals_global(&keyless_pattern(20), &r, &[Some(4)]);
    }

    #[test]
    fn empty_slices_between_event_clusters() {
        // Two clusters 100 ticks apart with τ = 2: the middle slices
        // hold no events at all and must be harmless.
        let rows: Vec<(i64, &str)> = vec![
            (0, "A"),
            (1, "B"),
            (2, "A"),
            (100, "A"),
            (101, "B"),
            (102, "B"),
        ];
        let r = rel(&rows);
        let matcher = Matcher::compile(&keyless_pattern(2), &schema()).unwrap();
        let layout = SliceLayout::plan(&matcher, &r, Some(8)).unwrap();
        assert!(layout.slices > 2, "want middle slices: {layout:?}");
        #[derive(Default)]
        struct Layout {
            slices: usize,
            events: Vec<usize>,
        }
        impl Probe for Layout {
            fn slices(&mut self, n: usize) {
                self.slices = n;
            }
            fn slice_events(&mut self, n: usize) {
                self.events.push(n);
            }
        }
        let mut seen = Layout::default();
        let (got, probes) = find_time_sliced_with(&matcher, &r, Some(8), &mut seen, || NoProbe);
        assert_eq!(seen.slices, layout.slices);
        assert_eq!(seen.events.len(), layout.slices);
        assert!(seen.events.contains(&0), "no empty slice seen");
        assert_eq!(probes.len(), layout.slices);
        assert_eq!(got, matcher.find(&r));
        assert_sliced_equals_global(&keyless_pattern(2), &r, &[Some(8)]);
    }

    #[test]
    fn duplicate_timestamps_at_the_seam() {
        // Several events share the boundary timestamp: ownership is a
        // pure function of the timestamp, so all of them (and every
        // match first-bound there) belong to the later slice.
        let r = rel(&[
            (0, "A"),
            (4, "A"),
            (5, "A"),
            (5, "B"),
            (5, "A"),
            (6, "B"),
            (9, "B"),
        ]);
        let matcher = Matcher::compile(&keyless_pattern(5), &schema()).unwrap();
        let layout = SliceLayout::plan(&matcher, &r, Some(2)).unwrap();
        assert_eq!((layout.width, layout.slices), (5, 2));
        assert_eq!(layout.owner(5), 1);
        assert_sliced_equals_global(&keyless_pattern(5), &r, &[Some(2)]);
    }

    #[test]
    fn group_bindings_crossing_the_seam() {
        // ⟨{p+};{b}⟩: a group run starting at p@3 (slice 0) absorbs
        // p@5/p@6 (slice 1's region) before b@7 — the whole match is
        // owned by slice 0 and must bind across the seam.
        let p = Pattern::builder()
            .set(|s| s.plus("p"))
            .set(|s| s.var("b"))
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let r = rel(&[(0, "X"), (3, "P"), (5, "P"), (6, "P"), (7, "B"), (9, "X")]);
        let matcher = Matcher::compile(&p, &schema()).unwrap();
        let layout = SliceLayout::plan(&matcher, &r, Some(2)).unwrap();
        assert_eq!(layout.slices, 2);
        let global = matcher.find(&r);
        assert!(
            global.iter().any(|m| m.bindings().len() == 4),
            "want a maximal group crossing the seam: {global:?}"
        );
        for semantics in [
            MatchSemantics::AllRuns,
            MatchSemantics::Definition2,
            MatchSemantics::Maximal,
        ] {
            let matcher = Matcher::with_options(
                &p,
                &schema(),
                MatcherOptions {
                    semantics,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                find_time_sliced(&matcher, &r, Some(2)),
                matcher.find(&r),
                "{semantics:?}"
            );
        }
    }

    #[test]
    fn negated_pattern_is_admissible_for_time_slicing() {
        // Negations rule out *key* partitioning entirely, but time
        // slicing filters negations globally over the merged raw set —
        // an X in the a–b gap kills the match even across a seam.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("x")
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .neg_cond_const("x", "L", CmpOp::Eq, "X")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        // a@4 … b@9 straddles the seam with the killer X@5 in between;
        // a@11 … b@13 survives.
        let r = rel(&[(0, "B"), (4, "A"), (5, "X"), (9, "B"), (11, "A"), (13, "B")]);
        let matcher = Matcher::compile(&p, &schema()).unwrap();
        assert!(matcher.automaton().pattern().partition_keys().is_empty());
        let global = matcher.find(&r);
        assert_eq!(global.len(), 1, "{global:?}");
        for k in [Some(2), Some(3), Some(7)] {
            assert_eq!(find_time_sliced(&matcher, &r, k), global, "slices={k:?}");
        }
    }

    #[test]
    fn slice_layout_owner_covers_the_timeline() {
        let layout = SliceLayout {
            t0: 10,
            width: 5,
            slices: 3,
            tau: 3,
        };
        assert_eq!(layout.owner(10), 0);
        assert_eq!(layout.owner(14), 0);
        assert_eq!(layout.owner(15), 1);
        assert_eq!(layout.owner(24), 2);
        // The last own region is unbounded.
        assert_eq!(layout.owner(1000), 2);
        assert_eq!(layout.owner(i64::MAX), 2);
        assert_eq!(layout.region_start(1), 15);
        assert_eq!(layout.cover_end(0), 18);
        assert_eq!(layout.cover_end(2), i64::MAX);
    }

    #[test]
    fn empty_relation_slices_to_nothing() {
        let matcher = Matcher::compile(&keyless_pattern(5), &schema()).unwrap();
        let empty = Relation::new(schema());
        assert!(SliceLayout::plan(&matcher, &empty, Some(4)).is_none());
        assert!(find_time_sliced(&matcher, &empty, Some(4)).is_empty());
    }

    #[test]
    fn matcher_time_auto_routes_find_through_slices() {
        // TimeAuto on a keyless pattern resolves to TimeSliced and
        // `find` agrees with the global scan.
        use crate::matcher::PartitionStrategy;
        let r = rel(&[(0, "A"), (4, "B"), (5, "A"), (9, "B"), (14, "B")]);
        let auto = Matcher::with_options(
            &keyless_pattern(5),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::TimeAuto,
                threads: Some(3),
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(auto.partition_strategy(), PartitionStrategy::TimeSliced);
        assert_eq!(auto.partition_key(), None);
        let off = Matcher::compile(&keyless_pattern(5), &schema()).unwrap();
        assert_eq!(auto.find(&r), off.find(&r));

        // With a provable key, TimeAuto prefers key partitioning.
        let keyed = Matcher::with_options(
            &keyed_pattern(),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::TimeAuto,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            keyed.partition_strategy(),
            PartitionStrategy::Key(schema().attr_id("ID").unwrap())
        );

        // Without flush_at_end, TimeAuto silently falls back to global.
        let noflush = Matcher::with_options(
            &keyless_pattern(5),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::TimeAuto,
                flush_at_end: false,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(noflush.partition_strategy(), PartitionStrategy::Global);
    }
}
