//! Partition-parallel batch execution.
//!
//! When the pattern proves a partition key (see
//! [`ses_pattern::CompiledPattern::partition_keys`]), no match spans two
//! key values, so the relation splits into per-key zero-copy
//! [`ses_event::RelationView`]s matched independently and in parallel:
//!
//! 1. [`ses_event::partition_views`] builds one index vector per
//!    distinct key value — event payloads are never cloned;
//! 2. worker threads claim partitions largest-first off a shared atomic
//!    counter (greedy LPT scheduling, which bounds the makespan under
//!    key skew) and run the engine on each view;
//! 3. per-partition raw matches are remapped to global event ids and a
//!    **single** global [`select`] adjudicates the union, so the output
//!    is exactly the global scan's answer — adjudication verdicts only
//!    compare matches sharing a first binding and swap candidates that
//!    satisfy the key equality, both of which are partition-local.
//!
//! The speedup has two independent sources: thread parallelism, and the
//! per-event instance loop shrinking from `|Ω|` to the partition's own
//! instances (the paper's Theorems 2–3 make `|Ω|` the dominant cost), so
//! partitioned execution wins even on one core.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ses_event::{partition_views, AttrId, Relation};

use crate::engine::{execute, RawMatch};
use crate::matcher::Matcher;
use crate::matches::Match;
use crate::probe::{NoProbe, Probe};
use crate::semantics::select;

/// Matches `relation` per distinct value of `key`, in parallel, and
/// returns the adjudicated matches with bindings expressed in the
/// original relation's event ids — exactly [`Matcher::find`]'s answer
/// when `key` is a proven partition key.
///
/// Prefer configuring [`crate::PartitionMode`] on the matcher (which
/// checks the proof); this free function is the unchecked primitive.
pub fn find_partitioned(matcher: &Matcher, relation: &Relation, key: AttrId) -> Vec<Match> {
    find_partitioned_with(matcher, relation, key, None, &mut NoProbe, || NoProbe).0
}

/// [`find_partitioned`] with full instrumentation: `coordinator`
/// receives the aggregate hooks ([`Probe::partitions`],
/// [`Probe::partition_events`] per partition in first-occurrence order,
/// and `filter_mode`); `make_probe` builds one worker probe per
/// partition, returned in the same first-occurrence order for per-shard
/// statistics.
pub fn find_partitioned_with<C, P, F>(
    matcher: &Matcher,
    relation: &Relation,
    key: AttrId,
    threads: Option<usize>,
    coordinator: &mut C,
    make_probe: F,
) -> (Vec<Match>, Vec<P>)
where
    C: Probe,
    P: Probe + Send,
    F: Fn() -> P + Sync,
{
    let pattern = matcher.automaton().pattern();
    if !pattern.is_satisfiable() {
        return (Vec::new(), Vec::new());
    }
    let views = partition_views(relation, key);
    coordinator.partitions(views.len());
    for (_, view) in &views {
        coordinator.partition_events(view.ids().len());
    }

    // Largest partition first: with greedy worker claiming this is LPT
    // scheduling, whose makespan is within 4/3 of optimal — the right
    // bias under key skew, where one hot key dominates.
    let mut order: Vec<usize> = (0..views.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(views[i].1.ids().len()));

    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, views.len().max(1));

    let exec = matcher.exec_options();
    let automaton = matcher.automaton();
    let run_one = |idx: usize| -> (Vec<RawMatch>, P) {
        let (_, view) = &views[idx];
        let mut probe = make_probe();
        let mut raw = execute(automaton, view, &exec, &mut probe);
        // Remap view-local event ids to global ones. The id map is
        // ascending, so sorted bindings stay sorted.
        let ids = view.ids();
        for m in &mut raw {
            for b in &mut m.bindings {
                b.1 = ids[b.1.index()];
            }
        }
        (raw, probe)
    };

    let mut slots: Vec<Option<(Vec<RawMatch>, P)>> = Vec::new();
    slots.resize_with(views.len(), || None);
    if workers <= 1 {
        for &idx in &order {
            slots[idx] = Some(run_one(idx));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots_sink = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&idx) = order.get(i) else { break };
                    let result = run_one(idx);
                    slots_sink.lock().expect("no poisoned workers")[idx] = Some(result);
                });
            }
        });
    }

    let mut raw: Vec<RawMatch> = Vec::new();
    let mut probes: Vec<P> = Vec::with_capacity(views.len());
    for slot in slots {
        let (r, p) = slot.expect("every partition was executed");
        raw.extend(r);
        probes.push(p);
    }
    // One *global* adjudication over the merged raw set: `select` orders
    // candidates internally, so the result is identical to the global
    // scan's regardless of partition emission order.
    let raw = crate::negation::filter_negations(raw, relation, pattern);
    let matches = select(raw, relation, pattern, matcher.options().semantics);
    (matches, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{MatcherOptions, PartitionMode};
    use crate::semantics::MatchSemantics;
    use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
    use ses_pattern::Pattern;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn keyed_pattern() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .set(|s| s.var("c"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .cond_vars("a", "ID", CmpOp::Eq, "c", "ID")
            .within(Duration::ticks(12))
            .build()
            .unwrap()
    }

    /// Five keys, events interleaved so every partition's runs overlap
    /// in time with every other's.
    fn relation() -> Relation {
        let mut rel = Relation::new(schema());
        let labels = ["A", "B", "A", "C", "B", "C"];
        for (step, label) in labels.iter().enumerate() {
            for key in 0..5i64 {
                rel.push_values(
                    Timestamp::new(step as i64 * 5 + key),
                    [Value::from(key), Value::from(*label)],
                )
                .unwrap();
            }
        }
        rel
    }

    #[test]
    fn partitioned_equals_global_across_semantics_and_threads() {
        let rel = relation();
        let key = schema().attr_id("ID").unwrap();
        for semantics in [
            MatchSemantics::AllRuns,
            MatchSemantics::Definition2,
            MatchSemantics::Maximal,
        ] {
            let matcher = Matcher::with_options(
                &keyed_pattern(),
                &schema(),
                MatcherOptions {
                    semantics,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            let global = matcher.find(&rel);
            assert!(!global.is_empty(), "workload should match ({semantics:?})");
            for threads in [None, Some(1), Some(2), Some(64)] {
                let (got, probes) =
                    find_partitioned_with(&matcher, &rel, key, threads, &mut NoProbe, || NoProbe);
                assert_eq!(got, global, "{semantics:?} threads={threads:?}");
                assert_eq!(probes.len(), 5);
            }
        }
    }

    #[test]
    fn coordinator_sees_partition_layout() {
        #[derive(Default)]
        struct Layout {
            partitions: usize,
            events: Vec<usize>,
        }
        impl Probe for Layout {
            fn partitions(&mut self, n: usize) {
                self.partitions = n;
            }
            fn partition_events(&mut self, n: usize) {
                self.events.push(n);
            }
        }
        let matcher = Matcher::compile(&keyed_pattern(), &schema()).unwrap();
        let key = schema().attr_id("ID").unwrap();
        let mut layout = Layout::default();
        find_partitioned_with(&matcher, &relation(), key, Some(1), &mut layout, || NoProbe);
        assert_eq!(layout.partitions, 5);
        assert_eq!(layout.events, vec![6; 5]);
    }

    #[test]
    fn matcher_auto_mode_routes_find_through_partitions() {
        let auto = Matcher::with_options(
            &keyed_pattern(),
            &schema(),
            MatcherOptions {
                partition: PartitionMode::Auto,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(auto.partition_key(), schema().attr_id("ID"));
        let off = Matcher::compile(&keyed_pattern(), &schema()).unwrap();
        assert_eq!(off.partition_key(), None);
        let rel = relation();
        assert_eq!(auto.find(&rel), off.find(&rel));
    }

    #[test]
    fn empty_relation_partitions_to_nothing() {
        let matcher = Matcher::compile(&keyed_pattern(), &schema()).unwrap();
        let key = schema().attr_id("ID").unwrap();
        assert!(find_partitioned(&matcher, &Relation::new(schema()), key).is_empty());
    }
}
