//! Aggregation measures over matches.
//!
//! A match binds concrete events; downstream analyses usually want
//! numbers derived from them — "total Prednisone dose", "number of
//! administrations", "worst toxicity grade". [`aggregate`] evaluates such
//! measures over the events one variable bound (a singleton yields one
//! event, a group variable one or more).

use ses_event::{AttrId, Relation, Value};
use ses_pattern::VarId;

use crate::matches::Match;

/// An aggregation function over the events bound to one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of bound events.
    Count,
    /// Sum of a numeric attribute.
    Sum,
    /// Arithmetic mean of a numeric attribute.
    Avg,
    /// Minimum attribute value (any comparable type).
    Min,
    /// Maximum attribute value (any comparable type).
    Max,
    /// Attribute value of the chronologically first binding.
    First,
    /// Attribute value of the chronologically last binding.
    Last,
}

/// Evaluates `agg` over `attr` of the events `m` binds to `var`.
///
/// Returns `None` when the variable has no bindings, or when a numeric
/// aggregate meets a non-numeric value.
pub fn aggregate(
    m: &Match,
    var: VarId,
    attr: AttrId,
    agg: Aggregate,
    relation: &Relation,
) -> Option<Value> {
    let values: Vec<&Value> = m
        .events_of(var)
        .map(|e| relation.event(e).value(attr))
        .collect();
    if values.is_empty() {
        return None;
    }
    match agg {
        Aggregate::Count => Some(Value::Int(values.len() as i64)),
        Aggregate::First => Some(values[0].clone()),
        Aggregate::Last => Some(values[values.len() - 1].clone()),
        Aggregate::Min => {
            let mut best = values[0];
            for v in &values[1..] {
                if v.try_cmp(best)? == std::cmp::Ordering::Less {
                    best = v;
                }
            }
            Some(best.clone())
        }
        Aggregate::Max => {
            let mut best = values[0];
            for v in &values[1..] {
                if v.try_cmp(best)? == std::cmp::Ordering::Greater {
                    best = v;
                }
            }
            Some(best.clone())
        }
        Aggregate::Sum | Aggregate::Avg => {
            let mut sum = 0.0f64;
            let mut all_int = true;
            for v in &values {
                match v {
                    Value::Int(i) => sum += *i as f64,
                    Value::Float(f) => {
                        all_int = false;
                        sum += f;
                    }
                    _ => return None,
                }
            }
            if agg == Aggregate::Avg {
                Some(Value::Float(sum / values.len() as f64))
            } else if all_int {
                Some(Value::Int(sum as i64))
            } else {
                Some(Value::Float(sum))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, EventId, Schema, Timestamp};

    fn setup() -> (Relation, Match) {
        let schema = Schema::builder()
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .attr("N", AttrType::Int)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for (t, l, v, n) in [
            (0, "P", 100.0, 1i64),
            (1, "P", 110.0, 2),
            (2, "P", 90.0, 3),
            (3, "B", 1.0, 4),
        ] {
            rel.push_values(
                Timestamp::new(t),
                [Value::from(l), Value::from(v), Value::from(n)],
            )
            .unwrap();
        }
        // p+ bound to e1..e3, b to e4.
        let m = Match::from_bindings(vec![
            (VarId(0), EventId(0)),
            (VarId(0), EventId(1)),
            (VarId(0), EventId(2)),
            (VarId(1), EventId(3)),
        ]);
        (rel, m)
    }

    #[test]
    fn numeric_aggregates() {
        let (rel, m) = setup();
        let v = AttrId(1);
        assert_eq!(
            aggregate(&m, VarId(0), v, Aggregate::Count, &rel),
            Some(Value::Int(3))
        );
        assert_eq!(
            aggregate(&m, VarId(0), v, Aggregate::Sum, &rel),
            Some(Value::Float(300.0))
        );
        assert_eq!(
            aggregate(&m, VarId(0), v, Aggregate::Avg, &rel),
            Some(Value::Float(100.0))
        );
        assert_eq!(
            aggregate(&m, VarId(0), v, Aggregate::Min, &rel),
            Some(Value::Float(90.0))
        );
        assert_eq!(
            aggregate(&m, VarId(0), v, Aggregate::Max, &rel),
            Some(Value::Float(110.0))
        );
    }

    #[test]
    fn int_sum_stays_int() {
        let (rel, m) = setup();
        let n = AttrId(2);
        assert_eq!(
            aggregate(&m, VarId(0), n, Aggregate::Sum, &rel),
            Some(Value::Int(6))
        );
        assert_eq!(
            aggregate(&m, VarId(0), n, Aggregate::Avg, &rel),
            Some(Value::Float(2.0))
        );
    }

    #[test]
    fn first_last_follow_chronology() {
        let (rel, m) = setup();
        let v = AttrId(1);
        assert_eq!(
            aggregate(&m, VarId(0), v, Aggregate::First, &rel),
            Some(Value::Float(100.0))
        );
        assert_eq!(
            aggregate(&m, VarId(0), v, Aggregate::Last, &rel),
            Some(Value::Float(90.0))
        );
    }

    #[test]
    fn string_min_max_but_not_sum() {
        let (rel, m) = setup();
        let l = AttrId(0);
        assert_eq!(
            aggregate(&m, VarId(0), l, Aggregate::Max, &rel),
            Some(Value::from("P"))
        );
        assert_eq!(aggregate(&m, VarId(0), l, Aggregate::Sum, &rel), None);
        assert_eq!(aggregate(&m, VarId(0), l, Aggregate::Avg, &rel), None);
    }

    #[test]
    fn unbound_variable_yields_none() {
        let (rel, m) = setup();
        assert_eq!(
            aggregate(&m, VarId(9), AttrId(1), Aggregate::Count, &rel),
            None
        );
    }

    #[test]
    fn singleton_variable() {
        let (rel, m) = setup();
        assert_eq!(
            aggregate(&m, VarId(1), AttrId(1), Aggregate::Count, &rel),
            Some(Value::Int(1))
        );
        assert_eq!(
            aggregate(&m, VarId(1), AttrId(1), Aggregate::Sum, &rel),
            Some(Value::Float(1.0))
        );
    }
}
