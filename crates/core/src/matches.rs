//! Matching substitutions as returned to the user.

use std::fmt;

use ses_event::{Duration, EventId, Relation};
use ses_pattern::{Pattern, VarId};

use crate::engine::RawMatch;

/// A matching substitution `γ = {v1/e1, …, vn/en}` (Definition 2).
///
/// Bindings are kept in canonical `(event, var)` order: chronological by
/// event, ties broken by variable id.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Match {
    bindings: Vec<(VarId, EventId)>,
}

impl Match {
    pub(crate) fn from_raw(raw: RawMatch) -> Match {
        Match {
            bindings: raw.bindings,
        }
    }

    /// Creates a match directly from bindings (used by the baseline crate
    /// and tests); sorts into canonical order.
    pub fn from_bindings(mut bindings: Vec<(VarId, EventId)>) -> Match {
        bindings.sort_unstable_by_key(|&(var, ev)| (ev, var));
        Match { bindings }
    }

    /// The bindings in canonical order.
    pub fn bindings(&self) -> &[(VarId, EventId)] {
        &self.bindings
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// `true` iff the match has no bindings (never produced by the
    /// engine — patterns have at least one variable).
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// The bound events, in chronological order.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.bindings.iter().map(|&(_, e)| e)
    }

    /// The events bound to `var`, in chronological order.
    pub fn events_of(&self, var: VarId) -> impl Iterator<Item = EventId> + '_ {
        self.bindings
            .iter()
            .filter(move |&&(v, _)| v == var)
            .map(|&(_, e)| e)
    }

    /// The chronologically first bound event.
    pub fn first_event(&self) -> EventId {
        self.bindings[0].1
    }

    /// The chronologically last bound event.
    pub fn last_event(&self) -> EventId {
        self.bindings[self.bindings.len() - 1].1
    }

    /// `true` iff the match contains the binding `var/event`.
    pub fn contains(&self, var: VarId, event: EventId) -> bool {
        self.bindings.binary_search(&(var, event)).is_ok()
            || self.bindings.iter().any(|&(v, e)| v == var && e == event)
    }

    /// `true` iff `self ⊊ other` as binding sets.
    pub fn is_proper_subset_of(&self, other: &Match) -> bool {
        self.bindings.len() < other.bindings.len()
            && self.bindings.iter().all(|b| other.bindings.contains(b))
    }

    /// The time spanned by the match's first and last events.
    pub fn span(&self, relation: &Relation) -> Duration {
        relation
            .event(self.last_event())
            .ts()
            .distance(relation.event(self.first_event()).ts())
    }

    /// Renders the match with the pattern's variable names, e.g.
    /// `{c/e1, d/e3, p+/e4, p+/e9, b/e12}`.
    pub fn display_with(&self, pattern: &Pattern) -> String {
        let mut s = String::from("{");
        for (i, (v, e)) in self.bindings.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&pattern.var_name(*v));
            s.push('/');
            s.push_str(&e.to_string());
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, e)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}/{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(bindings: &[(u16, u32)]) -> Match {
        Match::from_bindings(
            bindings
                .iter()
                .map(|&(v, e)| (VarId(v), EventId(e)))
                .collect(),
        )
    }

    #[test]
    fn canonical_order() {
        let x = m(&[(1, 5), (0, 2), (2, 5)]);
        assert_eq!(
            x.bindings(),
            &[
                (VarId(0), EventId(2)),
                (VarId(1), EventId(5)),
                (VarId(2), EventId(5))
            ]
        );
        assert_eq!(x.first_event(), EventId(2));
        assert_eq!(x.last_event(), EventId(5));
        assert_eq!(x.len(), 3);
    }

    #[test]
    fn events_of_filters_by_var() {
        let x = m(&[(1, 3), (1, 8), (0, 0)]);
        let es: Vec<_> = x.events_of(VarId(1)).map(|e| e.0).collect();
        assert_eq!(es, vec![3, 8]);
        assert!(x.contains(VarId(1), EventId(8)));
        assert!(!x.contains(VarId(1), EventId(0)));
    }

    #[test]
    fn proper_subset() {
        let small = m(&[(0, 1), (1, 2)]);
        let big = m(&[(0, 1), (1, 2), (1, 3)]);
        assert!(small.is_proper_subset_of(&big));
        assert!(!big.is_proper_subset_of(&small));
        assert!(!small.is_proper_subset_of(&small));
        let other = m(&[(0, 1), (1, 4)]);
        assert!(!other.is_proper_subset_of(&big));
    }

    #[test]
    fn display_shapes() {
        let x = m(&[(0, 0), (1, 2)]);
        assert_eq!(x.to_string(), "{v0/e1, v1/e3}");
    }
}
