//! Errors of the event model.

use std::fmt;

use crate::AttrType;

/// Errors raised while constructing schemas, events, or relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventError {
    /// A schema declared two attributes with the same name.
    DuplicateAttr(String),
    /// A schema declared an attribute with an empty name.
    EmptyAttrName,
    /// A schema declared an attribute named `T`, which is reserved for the
    /// temporal attribute.
    ReservedAttrName,
    /// More attributes than the dense `u16` attribute ids can address.
    TooManyAttrs(usize),
    /// A row's value count does not match the schema.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value's type does not match its attribute declaration.
    TypeMismatch {
        /// The offending attribute.
        attr: String,
        /// Declared type.
        expected: AttrType,
        /// Supplied type.
        got: AttrType,
    },
    /// A float value was `NaN`, which has no place in a totally comparable
    /// value domain.
    NanValue {
        /// The offending attribute.
        attr: String,
    },
    /// Events were appended out of timestamp order to an ordered relation
    /// builder that forbids it.
    OutOfOrder {
        /// Timestamp of the previously appended event.
        previous: i64,
        /// Timestamp of the offending event.
        got: i64,
    },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::DuplicateAttr(n) => write!(f, "duplicate attribute name `{n}`"),
            EventError::EmptyAttrName => write!(f, "attribute names must be non-empty"),
            EventError::ReservedAttrName => {
                write!(f, "`T` is reserved for the temporal attribute")
            }
            EventError::TooManyAttrs(n) => write!(f, "too many attributes ({n} > 65535)"),
            EventError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} attributes")
            }
            EventError::TypeMismatch {
                attr,
                expected,
                got,
            } => {
                write!(f, "attribute `{attr}` expects {expected}, got {got}")
            }
            EventError::NanValue { attr } => write!(f, "attribute `{attr}` is NaN"),
            EventError::OutOfOrder { previous, got } => write!(
                f,
                "event timestamp t{got} precedes previously appended t{previous}"
            ),
        }
    }
}

impl std::error::Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = EventError::TypeMismatch {
            attr: "L".into(),
            expected: AttrType::Str,
            got: AttrType::Int,
        };
        assert_eq!(e.to_string(), "attribute `L` expects STR, got INT");
        assert!(EventError::OutOfOrder {
            previous: 5,
            got: 3
        }
        .to_string()
        .contains("t3"));
    }
}
