//! Discrete, ordered time domain.
//!
//! The paper assumes "a discrete and ordered time domain T, such as calendar
//! days and hours". We model it as a signed 64-bit tick count. The unit of a
//! tick is up to the application (the paper's running example uses hours and
//! a window of `τ = 264` hours = 11 days).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in the discrete time domain (a tick count).
///
/// Ordering on timestamps is the total temporal order of the event model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Creates a timestamp from a raw tick count.
    #[inline]
    pub const fn new(ticks: i64) -> Self {
        Timestamp(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Absolute temporal distance `|self − other|` as a [`Duration`].
    ///
    /// This is the quantity bounded by `τ` in condition 3 of the paper's
    /// Definition 2 (`|e.T − e'.T| ≤ τ`). Saturates at the numeric limits.
    #[inline]
    pub fn distance(self, other: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(other.0).saturating_abs())
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }
}

impl From<i64> for Timestamp {
    #[inline]
    fn from(t: i64) -> Self {
        Timestamp(t)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0 - d.0)
    }
}

impl SubAssign<Duration> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, d: Duration) {
        self.0 -= d.0;
    }
}

impl Sub for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, other: Timestamp) -> Duration {
        Duration(self.0 - other.0)
    }
}

/// A span of time, in ticks.
///
/// Used for the maximal window `τ` of an SES pattern. A duration may be
/// negative when produced by subtracting timestamps; pattern validation
/// rejects negative `τ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration (an effectively unbounded window).
    pub const MAX: Duration = Duration(i64::MAX);

    /// Creates a duration from a raw tick count.
    #[inline]
    pub const fn ticks(ticks: i64) -> Self {
        Duration(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn as_ticks(self) -> i64 {
        self.0
    }

    /// `true` iff the duration is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Convenience constructor when a tick is interpreted as one hour.
    #[inline]
    pub const fn hours(h: i64) -> Self {
        Duration(h)
    }

    /// Convenience constructor when a tick is interpreted as one hour:
    /// `days(d)` = `hours(24 d)`.
    #[inline]
    pub const fn days(d: i64) -> Self {
        Duration(d * 24)
    }
}

impl From<i64> for Duration {
    #[inline]
    fn from(t: i64) -> Self {
        Duration(t)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, other: Duration) -> Duration {
        Duration(self.0 - other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_is_total() {
        let a = Timestamp::new(5);
        let b = Timestamp::new(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(Timestamp::MIN.min(a), Timestamp::MIN);
    }

    #[test]
    fn distance_is_symmetric_and_nonnegative() {
        let a = Timestamp::new(-3);
        let b = Timestamp::new(10);
        assert_eq!(a.distance(b), Duration::ticks(13));
        assert_eq!(b.distance(a), Duration::ticks(13));
        assert_eq!(a.distance(a), Duration::ZERO);
    }

    #[test]
    fn distance_saturates_at_extremes() {
        assert_eq!(Timestamp::MIN.distance(Timestamp::MAX), Duration::MAX);
        assert_eq!(Timestamp::MAX.distance(Timestamp::MIN), Duration::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        assert_eq!(Duration::days(11), Duration::hours(264));
        assert_eq!(Duration::hours(2) + Duration::hours(3), Duration::hours(5));
        assert_eq!(Duration::hours(2) - Duration::hours(3), Duration::hours(-1));
        assert!((Duration::hours(2) - Duration::hours(3)).is_negative());
    }

    #[test]
    fn timestamp_duration_arithmetic() {
        let t = Timestamp::new(100);
        assert_eq!(t + Duration::ticks(10), Timestamp::new(110));
        assert_eq!(t - Duration::ticks(10), Timestamp::new(90));
        assert_eq!(Timestamp::new(110) - t, Duration::ticks(10));
        let mut u = t;
        u += Duration::ticks(1);
        u -= Duration::ticks(2);
        assert_eq!(u, Timestamp::new(99));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::ticks(5)),
            Timestamp::MAX
        );
        assert_eq!(
            Timestamp::new(0).saturating_add(Duration::ticks(5)),
            Timestamp::new(5)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::new(42).to_string(), "t42");
        assert_eq!(Duration::ticks(7).to_string(), "7 ticks");
    }
}
