//! Attribute values and the comparison operators of the condition algebra.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A non-temporal attribute value.
///
/// The paper's conditions compare attribute values with
/// `φ ∈ {=, ≠, <, ≤, >, ≥}`; values therefore need a comparison semantics.
/// Comparisons are only defined *within* a type, except that integers and
/// floats compare numerically with each other. Cross-type comparisons of
/// unrelated types (e.g. a string against an integer) are rejected by the
/// pattern compiler and evaluate to "not comparable" at runtime.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float. `NaN` is rejected at construction sites that
    /// validate input (relation building, query literals).
    Float(f64),
    /// Interned UTF-8 string (cheap to clone; events are cloned on
    /// relation duplication for the D2–D5 data sets).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`crate::AttrType`] this value inhabits.
    pub fn attr_type(&self) -> crate::AttrType {
        match self {
            Value::Int(_) => crate::AttrType::Int,
            Value::Float(_) => crate::AttrType::Float,
            Value::Str(_) => crate::AttrType::Str,
            Value::Bool(_) => crate::AttrType::Bool,
        }
    }

    /// Numeric view used for int/float interoperation.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Compares two values, returning `None` when they are not comparable
    /// (distinct non-numeric types, or a `NaN` operand).
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Evaluates `self φ other`. Not-comparable pairs evaluate to `false`
    /// for every operator, including `≠` (a condition over ill-typed
    /// operands is never *satisfied*, mirroring SQL's three-valued logic
    /// collapsing to false in a WHERE clause).
    pub fn compare(&self, op: CmpOp, other: &Value) -> bool {
        match self.try_cmp(other) {
            Some(ord) => op.eval(ord),
            None => false,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.try_cmp(other) == Some(Ordering::Equal)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "'{v}'"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operator `φ ∈ {=, ≠, <, ≤, >, ≥}` of the paper's conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// All six operators.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Whether an ordering outcome satisfies the operator.
    #[inline]
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with operands swapped: `a φ b  ⇔  b φ.flip() a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation: `¬(a φ b) ⇔ a φ.negate() b` (for comparable
    /// operands).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_type_comparisons() {
        assert!(Value::from(3).compare(CmpOp::Lt, &Value::from(5)));
        assert!(Value::from("B").compare(CmpOp::Eq, &Value::str("B")));
        assert!(Value::from("A").compare(CmpOp::Lt, &Value::from("B")));
        assert!(Value::from(true).compare(CmpOp::Gt, &Value::from(false)));
        assert!(Value::from(2.5).compare(CmpOp::Ge, &Value::from(2.5)));
    }

    #[test]
    fn int_float_interoperate() {
        assert!(Value::from(3).compare(CmpOp::Eq, &Value::from(3.0)));
        assert!(Value::from(3.5).compare(CmpOp::Gt, &Value::from(3)));
        assert!(Value::from(2).compare(CmpOp::Le, &Value::from(2.0)));
    }

    #[test]
    fn incomparable_types_are_never_satisfied() {
        for op in CmpOp::ALL {
            assert!(
                !Value::from("x").compare(op, &Value::from(1)),
                "string vs int must be false under {op}"
            );
            assert!(!Value::from(true).compare(op, &Value::from(1.0)));
        }
    }

    #[test]
    fn nan_is_never_satisfied() {
        for op in CmpOp::ALL {
            assert!(!Value::from(f64::NAN).compare(op, &Value::from(1.0)));
            assert!(!Value::from(1.0).compare(op, &Value::from(f64::NAN)));
        }
    }

    #[test]
    fn flip_is_an_involution_and_consistent() {
        let a = Value::from(1);
        let b = Value::from(2);
        for op in CmpOp::ALL {
            assert_eq!(op.flip().flip(), op);
            assert_eq!(a.compare(op, &b), b.compare(op.flip(), &a));
        }
    }

    #[test]
    fn negate_is_complementary_on_comparable_values() {
        let pairs = [(1i64, 1i64), (1, 2), (2, 1)];
        for (x, y) in pairs {
            let (a, b) = (Value::from(x), Value::from(y));
            for op in CmpOp::ALL {
                assert_ne!(a.compare(op, &b), a.compare(op.negate(), &b));
            }
        }
    }

    #[test]
    fn equality_follows_try_cmp() {
        assert_eq!(Value::from(3), Value::from(3.0));
        assert_ne!(Value::from("3"), Value::from(3));
        assert_eq!(Value::str("abc"), Value::from("abc"));
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(Value::from("C").to_string(), "'C'");
        assert_eq!(CmpOp::Le.to_string(), "<=");
    }
}
