//! Events: tuples of attribute values plus an occurrence time.

use std::fmt;
use std::sync::Arc;

use crate::{Schema, Timestamp, Value};

/// Identifier of an event within a [`crate::Relation`].
///
/// Event ids are dense indices into the relation's chronological order; the
/// matching engine stores ids rather than cloned events in its match
/// buffers, so ids double as compact result references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// The event's position in its relation's chronological order.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for EventId {
    #[inline]
    fn from(v: u32) -> Self {
        EventId(v)
    }
}

impl From<usize> for EventId {
    #[inline]
    fn from(v: usize) -> Self {
        EventId(v as u32)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0 + 1) // 1-based, like the paper's e1…e14
    }
}

/// An event: non-temporal attribute values and an occurrence timestamp.
///
/// Values are stored in schema order in a shared slice, so cloning an event
/// (e.g. for the duplicated data sets D2–D5) is O(1).
#[derive(Debug, Clone)]
pub struct Event {
    values: Arc<[Value]>,
    ts: Timestamp,
}

/// Events compare by timestamp and attribute values — the identity that
/// matters for snapshot round-trips and differential tests. Follows
/// [`Value`]'s comparison semantics (ints and floats compare
/// numerically), so no derived `Eq`.
impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        self.ts == other.ts && self.values[..] == other.values[..]
    }
}

impl Event {
    /// Creates an event. The caller is responsible for schema conformance;
    /// use [`crate::Relation::push_values`] for checked construction.
    pub fn new(ts: Timestamp, values: impl Into<Arc<[Value]>>) -> Event {
        Event {
            values: values.into(),
            ts,
        }
    }

    /// Occurrence time (the temporal attribute `T`).
    #[inline]
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// The attribute values in schema order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of the attribute at dense index `id` — the engine's hot path.
    #[inline]
    pub fn value(&self, id: crate::AttrId) -> &Value {
        &self.values[id.index()]
    }

    /// Value of the attribute called `name` under `schema`.
    pub fn value_by_name<'a>(&'a self, name: &str, schema: &Schema) -> Option<&'a Value> {
        schema.attr_id(name).map(|id| self.value(id))
    }

    /// Returns a copy of this event shifted in time by `delta` ticks.
    pub fn shifted(&self, delta: i64) -> Event {
        Event {
            values: Arc::clone(&self.values),
            ts: Timestamp::new(self.ts.ticks() + delta),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") @ {}", self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrId, AttrType};

    #[test]
    fn event_accessors() {
        let schema = Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap();
        let e = Event::new(Timestamp::new(9), vec![Value::from(1), Value::from("C")]);
        assert_eq!(e.ts(), Timestamp::new(9));
        assert_eq!(e.value(AttrId(0)), &Value::from(1));
        assert_eq!(e.value_by_name("L", &schema), Some(&Value::from("C")));
        assert_eq!(e.value_by_name("missing", &schema), None);
        assert_eq!(e.values().len(), 2);
    }

    #[test]
    fn shifted_preserves_values() {
        let e = Event::new(Timestamp::new(10), vec![Value::from(1)]);
        let s = e.shifted(-3);
        assert_eq!(s.ts(), Timestamp::new(7));
        assert_eq!(s.values(), e.values());
    }

    #[test]
    fn event_id_display_is_one_based() {
        assert_eq!(EventId(0).to_string(), "e1");
        assert_eq!(EventId(13).to_string(), "e14");
        assert_eq!(EventId::from(3usize).index(), 3);
    }

    #[test]
    fn display_shows_values_and_time() {
        let e = Event::new(Timestamp::new(9), vec![Value::from(1), Value::from("C")]);
        assert_eq!(e.to_string(), "(1, 'C') @ t9");
    }
}
