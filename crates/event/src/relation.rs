//! Event relations: schema-conformant, chronologically ordered event sets.

use std::fmt;

use crate::{Duration, Event, EventError, EventId, Schema, Timestamp, Value};

/// An event relation: a sequence of events totally ordered by their
/// timestamps (ties broken by insertion order).
///
/// This is the paper's input `E`. The matching engine consumes events in
/// chronological order; [`Relation`] guarantees that order structurally.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    events: Vec<Event>,
}

impl Relation {
    /// Creates an empty relation over `schema`.
    pub fn new(schema: Schema) -> Relation {
        Relation {
            schema,
            events: Vec::new(),
        }
    }

    /// Starts a builder that accepts rows in any order and sorts them
    /// stably by timestamp on [`RelationBuilder::build`].
    pub fn builder(schema: Schema) -> RelationBuilder {
        RelationBuilder {
            relation: Relation::new(schema),
            rows: Vec::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff the relation holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in chronological order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event with the given id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Iterates `(id, event)` pairs in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &Event)> {
        self.events
            .iter()
            .enumerate()
            .map(|(i, e)| (EventId::from(i), e))
    }

    /// Appends an event from raw values, validating schema conformance and
    /// chronological order (`ts` must not precede the last event).
    pub fn push_values(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<EventId, EventError> {
        let values = values.into();
        self.schema.check_row(&values)?;
        self.push_event(Event::new(ts, values))
    }

    /// Appends a pre-built event, validating chronological order only.
    pub fn push_event(&mut self, event: Event) -> Result<EventId, EventError> {
        if let Some(last) = self.events.last() {
            if event.ts() < last.ts() {
                return Err(EventError::OutOfOrder {
                    previous: last.ts().ticks(),
                    got: event.ts().ticks(),
                });
            }
        }
        let id = EventId::from(self.events.len());
        self.events.push(event);
        Ok(id)
    }

    /// Returns the window size `W` for window width `τ`: the maximal number
    /// of events whose timestamps span at most `τ` (Definition 5 of the
    /// paper). Computed with a two-pointer sweep in O(n).
    pub fn window_size(&self, tau: Duration) -> usize {
        let mut best = 0;
        let mut lo = 0;
        for hi in 0..self.events.len() {
            while self.events[hi].ts().distance(self.events[lo].ts()) > tau {
                lo += 1;
            }
            best = best.max(hi - lo + 1);
        }
        best
    }

    /// Produces the relation `Dk` of the paper's evaluation: every event
    /// appears `k` times (identical values and timestamp, consecutive in
    /// the tie order). `duplicate(1)` is a plain clone.
    pub fn duplicate(&self, k: usize) -> Relation {
        let mut events = Vec::with_capacity(self.events.len() * k);
        for e in &self.events {
            for _ in 0..k {
                events.push(e.clone());
            }
        }
        Relation {
            schema: self.schema.clone(),
            events,
        }
    }

    /// Merges several relations over compatible schemas into one
    /// chronological relation (a k-way merge; stable across inputs — ties
    /// keep the order of the `sources` slice).
    pub fn merge(sources: &[&Relation]) -> Result<Relation, EventError> {
        let Some(first) = sources.first() else {
            panic!("merge requires at least one source relation");
        };
        for s in &sources[1..] {
            if !s.schema().is_compatible(first.schema()) {
                return Err(EventError::ArityMismatch {
                    expected: first.schema().len(),
                    got: s.schema().len(),
                });
            }
        }
        let mut cursors = vec![0usize; sources.len()];
        let total = sources.iter().map(|s| s.len()).sum();
        let mut events = Vec::with_capacity(total);
        loop {
            let mut best: Option<(usize, Timestamp)> = None;
            for (i, src) in sources.iter().enumerate() {
                if let Some(e) = src.events.get(cursors[i]) {
                    if best.is_none_or(|(_, ts)| e.ts() < ts) {
                        best = Some((i, e.ts()));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            events.push(sources[i].events[cursors[i]].clone());
            cursors[i] += 1;
        }
        Ok(Relation {
            schema: first.schema().clone(),
            events,
        })
    }

    /// The sub-relation of events with `lo ≤ T ≤ hi` (inclusive bounds),
    /// found by binary search. Event values are shared (`Arc` innards),
    /// so slicing is cheap.
    pub fn between(&self, lo: Timestamp, hi: Timestamp) -> Relation {
        let from = self.events.partition_point(|e| e.ts() < lo);
        let to = self.events.partition_point(|e| e.ts() <= hi);
        Relation {
            schema: self.schema.clone(),
            events: self.events[from..to.max(from)].to_vec(),
        }
    }

    /// Splits the relation into tumbling windows of `width` ticks
    /// (aligned to the first event's timestamp). Each window is a
    /// relation over `[start, start + width)`; empty windows are
    /// omitted. Useful for bounding [`Relation`] growth when matching
    /// unbounded streams segment by segment.
    pub fn tumbling_windows(&self, width: Duration) -> Vec<Relation> {
        assert!(width.as_ticks() > 0, "window width must be positive");
        let Some(first) = self.first_ts() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut start = first;
        let mut idx = 0;
        while idx < self.events.len() {
            let end = start.saturating_add(width);
            let to = self.events.partition_point(|e| e.ts() < end);
            if to > idx {
                out.push(Relation {
                    schema: self.schema.clone(),
                    events: self.events[idx..to].to_vec(),
                });
                idx = to;
            }
            if idx < self.events.len() {
                // Jump to the window containing the next event.
                let next_ts = self.events[idx].ts();
                let gap = (next_ts - start).as_ticks();
                let steps = gap / width.as_ticks();
                start = start.saturating_add(Duration::ticks(steps * width.as_ticks()));
            }
        }
        out
    }

    /// Timestamp of the first event, if any.
    pub fn first_ts(&self) -> Option<Timestamp> {
        self.events.first().map(Event::ts)
    }

    /// Timestamp of the last event, if any.
    pub fn last_ts(&self) -> Option<Timestamp> {
        self.events.last().map(Event::ts)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} with {} events", self.schema, self.events.len())?;
        for (id, e) in self.iter() {
            writeln!(f, "  {id}: {e}")?;
        }
        Ok(())
    }
}

/// Builder that accepts rows in arbitrary timestamp order.
#[derive(Debug)]
pub struct RelationBuilder {
    relation: Relation,
    rows: Vec<Event>,
}

impl RelationBuilder {
    /// Adds a row (any timestamp order).
    pub fn row(
        mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<RelationBuilder, EventError> {
        let values = values.into();
        self.relation.schema.check_row(&values)?;
        self.rows.push(Event::new(ts, values));
        Ok(self)
    }

    /// Adds a pre-built event (any timestamp order, unchecked values).
    pub fn event(mut self, event: Event) -> RelationBuilder {
        self.rows.push(event);
        self
    }

    /// Sorts rows stably by timestamp and produces the relation.
    pub fn build(mut self) -> Relation {
        self.rows.sort_by_key(Event::ts);
        self.relation.events = self.rows;
        self.relation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn rel_with(ts: &[i64]) -> Relation {
        let mut r = Relation::new(schema());
        for (i, t) in ts.iter().enumerate() {
            r.push_values(Timestamp::new(*t), [Value::from(i as i64), Value::from("X")])
                .unwrap();
        }
        r
    }

    #[test]
    fn push_enforces_order() {
        let mut r = Relation::new(schema());
        r.push_values(Timestamp::new(5), [1.into(), "A".into()]).unwrap();
        r.push_values(Timestamp::new(5), [2.into(), "B".into()]).unwrap(); // tie ok
        let err = r
            .push_values(Timestamp::new(4), [3.into(), "C".into()])
            .unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { previous: 5, got: 4 }));
    }

    #[test]
    fn push_validates_rows() {
        let mut r = Relation::new(schema());
        assert!(r
            .push_values(Timestamp::new(1), [Value::from("oops"), Value::from("A")])
            .is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn builder_sorts_stably() {
        let r = Relation::builder(schema())
            .row(Timestamp::new(9), [1.into(), "late".into()])
            .unwrap()
            .row(Timestamp::new(3), [2.into(), "early".into()])
            .unwrap()
            .row(Timestamp::new(9), [3.into(), "late2".into()])
            .unwrap()
            .build();
        let labels: Vec<_> = r
            .events()
            .iter()
            .map(|e| e.value(crate::AttrId(1)).to_string())
            .collect();
        assert_eq!(labels, vec!["'early'", "'late'", "'late2'"]);
    }

    #[test]
    fn window_size_two_pointer() {
        // timestamps: 0,1,2,10,11,50
        let r = rel_with(&[0, 1, 2, 10, 11, 50]);
        assert_eq!(r.window_size(Duration::ticks(0)), 1);
        assert_eq!(r.window_size(Duration::ticks(2)), 3);
        assert_eq!(r.window_size(Duration::ticks(11)), 5);
        assert_eq!(r.window_size(Duration::ticks(100)), 6);
        assert_eq!(Relation::new(schema()).window_size(Duration::ticks(5)), 0);
    }

    #[test]
    fn window_size_counts_ties() {
        let r = rel_with(&[7, 7, 7]);
        assert_eq!(r.window_size(Duration::ZERO), 3);
    }

    #[test]
    fn duplicate_matches_paper_datasets() {
        let d1 = rel_with(&[0, 1, 2]);
        let d3 = d1.duplicate(3);
        assert_eq!(d3.len(), 9);
        // Duplicates are consecutive and share timestamps.
        assert_eq!(d3.event(EventId(0)).ts(), d3.event(EventId(2)).ts());
        assert_eq!(
            d3.window_size(Duration::ticks(2)),
            3 * d1.window_size(Duration::ticks(2))
        );
        assert_eq!(d1.duplicate(1).len(), d1.len());
        assert_eq!(d1.duplicate(0).len(), 0);
    }

    #[test]
    fn merge_interleaves_chronologically() {
        let a = rel_with(&[0, 4, 8]);
        let b = rel_with(&[1, 4, 9]);
        let c = rel_with(&[2]);
        let merged = Relation::merge(&[&a, &b, &c]).unwrap();
        let ts: Vec<i64> = merged.events().iter().map(|e| e.ts().ticks()).collect();
        assert_eq!(ts, vec![0, 1, 2, 4, 4, 8, 9]);
        // Ties keep source order: a's t=4 row (ID 1) precedes b's (ID 1).
        assert_eq!(merged.len(), 7);
        // Merging a single relation is a copy.
        assert_eq!(Relation::merge(&[&a]).unwrap().len(), a.len());
    }

    #[test]
    fn merge_rejects_incompatible_schemas() {
        let a = rel_with(&[0]);
        let other_schema = Schema::builder().attr("X", crate::AttrType::Int).build().unwrap();
        let b = Relation::new(other_schema);
        assert!(Relation::merge(&[&a, &b]).is_err());
    }

    #[test]
    fn between_slices_inclusive() {
        let r = rel_with(&[0, 1, 2, 5, 5, 9]);
        assert_eq!(r.between(Timestamp::new(1), Timestamp::new(5)).len(), 4);
        assert_eq!(r.between(Timestamp::new(5), Timestamp::new(5)).len(), 2);
        assert_eq!(r.between(Timestamp::new(3), Timestamp::new(4)).len(), 0);
        assert_eq!(r.between(Timestamp::new(-10), Timestamp::new(100)).len(), 6);
        // Inverted range is empty.
        assert_eq!(r.between(Timestamp::new(9), Timestamp::new(0)).len(), 0);
        // Slices stay chronological and share values.
        let s = r.between(Timestamp::new(1), Timestamp::new(9));
        assert_eq!(s.first_ts(), Some(Timestamp::new(1)));
        assert_eq!(s.last_ts(), Some(Timestamp::new(9)));
    }

    #[test]
    fn tumbling_windows_partition_events() {
        let r = rel_with(&[0, 1, 2, 10, 11, 25, 26]);
        let windows = r.tumbling_windows(Duration::ticks(10));
        // [0,10): 0,1,2 — [10,20): 10,11 — [20,30): 25,26.
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].len(), 3);
        assert_eq!(windows[1].len(), 2);
        assert_eq!(windows[2].len(), 2);
        let total: usize = windows.iter().map(Relation::len).sum();
        assert_eq!(total, r.len());
        // Sparse data skips empty windows entirely.
        let sparse = rel_with(&[0, 1000]);
        let windows = sparse.tumbling_windows(Duration::ticks(10));
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[1].first_ts(), Some(Timestamp::new(1000)));
        // Empty relation.
        assert!(Relation::new(schema())
            .tumbling_windows(Duration::ticks(5))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tumbling_windows_reject_zero_width() {
        rel_with(&[0]).tumbling_windows(Duration::ZERO);
    }

    #[test]
    fn first_last_and_iter() {
        let r = rel_with(&[2, 5, 9]);
        assert_eq!(r.first_ts(), Some(Timestamp::new(2)));
        assert_eq!(r.last_ts(), Some(Timestamp::new(9)));
        let ids: Vec<_> = r.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
