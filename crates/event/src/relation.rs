//! Event relations: schema-conformant, chronologically ordered event sets.

use std::fmt;

use crate::{Duration, Event, EventError, EventId, Schema, Timestamp, Value};

/// An event relation: a sequence of events totally ordered by their
/// timestamps (ties broken by insertion order).
///
/// This is the paper's input `E`. The matching engine consumes events in
/// chronological order; [`Relation`] guarantees that order structurally.
///
/// # Eviction
///
/// For long-running streams the relation supports *front eviction*
/// ([`Relation::evict_before`]): events older than a cutoff are dropped
/// while every surviving event keeps its original [`EventId`]. Ids are
/// positions in the *total* pushed order; `base` records how many of the
/// oldest have been evicted, so `event(id)` indexes at
/// `id.index() - base`. Looking up an evicted id panics, exactly like an
/// out-of-bounds id — callers (the streaming matcher) guarantee they only
/// dereference retained events.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    events: Vec<Event>,
    /// Number of events evicted from the front; ids `< base` are gone.
    base: usize,
    /// Timestamp of the most recently pushed event, cached so the
    /// chronological-order check survives eviction of the backing vector.
    last_ts: Option<Timestamp>,
}

impl Relation {
    /// Creates an empty relation over `schema`.
    pub fn new(schema: Schema) -> Relation {
        Relation {
            schema,
            events: Vec::new(),
            base: 0,
            last_ts: None,
        }
    }

    /// Builds a relation from an already-chronological event vector.
    fn from_events(schema: Schema, events: Vec<Event>) -> Relation {
        let last_ts = events.last().map(Event::ts);
        Relation {
            schema,
            events,
            base: 0,
            last_ts,
        }
    }

    /// Reconstructs a relation from externally persisted parts: the
    /// number of events already `evicted` from the front, the retained
    /// `events`, and the cached last-pushed timestamp (which may exceed
    /// the last retained event's timestamp after total eviction).
    ///
    /// This is the inverse of reading [`Relation::evicted`],
    /// [`Relation::events`] and [`Relation::last_ts`] — the streaming
    /// matcher's snapshot/restore path uses it to resurrect its window
    /// with every retained event keeping its original [`EventId`].
    /// Validates schema conformance, chronological order, and that
    /// `last_ts` is consistent with the retained tail.
    pub fn restore(
        schema: Schema,
        evicted: usize,
        events: Vec<Event>,
        last_ts: Option<Timestamp>,
    ) -> Result<Relation, EventError> {
        let mut prev: Option<Timestamp> = None;
        for e in &events {
            schema.check_row(e.values())?;
            if let Some(p) = prev {
                if e.ts() < p {
                    return Err(EventError::OutOfOrder {
                        previous: p.ticks(),
                        got: e.ts().ticks(),
                    });
                }
            }
            prev = Some(e.ts());
        }
        if let Some(tail) = prev {
            let cached = last_ts.unwrap_or(tail);
            if cached < tail {
                return Err(EventError::OutOfOrder {
                    previous: tail.ticks(),
                    got: cached.ticks(),
                });
            }
        }
        Ok(Relation {
            schema,
            events,
            base: evicted,
            last_ts,
        })
    }

    /// Starts a builder that accepts rows in any order and sorts them
    /// stably by timestamp on [`RelationBuilder::build`].
    pub fn builder(schema: Schema) -> RelationBuilder {
        RelationBuilder {
            relation: Relation::new(schema),
            rows: Vec::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of *retained* events. Equal to the total pushed count
    /// unless [`Relation::evict_before`] has been used.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff the relation retains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of events ever pushed, including evicted ones. The
    /// next pushed event receives this as its id.
    pub fn total_len(&self) -> usize {
        self.base + self.events.len()
    }

    /// Number of events evicted from the front so far.
    pub fn evicted(&self) -> usize {
        self.base
    }

    /// Index of the oldest retained event — the lower bound for id scans.
    /// Equal to [`Relation::evicted`]; when the relation is empty this is
    /// the index the next pushed event will get.
    pub fn first_index(&self) -> usize {
        self.base
    }

    /// The retained events in chronological order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` has been evicted or was never pushed.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index() - self.base]
    }

    /// Iterates `(id, event)` pairs over the retained events in
    /// chronological order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &Event)> {
        let base = self.base;
        self.events
            .iter()
            .enumerate()
            .map(move |(i, e)| (EventId::from(base + i), e))
    }

    /// Appends an event from raw values, validating schema conformance and
    /// chronological order (`ts` must not precede the last event).
    pub fn push_values(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<EventId, EventError> {
        let values = values.into();
        self.schema.check_row(&values)?;
        self.push_event(Event::new(ts, values))
    }

    /// Appends a pre-built event, validating chronological order only.
    /// The order check uses the cached last-pushed timestamp, so it keeps
    /// rejecting out-of-order events even after the tail of the relation
    /// has been evicted.
    pub fn push_event(&mut self, event: Event) -> Result<EventId, EventError> {
        if let Some(last) = self.last_ts {
            if event.ts() < last {
                return Err(EventError::OutOfOrder {
                    previous: last.ticks(),
                    got: event.ts().ticks(),
                });
            }
        }
        let id = EventId::from(self.base + self.events.len());
        self.last_ts = Some(event.ts());
        self.events.push(event);
        Ok(id)
    }

    /// Evicts retained events with `ts < cutoff` from the front of the
    /// relation, keeping every surviving event's id stable. Returns the
    /// number of events physically removed.
    ///
    /// To keep eviction amortized O(1) per pushed event, the backing
    /// vector is only compacted when at least half of it is evictable
    /// (hysteresis); below that threshold the call is a no-op and returns
    /// 0. Consequently the retained count stays within 2× of the events
    /// actually inside the cutoff horizon.
    pub fn evict_before(&mut self, cutoff: Timestamp) -> usize {
        let evictable = self.events.partition_point(|e| e.ts() < cutoff);
        if evictable == 0 || evictable * 2 < self.events.len() {
            return 0;
        }
        self.events.drain(..evictable);
        self.base += evictable;
        evictable
    }

    /// Returns the window size `W` for window width `τ`: the maximal number
    /// of events whose timestamps span at most `τ` (Definition 5 of the
    /// paper). Computed with a two-pointer sweep in O(n).
    pub fn window_size(&self, tau: Duration) -> usize {
        let mut best = 0;
        let mut lo = 0;
        for hi in 0..self.events.len() {
            while self.events[hi].ts().distance(self.events[lo].ts()) > tau {
                lo += 1;
            }
            best = best.max(hi - lo + 1);
        }
        best
    }

    /// Produces the relation `Dk` of the paper's evaluation: every event
    /// appears `k` times (identical values and timestamp, consecutive in
    /// the tie order). `duplicate(1)` is a plain clone.
    pub fn duplicate(&self, k: usize) -> Relation {
        let mut events = Vec::with_capacity(self.events.len() * k);
        for e in &self.events {
            for _ in 0..k {
                events.push(e.clone());
            }
        }
        Relation::from_events(self.schema.clone(), events)
    }

    /// Merges several relations over compatible schemas into one
    /// chronological relation (a k-way merge; stable across inputs — ties
    /// keep the order of the `sources` slice).
    pub fn merge(sources: &[&Relation]) -> Result<Relation, EventError> {
        let Some(first) = sources.first() else {
            panic!("merge requires at least one source relation");
        };
        for s in &sources[1..] {
            if !s.schema().is_compatible(first.schema()) {
                return Err(EventError::ArityMismatch {
                    expected: first.schema().len(),
                    got: s.schema().len(),
                });
            }
        }
        let mut cursors = vec![0usize; sources.len()];
        let total = sources.iter().map(|s| s.len()).sum();
        let mut events = Vec::with_capacity(total);
        loop {
            let mut best: Option<(usize, Timestamp)> = None;
            for (i, src) in sources.iter().enumerate() {
                if let Some(e) = src.events.get(cursors[i]) {
                    if best.is_none_or(|(_, ts)| e.ts() < ts) {
                        best = Some((i, e.ts()));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            events.push(sources[i].events[cursors[i]].clone());
            cursors[i] += 1;
        }
        Ok(Relation::from_events(first.schema().clone(), events))
    }

    /// The sub-relation of events with `lo ≤ T ≤ hi` (inclusive bounds),
    /// found by binary search. Event values are shared (`Arc` innards),
    /// so slicing is cheap.
    pub fn between(&self, lo: Timestamp, hi: Timestamp) -> Relation {
        let from = self.events.partition_point(|e| e.ts() < lo);
        let to = self.events.partition_point(|e| e.ts() <= hi);
        Relation::from_events(
            self.schema.clone(),
            self.events[from..to.max(from)].to_vec(),
        )
    }

    /// Splits the relation into tumbling windows of `width` ticks
    /// (aligned to the first event's timestamp). Each window is a
    /// relation over `[start, start + width)`; empty windows are
    /// omitted. Useful for bounding [`Relation`] growth when matching
    /// unbounded streams segment by segment.
    pub fn tumbling_windows(&self, width: Duration) -> Vec<Relation> {
        assert!(width.as_ticks() > 0, "window width must be positive");
        let Some(first) = self.first_ts() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut start = first;
        let mut idx = 0;
        while idx < self.events.len() {
            let end = start.saturating_add(width);
            let to = self.events.partition_point(|e| e.ts() < end);
            if to > idx {
                out.push(Relation::from_events(
                    self.schema.clone(),
                    self.events[idx..to].to_vec(),
                ));
                idx = to;
            }
            if idx < self.events.len() {
                // Jump to the window containing the next event.
                let next_ts = self.events[idx].ts();
                let gap = (next_ts - start).as_ticks();
                let steps = gap / width.as_ticks();
                start = start.saturating_add(Duration::ticks(steps * width.as_ticks()));
            }
        }
        out
    }

    /// Timestamp of the first retained event, if any.
    pub fn first_ts(&self) -> Option<Timestamp> {
        self.events.first().map(Event::ts)
    }

    /// Timestamp of the last event ever pushed, if any. Served from a
    /// cache, so it stays valid even if eviction empties the relation.
    pub fn last_ts(&self) -> Option<Timestamp> {
        self.last_ts
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} with {} events", self.schema, self.events.len())?;
        for (id, e) in self.iter() {
            writeln!(f, "  {id}: {e}")?;
        }
        Ok(())
    }
}

/// Builder that accepts rows in arbitrary timestamp order.
#[derive(Debug)]
pub struct RelationBuilder {
    relation: Relation,
    rows: Vec<Event>,
}

impl RelationBuilder {
    /// Adds a row (any timestamp order).
    pub fn row(
        mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<RelationBuilder, EventError> {
        let values = values.into();
        self.relation.schema.check_row(&values)?;
        self.rows.push(Event::new(ts, values));
        Ok(self)
    }

    /// Adds a pre-built event (any timestamp order, unchecked values).
    pub fn event(mut self, event: Event) -> RelationBuilder {
        self.rows.push(event);
        self
    }

    /// Sorts rows stably by timestamp and produces the relation.
    pub fn build(mut self) -> Relation {
        self.rows.sort_by_key(Event::ts);
        Relation::from_events(self.relation.schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn rel_with(ts: &[i64]) -> Relation {
        let mut r = Relation::new(schema());
        for (i, t) in ts.iter().enumerate() {
            r.push_values(
                Timestamp::new(*t),
                [Value::from(i as i64), Value::from("X")],
            )
            .unwrap();
        }
        r
    }

    #[test]
    fn push_enforces_order() {
        let mut r = Relation::new(schema());
        r.push_values(Timestamp::new(5), [1.into(), "A".into()])
            .unwrap();
        r.push_values(Timestamp::new(5), [2.into(), "B".into()])
            .unwrap(); // tie ok
        let err = r
            .push_values(Timestamp::new(4), [3.into(), "C".into()])
            .unwrap_err();
        assert!(matches!(
            err,
            EventError::OutOfOrder {
                previous: 5,
                got: 4
            }
        ));
    }

    #[test]
    fn push_validates_rows() {
        let mut r = Relation::new(schema());
        assert!(r
            .push_values(Timestamp::new(1), [Value::from("oops"), Value::from("A")])
            .is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn builder_sorts_stably() {
        let r = Relation::builder(schema())
            .row(Timestamp::new(9), [1.into(), "late".into()])
            .unwrap()
            .row(Timestamp::new(3), [2.into(), "early".into()])
            .unwrap()
            .row(Timestamp::new(9), [3.into(), "late2".into()])
            .unwrap()
            .build();
        let labels: Vec<_> = r
            .events()
            .iter()
            .map(|e| e.value(crate::AttrId(1)).to_string())
            .collect();
        assert_eq!(labels, vec!["'early'", "'late'", "'late2'"]);
    }

    #[test]
    fn window_size_two_pointer() {
        // timestamps: 0,1,2,10,11,50
        let r = rel_with(&[0, 1, 2, 10, 11, 50]);
        assert_eq!(r.window_size(Duration::ticks(0)), 1);
        assert_eq!(r.window_size(Duration::ticks(2)), 3);
        assert_eq!(r.window_size(Duration::ticks(11)), 5);
        assert_eq!(r.window_size(Duration::ticks(100)), 6);
        assert_eq!(Relation::new(schema()).window_size(Duration::ticks(5)), 0);
    }

    #[test]
    fn window_size_counts_ties() {
        let r = rel_with(&[7, 7, 7]);
        assert_eq!(r.window_size(Duration::ZERO), 3);
    }

    #[test]
    fn duplicate_matches_paper_datasets() {
        let d1 = rel_with(&[0, 1, 2]);
        let d3 = d1.duplicate(3);
        assert_eq!(d3.len(), 9);
        // Duplicates are consecutive and share timestamps.
        assert_eq!(d3.event(EventId(0)).ts(), d3.event(EventId(2)).ts());
        assert_eq!(
            d3.window_size(Duration::ticks(2)),
            3 * d1.window_size(Duration::ticks(2))
        );
        assert_eq!(d1.duplicate(1).len(), d1.len());
        assert_eq!(d1.duplicate(0).len(), 0);
    }

    #[test]
    fn merge_interleaves_chronologically() {
        let a = rel_with(&[0, 4, 8]);
        let b = rel_with(&[1, 4, 9]);
        let c = rel_with(&[2]);
        let merged = Relation::merge(&[&a, &b, &c]).unwrap();
        let ts: Vec<i64> = merged.events().iter().map(|e| e.ts().ticks()).collect();
        assert_eq!(ts, vec![0, 1, 2, 4, 4, 8, 9]);
        // Ties keep source order: a's t=4 row (ID 1) precedes b's (ID 1).
        assert_eq!(merged.len(), 7);
        // Merging a single relation is a copy.
        assert_eq!(Relation::merge(&[&a]).unwrap().len(), a.len());
    }

    #[test]
    fn merge_rejects_incompatible_schemas() {
        let a = rel_with(&[0]);
        let other_schema = Schema::builder()
            .attr("X", crate::AttrType::Int)
            .build()
            .unwrap();
        let b = Relation::new(other_schema);
        assert!(Relation::merge(&[&a, &b]).is_err());
    }

    #[test]
    fn between_slices_inclusive() {
        let r = rel_with(&[0, 1, 2, 5, 5, 9]);
        assert_eq!(r.between(Timestamp::new(1), Timestamp::new(5)).len(), 4);
        assert_eq!(r.between(Timestamp::new(5), Timestamp::new(5)).len(), 2);
        assert_eq!(r.between(Timestamp::new(3), Timestamp::new(4)).len(), 0);
        assert_eq!(r.between(Timestamp::new(-10), Timestamp::new(100)).len(), 6);
        // Inverted range is empty.
        assert_eq!(r.between(Timestamp::new(9), Timestamp::new(0)).len(), 0);
        // Slices stay chronological and share values.
        let s = r.between(Timestamp::new(1), Timestamp::new(9));
        assert_eq!(s.first_ts(), Some(Timestamp::new(1)));
        assert_eq!(s.last_ts(), Some(Timestamp::new(9)));
    }

    #[test]
    fn tumbling_windows_partition_events() {
        let r = rel_with(&[0, 1, 2, 10, 11, 25, 26]);
        let windows = r.tumbling_windows(Duration::ticks(10));
        // [0,10): 0,1,2 — [10,20): 10,11 — [20,30): 25,26.
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].len(), 3);
        assert_eq!(windows[1].len(), 2);
        assert_eq!(windows[2].len(), 2);
        let total: usize = windows.iter().map(Relation::len).sum();
        assert_eq!(total, r.len());
        // Sparse data skips empty windows entirely.
        let sparse = rel_with(&[0, 1000]);
        let windows = sparse.tumbling_windows(Duration::ticks(10));
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[1].first_ts(), Some(Timestamp::new(1000)));
        // Empty relation.
        assert!(Relation::new(schema())
            .tumbling_windows(Duration::ticks(5))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tumbling_windows_reject_zero_width() {
        rel_with(&[0]).tumbling_windows(Duration::ZERO);
    }

    #[test]
    fn first_last_and_iter() {
        let r = rel_with(&[2, 5, 9]);
        assert_eq!(r.first_ts(), Some(Timestamp::new(2)));
        assert_eq!(r.last_ts(), Some(Timestamp::new(9)));
        let ids: Vec<_> = r.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn eviction_keeps_ids_stable() {
        let mut r = rel_with(&[0, 1, 2, 10, 11]);
        // 3 of 5 evictable: past the hysteresis threshold.
        assert_eq!(r.evict_before(Timestamp::new(10)), 3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_len(), 5);
        assert_eq!(r.evicted(), 3);
        assert_eq!(r.first_index(), 3);
        // Survivors answer to their original ids.
        assert_eq!(r.event(EventId(3)).ts(), Timestamp::new(10));
        assert_eq!(r.event(EventId(4)).ts(), Timestamp::new(11));
        let ids: Vec<u32> = r.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![3, 4]);
        // New pushes continue the id sequence.
        let id = r
            .push_values(Timestamp::new(12), [9.into(), "X".into()])
            .unwrap();
        assert_eq!(id, EventId(5));
    }

    #[test]
    fn eviction_hysteresis_defers_small_compactions() {
        let mut r = rel_with(&[0, 1, 2, 3, 4, 5, 6, 7]);
        // Only 1 of 8 evictable: below the half threshold → no-op.
        assert_eq!(r.evict_before(Timestamp::new(1)), 0);
        assert_eq!(r.len(), 8);
        assert_eq!(r.evicted(), 0);
        // 4 of 8 evictable: exactly at the threshold → compacts.
        assert_eq!(r.evict_before(Timestamp::new(4)), 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.first_ts(), Some(Timestamp::new(4)));
    }

    #[test]
    fn eviction_boundary_is_strict() {
        let mut r = rel_with(&[0, 5, 5, 6]);
        // Events exactly at the cutoff are retained.
        assert_eq!(r.evict_before(Timestamp::new(5)), 0); // 1 of 4: hysteresis
        let mut r2 = rel_with(&[0, 1, 5, 6]);
        assert_eq!(r2.evict_before(Timestamp::new(5)), 2);
        assert_eq!(r2.first_ts(), Some(Timestamp::new(5)));
    }

    #[test]
    fn restore_round_trips_evicted_relation() {
        let mut r = rel_with(&[0, 1, 2, 10, 11]);
        r.evict_before(Timestamp::new(10));
        let restored = Relation::restore(
            r.schema().clone(),
            r.evicted(),
            r.events().to_vec(),
            r.last_ts(),
        )
        .unwrap();
        assert_eq!(restored.evicted(), 3);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.event(EventId(3)).ts(), Timestamp::new(10));
        assert_eq!(restored.last_ts(), Some(Timestamp::new(11)));
        // Pushes continue the id sequence exactly as the original would.
        let mut restored = restored;
        let id = restored
            .push_values(Timestamp::new(12), [9.into(), "X".into()])
            .unwrap();
        assert_eq!(id, EventId(5));
    }

    #[test]
    fn restore_rejects_inconsistent_parts() {
        let good = rel_with(&[0, 5]);
        // Events out of order.
        let mut events = good.events().to_vec();
        events.reverse();
        assert!(Relation::restore(schema(), 0, events, Some(Timestamp::new(5))).is_err());
        // Cached last_ts behind the retained tail.
        assert!(
            Relation::restore(schema(), 0, good.events().to_vec(), Some(Timestamp::new(3)))
                .is_err()
        );
        // Schema violation inside a retained event.
        let bad = vec![Event::new(Timestamp::new(0), vec![Value::from("s")])];
        assert!(Relation::restore(schema(), 0, bad, None).is_err());
        // Total eviction: empty tail with a cached last_ts is fine.
        let r = Relation::restore(schema(), 4, Vec::new(), Some(Timestamp::new(9))).unwrap();
        assert_eq!(r.total_len(), 4);
        assert_eq!(r.last_ts(), Some(Timestamp::new(9)));
    }

    #[test]
    fn order_check_survives_total_eviction() {
        let mut r = rel_with(&[0, 1, 2, 9]);
        assert_eq!(r.evict_before(Timestamp::new(10)), 4);
        assert!(r.is_empty());
        assert_eq!(r.last_ts(), Some(Timestamp::new(9)));
        // An event older than the last pushed one is still rejected.
        let err = r
            .push_values(Timestamp::new(8), [0.into(), "X".into()])
            .unwrap_err();
        assert!(matches!(
            err,
            EventError::OutOfOrder {
                previous: 9,
                got: 8
            }
        ));
        assert_eq!(
            r.push_values(Timestamp::new(9), [0.into(), "X".into()])
                .unwrap(),
            EventId(4)
        );
    }
}
