//! Event schemas: named, typed, non-temporal attributes.
//!
//! The temporal attribute `T` is *not* part of the schema's attribute list;
//! it is a structural field of every [`crate::Event`], mirroring the paper's
//! schema `E = (A1, …, Al, T)` where `T` plays a distinguished role.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{EventError, Value};

/// Dense index of an attribute within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The attribute's position in the schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl AttrType {
    /// Whether values of type `self` can be compared against values of
    /// type `other` (numeric types interoperate).
    pub fn comparable_with(self, other: AttrType) -> bool {
        use AttrType::*;
        matches!(
            (self, other),
            (Int, Int) | (Int, Float) | (Float, Int) | (Float, Float) | (Str, Str) | (Bool, Bool)
        )
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttrType::Int => "INT",
            AttrType::Float => "FLOAT",
            AttrType::Str => "STR",
            AttrType::Bool => "BOOL",
        })
    }
}

/// A named, typed attribute definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name, unique within a schema (case-sensitive).
    pub name: Arc<str>,
    /// Attribute type.
    pub ty: AttrType,
}

/// An event schema: an ordered list of uniquely named attributes.
///
/// Schemas are cheap to clone (`Arc` innards) and are shared by every event
/// relation, compiled pattern, and store partition that uses them.
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug)]
struct SchemaInner {
    attrs: Vec<AttrDef>,
    by_name: HashMap<Arc<str>, AttrId>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { attrs: Vec::new() }
    }

    /// The attributes, in declaration order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.inner.attrs
    }

    /// Number of non-temporal attributes.
    pub fn len(&self) -> usize {
        self.inner.attrs.len()
    }

    /// `true` iff the schema has no non-temporal attributes.
    pub fn is_empty(&self) -> bool {
        self.inner.attrs.is_empty()
    }

    /// Resolves an attribute name to its id.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.inner.by_name.get(name).copied()
    }

    /// The definition of an attribute.
    pub fn attr(&self, id: AttrId) -> &AttrDef {
        &self.inner.attrs[id.index()]
    }

    /// The name of an attribute.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.inner.attrs[id.index()].name
    }

    /// The type of an attribute.
    pub fn attr_type(&self, id: AttrId) -> AttrType {
        self.inner.attrs[id.index()].ty
    }

    /// Checks that `values` conforms to this schema (arity and types).
    pub fn check_row(&self, values: &[Value]) -> Result<(), EventError> {
        if values.len() != self.len() {
            return Err(EventError::ArityMismatch {
                expected: self.len(),
                got: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            let expected = self.inner.attrs[i].ty;
            let got = v.attr_type();
            // Ints are accepted where floats are declared (lossless enough
            // for the workloads here), but not vice versa.
            let ok = got == expected || (expected == AttrType::Float && got == AttrType::Int);
            if !ok {
                return Err(EventError::TypeMismatch {
                    attr: self.inner.attrs[i].name.to_string(),
                    expected,
                    got,
                });
            }
            if let Value::Float(f) = v {
                if f.is_nan() {
                    return Err(EventError::NanValue {
                        attr: self.inner.attrs[i].name.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Two schemas are compatible when their attribute names and types match
    /// pairwise (used when appending relations or loading CSV against an
    /// expected schema).
    pub fn is_compatible(&self, other: &Schema) -> bool {
        self.inner.attrs == other.inner.attrs
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.is_compatible(other)
    }
}

impl Eq for Schema {}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.inner.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ", T)")
    }
}

/// Builder for [`Schema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    attrs: Vec<AttrDef>,
}

impl SchemaBuilder {
    /// Appends an attribute.
    pub fn attr(mut self, name: impl AsRef<str>, ty: AttrType) -> Self {
        self.attrs.push(AttrDef {
            name: Arc::from(name.as_ref()),
            ty,
        });
        self
    }

    /// Finalizes the schema, rejecting duplicate or empty attribute names
    /// and the reserved temporal attribute name `T`.
    pub fn build(self) -> Result<Schema, EventError> {
        let mut by_name = HashMap::with_capacity(self.attrs.len());
        if self.attrs.len() > u16::MAX as usize {
            return Err(EventError::TooManyAttrs(self.attrs.len()));
        }
        for (i, a) in self.attrs.iter().enumerate() {
            if a.name.is_empty() {
                return Err(EventError::EmptyAttrName);
            }
            if a.name.as_ref() == "T" {
                return Err(EventError::ReservedAttrName);
            }
            if by_name.insert(a.name.clone(), AttrId(i as u16)).is_some() {
                return Err(EventError::DuplicateAttr(a.name.to_string()));
            }
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                attrs: self.attrs,
                by_name,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chemo_schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .attr("U", AttrType::Str)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_resolves_names() {
        let s = chemo_schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.attr_id("L"), Some(AttrId(1)));
        assert_eq!(s.attr_id("missing"), None);
        assert_eq!(s.attr_name(AttrId(2)), "V");
        assert_eq!(s.attr_type(AttrId(0)), AttrType::Int);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::builder()
            .attr("A", AttrType::Int)
            .attr("A", AttrType::Str)
            .build()
            .unwrap_err();
        assert!(matches!(err, EventError::DuplicateAttr(n) if n == "A"));
    }

    #[test]
    fn rejects_reserved_and_empty_names() {
        assert!(matches!(
            Schema::builder().attr("T", AttrType::Int).build(),
            Err(EventError::ReservedAttrName)
        ));
        assert!(matches!(
            Schema::builder().attr("", AttrType::Int).build(),
            Err(EventError::EmptyAttrName)
        ));
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = chemo_schema();
        assert!(s
            .check_row(&[1.into(), "C".into(), 1672.5.into(), "mg".into()])
            .is_ok());
        // Int accepted for Float attribute.
        assert!(s
            .check_row(&[1.into(), "C".into(), 84.into(), "mgl".into()])
            .is_ok());
        assert!(matches!(
            s.check_row(&[1.into(), "C".into(), 1.5.into()]),
            Err(EventError::ArityMismatch {
                expected: 4,
                got: 3
            })
        ));
        assert!(matches!(
            s.check_row(&[1.into(), 2.into(), 1.5.into(), "mg".into()]),
            Err(EventError::TypeMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[1.into(), "C".into(), f64::NAN.into(), "mg".into()]),
            Err(EventError::NanValue { .. })
        ));
    }

    #[test]
    fn compatibility_and_equality() {
        let a = chemo_schema();
        let b = chemo_schema();
        assert!(a.is_compatible(&b));
        assert_eq!(a, b);
        let c = Schema::builder().attr("ID", AttrType::Str).build().unwrap();
        assert!(!a.is_compatible(&c));
        assert_ne!(a, c);
    }

    #[test]
    fn comparable_with_matrix() {
        use AttrType::*;
        assert!(Int.comparable_with(Float));
        assert!(Float.comparable_with(Int));
        assert!(Str.comparable_with(Str));
        assert!(!Str.comparable_with(Int));
        assert!(!Bool.comparable_with(Float));
    }

    #[test]
    fn display_shows_temporal_attribute() {
        let s = chemo_schema();
        assert_eq!(s.to_string(), "(ID: INT, L: STR, V: FLOAT, U: STR, T)");
    }
}
