//! Event model for sequenced event set (SES) pattern matching.
//!
//! This crate implements the event model of Section 3.1 of *Cadonna, Gamper,
//! Böhlen: Sequenced Event Set Pattern Matching (EDBT 2011)*:
//!
//! * An **event** is a tuple with schema `E = (A1, …, Al, T)` where
//!   `A1, …, Al` are non-temporal attributes and `T` is a temporal attribute
//!   holding the occurrence time drawn from a discrete, ordered time domain.
//! * An **event relation** is a set of events totally ordered by `T`
//!   (ties are broken by insertion order, which matters for the duplicated
//!   data sets D2–D5 of the paper's evaluation).
//!
//! The model is deliberately engine-agnostic: the pattern compiler
//! (`ses-pattern`) resolves attribute *names* against a [`Schema`] once, and
//! the matching engine (`ses-core`) then works with dense [`AttrId`]s and
//! borrowed [`Event`]s only.
//!
//! # Example
//!
//! ```
//! use ses_event::{Schema, AttrType, Relation, Value, Timestamp};
//!
//! let schema = Schema::builder()
//!     .attr("ID", AttrType::Int)
//!     .attr("L", AttrType::Str)
//!     .attr("V", AttrType::Float)
//!     .build()
//!     .unwrap();
//!
//! let mut rel = Relation::new(schema);
//! rel.push_values(Timestamp::new(9), [Value::from(1), Value::from("C"), Value::from(1672.5)])
//!     .unwrap();
//! assert_eq!(rel.len(), 1);
//! assert_eq!(rel.event(0u32.into()).value_by_name("L", rel.schema()), Some(&Value::from("C")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod event;
mod relation;
mod schema;
mod time;
mod value;
mod view;

pub use error::EventError;
pub use event::{Event, EventId};
pub use relation::{Relation, RelationBuilder};
pub use schema::{AttrDef, AttrId, AttrType, Schema, SchemaBuilder};
pub use time::{Duration, Timestamp};
pub use value::{CmpOp, Value};
pub use view::{partition_views, EventSource, PartitionKey, RelationView};
