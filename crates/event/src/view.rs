//! Zero-copy relation views and key-based partitioning.
//!
//! Partition-based evaluation splits a relation per distinct value of a
//! key attribute and matches each slice independently. The naive split
//! clones every [`Event`] into a fresh per-key [`Relation`]; a
//! [`RelationView`] instead records only the *ids* of the member events
//! and borrows everything else from the parent relation — partitioning a
//! relation allocates index vectors and nothing more.
//!
//! The matching engine accepts any [`EventSource`], so a view is matched
//! exactly like a relation: view-local event ids are dense
//! `0..view.len()`, and [`RelationView::global_id`] maps a local id back
//! to the parent relation's id when results must be expressed globally.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{AttrId, Event, EventId, Relation, Schema, Value};

/// Read access to a chronologically ordered sequence of events — the
/// engine-facing common surface of [`Relation`] and [`RelationView`].
///
/// Event ids are dense indices `0..len()` in chronological order (for an
/// eviction-compacted [`Relation`], `first_index()..first_index()+len()`).
pub trait EventSource {
    /// The schema shared by all events.
    fn schema(&self) -> &Schema;
    /// Number of accessible events.
    fn len(&self) -> usize;
    /// `true` iff the source holds no events.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Index of the first accessible event (non-zero only for relations
    /// that evicted a prefix).
    fn first_index(&self) -> usize;
    /// The event with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    fn event(&self, id: EventId) -> &Event;
}

impl EventSource for Relation {
    fn schema(&self) -> &Schema {
        Relation::schema(self)
    }
    fn len(&self) -> usize {
        Relation::len(self)
    }
    fn first_index(&self) -> usize {
        Relation::first_index(self)
    }
    fn event(&self, id: EventId) -> &Event {
        Relation::event(self, id)
    }
}

/// A zero-copy slice of a parent [`Relation`]: an ordered set of event
/// ids plus a borrow of the parent. Views re-number their members with
/// dense local ids `0..len()`; the member events themselves are *not*
/// cloned — [`EventSource::event`] returns references into the parent.
#[derive(Debug, Clone)]
pub struct RelationView<'a> {
    parent: &'a Relation,
    ids: Vec<EventId>,
}

impl<'a> RelationView<'a> {
    /// Builds a view over `parent` from ascending global event ids.
    ///
    /// # Panics
    /// Debug builds assert that `ids` is strictly ascending (which
    /// preserves the parent's chronological order) and in range.
    pub fn new(parent: &'a Relation, ids: Vec<EventId>) -> RelationView<'a> {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "view ids must be strictly ascending"
        );
        debug_assert!(ids.iter().all(|id| id.index() >= parent.first_index()
            && id.index() < parent.first_index() + parent.len()));
        RelationView { parent, ids }
    }

    /// The parent relation this view borrows from.
    pub fn parent(&self) -> &'a Relation {
        self.parent
    }

    /// The member events' ids in the *parent* relation, ascending.
    pub fn ids(&self) -> &[EventId] {
        &self.ids
    }

    /// Maps a view-local event id to the parent relation's id.
    ///
    /// # Panics
    /// Panics if `local` is out of range.
    pub fn global_id(&self, local: EventId) -> EventId {
        self.ids[local.index()]
    }

    /// Iterates `(local id, event)` pairs in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &'a Event)> + '_ {
        self.ids
            .iter()
            .enumerate()
            .map(|(i, &g)| (EventId::from(i), self.parent.event(g)))
    }

    /// Copies the view into an owned [`Relation`] (event payloads stay
    /// shared — [`Event`] clones are `Arc` bumps). The escape hatch for
    /// APIs that need `Relation` ownership, e.g. persisted partitions.
    pub fn materialize(&self) -> Relation {
        let mut rel = Relation::new(self.parent.schema().clone());
        for &id in &self.ids {
            rel.push_event(self.parent.event(id).clone())
                .expect("ascending view ids preserve chronological order");
        }
        rel
    }
}

impl EventSource for RelationView<'_> {
    fn schema(&self) -> &Schema {
        self.parent.schema()
    }
    fn len(&self) -> usize {
        self.ids.len()
    }
    fn first_index(&self) -> usize {
        0
    }
    fn event(&self, id: EventId) -> &Event {
        self.parent.event(self.ids[id.index()])
    }
}

/// A hashable view of a partitioning attribute's value. [`Value`] itself
/// is not `Hash` (floats), so partitioning hashes this instead — without
/// per-event allocation: ints, bools, and floats copy bits, and strings
/// bump the existing `Arc` refcount.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PartitionKey {
    /// An integer key.
    Int(i64),
    /// Float partitions compare by bit pattern — exact-value grouping,
    /// which is the only sensible equality for a partition key.
    Bits(u64),
    /// A string key (shares the value's `Arc`).
    Str(Arc<str>),
    /// A boolean key.
    Bool(bool),
}

impl PartitionKey {
    /// The partition key of a value.
    pub fn of(value: &Value) -> PartitionKey {
        match value {
            Value::Int(i) => PartitionKey::Int(*i),
            Value::Float(f) => PartitionKey::Bits(f.to_bits()),
            Value::Str(s) => PartitionKey::Str(Arc::clone(s)),
            Value::Bool(b) => PartitionKey::Bool(*b),
        }
    }
}

/// Splits `relation` into one zero-copy [`RelationView`] per distinct
/// value of `key`, in first-occurrence order of the key. Each view's ids
/// are ascending, so every partition preserves chronological order; the
/// partitions' id sets are disjoint and cover the relation.
pub fn partition_views(relation: &Relation, key: AttrId) -> Vec<(Value, RelationView<'_>)> {
    let mut index: HashMap<PartitionKey, usize> = HashMap::new();
    let mut parts: Vec<(Value, Vec<EventId>)> = Vec::new();
    for (id, event) in relation.iter() {
        let value = event.value(key);
        let slot = *index.entry(PartitionKey::of(value)).or_insert_with(|| {
            parts.push((value.clone(), Vec::new()));
            parts.len() - 1
        });
        parts[slot].1.push(id);
    }
    parts
        .into_iter()
        .map(|(value, ids)| (value, RelationView::new(relation, ids)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Timestamp};

    fn sample() -> Relation {
        let schema = Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for (t, id, l) in [(0, 1, "A"), (1, 2, "A"), (2, 1, "B"), (3, 2, "B")] {
            rel.push_values(Timestamp::new(t), [Value::from(id), Value::from(l)])
                .unwrap();
        }
        rel
    }

    #[test]
    fn views_split_without_cloning_events() {
        let rel = sample();
        let key = rel.schema().attr_id("ID").unwrap();
        let parts = partition_views(&rel, key);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, Value::from(1));
        assert_eq!(parts[0].1.ids(), &[EventId(0), EventId(2)]);
        assert_eq!(parts[1].1.ids(), &[EventId(1), EventId(3)]);
        // Zero-copy: the view returns the *same* event object the parent
        // holds, not a clone.
        for (_, view) in &parts {
            for (local, event) in view.iter() {
                let global = view.global_id(local);
                assert!(std::ptr::eq(event, rel.event(global)));
            }
        }
    }

    #[test]
    fn view_is_an_event_source_with_local_ids() {
        let rel = sample();
        let key = rel.schema().attr_id("ID").unwrap();
        let parts = partition_views(&rel, key);
        let view = &parts[1].1;
        assert_eq!(EventSource::len(view), 2);
        assert_eq!(EventSource::first_index(view), 0);
        assert_eq!(view.event(EventId(0)).ts(), Timestamp::new(1));
        assert_eq!(view.event(EventId(1)).ts(), Timestamp::new(3));
    }

    #[test]
    fn materialize_round_trips() {
        let rel = sample();
        let key = rel.schema().attr_id("L").unwrap();
        let parts = partition_views(&rel, key);
        let owned = parts[0].1.materialize();
        assert_eq!(owned.len(), 2);
        assert_eq!(owned.event(EventId(0)).ts(), Timestamp::new(0));
        // Payloads stay shared with the parent's events.
        assert!(std::ptr::eq(
            owned.event(EventId(0)).values().as_ptr(),
            rel.event(EventId(0)).values().as_ptr()
        ));
    }

    #[test]
    fn partition_keys_group_exact_values() {
        let a = PartitionKey::of(&Value::from("web-1"));
        assert_eq!(a, PartitionKey::of(&Value::from("web-1")));
        assert_ne!(a, PartitionKey::of(&Value::from("web-2")));
        assert_ne!(
            PartitionKey::of(&Value::Float(0.0)),
            PartitionKey::of(&Value::Float(-0.0)),
            "distinct bit patterns are distinct partitions"
        );
        assert_eq!(PartitionKey::of(&Value::Int(3)), PartitionKey::Int(3));
    }

    #[test]
    fn empty_relation_has_no_partitions() {
        let schema = Schema::builder().attr("ID", AttrType::Int).build().unwrap();
        let rel = Relation::new(schema);
        assert!(partition_views(&rel, AttrId(0)).is_empty());
    }
}
