//! Self-contained CSV serialization of event relations.
//!
//! The format is a plain CSV file whose first line is a typed header:
//!
//! ```text
//! ID:INT,L:STR,V:FLOAT,U:STR,T
//! 1,C,1672.5,mg,9
//! 1,B,0,WHO-Tox,10
//! ```
//!
//! * one column per schema attribute as `name:TYPE`
//!   (`INT|FLOAT|STR|BOOL`), plus the trailing temporal column `T`
//!   (integer ticks);
//! * string values containing `,`, `"`, or newlines are double-quoted
//!   with `""` escaping (the record-based reader supports embedded
//!   newlines inside quoted fields);
//! * rows must be in non-decreasing `T` order (the writer emits them in
//!   relation order, which guarantees this).

use std::io::{BufRead, Write};

use ses_event::{AttrType, Relation, Schema, Timestamp, Value};

use crate::StoreError;

/// Writes a relation as CSV.
pub fn write_csv<W: Write>(relation: &Relation, mut out: W) -> Result<(), StoreError> {
    let schema = relation.schema();
    let mut header = String::new();
    for (i, attr) in schema.attrs().iter().enumerate() {
        if i > 0 {
            header.push(',');
        }
        header.push_str(&attr.name);
        header.push(':');
        header.push_str(&attr.ty.to_string());
    }
    if !schema.is_empty() {
        header.push(',');
    }
    header.push('T');
    writeln!(out, "{header}")?;

    for (_, event) in relation.iter() {
        let mut row = String::new();
        for (i, v) in event.values().iter().enumerate() {
            if i > 0 {
                row.push(',');
            }
            row.push_str(&field_to_csv(v));
        }
        if !event.values().is_empty() {
            row.push(',');
        }
        row.push_str(&event.ts().ticks().to_string());
        writeln!(out, "{row}")?;
    }
    Ok(())
}

/// Reads a relation from CSV, inferring the schema from the typed header.
///
/// The reader is record-based, not line-based: quoted fields may contain
/// commas, escaped quotes (`""`), and embedded newlines (which the writer
/// produces for such strings).
pub fn read_csv<R: BufRead>(mut input: R) -> Result<Relation, StoreError> {
    let mut text = String::new();
    input.read_to_string(&mut text)?;
    let mut records = RecordReader::new(&text);

    let header = records
        .next_record()
        .map_err(|(line, message)| StoreError::Parse { line, message })?
        .ok_or_else(|| StoreError::Parse {
            line: 1,
            message: "empty file (missing header)".into(),
        })?;
    let schema = parse_header(&header.fields.join(","))?;

    let mut relation = Relation::new(schema.clone());
    loop {
        let record = match records.next_record() {
            Ok(Some(r)) => r,
            Ok(None) => break,
            Err((line, message)) => return Err(StoreError::Parse { line, message }),
        };
        let (fields, line_no) = (record.fields, record.line);
        if fields.len() == 1 && fields[0].trim().is_empty() {
            continue; // blank line
        }
        if fields.len() != schema.len() + 1 {
            return Err(StoreError::Parse {
                line: line_no,
                message: format!(
                    "expected {} fields, found {}",
                    schema.len() + 1,
                    fields.len()
                ),
            });
        }
        let mut values = Vec::with_capacity(schema.len());
        for (i, field) in fields[..schema.len()].iter().enumerate() {
            let ty = schema.attrs()[i].ty;
            values.push(parse_value(field, ty).map_err(|message| StoreError::Parse {
                line: line_no,
                message,
            })?);
        }
        let ts: i64 = fields[schema.len()]
            .trim()
            .parse()
            .map_err(|_| StoreError::Parse {
                line: line_no,
                message: format!("invalid timestamp `{}`", fields[schema.len()]),
            })?;
        relation.push_values(Timestamp::new(ts), values)?;
    }
    Ok(relation)
}

/// One parsed CSV record and the line it started on.
struct Record {
    fields: Vec<String>,
    line: usize,
}

/// Record-based CSV tokenizer: `,` separates fields, an unquoted newline
/// separates records, `"…"` quoting supports commas, `""` escapes, and
/// embedded newlines.
struct RecordReader<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    done: bool,
}

impl<'a> RecordReader<'a> {
    fn new(text: &'a str) -> RecordReader<'a> {
        RecordReader {
            chars: text.chars().peekable(),
            line: 1,
            done: false,
        }
    }

    /// Returns the next record, `Ok(None)` at end of input, or
    /// `(line, message)` on malformed quoting.
    fn next_record(&mut self) -> Result<Option<Record>, (usize, String)> {
        if self.done || self.chars.peek().is_none() {
            return Ok(None);
        }
        let start_line = self.line;
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        let mut field_started = false;
        loop {
            let Some(c) = self.chars.next() else {
                if in_quotes {
                    return Err((start_line, "unterminated quoted field".into()));
                }
                self.done = true;
                break;
            };
            if c == '\n' {
                self.line += 1;
            }
            if in_quotes {
                match c {
                    '"' if self.chars.peek() == Some(&'"') => {
                        self.chars.next();
                        field.push('"');
                    }
                    '"' => in_quotes = false,
                    other => field.push(other),
                }
            } else {
                match c {
                    '"' if !field_started => in_quotes = true,
                    '"' => return Err((self.line, "stray quote inside unquoted field".into())),
                    ',' => {
                        fields.push(std::mem::take(&mut field));
                        field_started = false;
                        continue;
                    }
                    '\r' if self.chars.peek() == Some(&'\n') => continue, // CRLF
                    '\n' => break,
                    other => field.push(other),
                }
            }
            field_started = true;
        }
        fields.push(field);
        Ok(Some(Record {
            fields,
            line: start_line,
        }))
    }
}

/// Parses the typed header line into a schema.
pub fn parse_header(header: &str) -> Result<Schema, StoreError> {
    let cols: Vec<&str> = header.trim().split(',').collect();
    let Some((&last, attrs)) = cols.split_last() else {
        return Err(StoreError::Parse {
            line: 1,
            message: "empty header".into(),
        });
    };
    if last != "T" {
        return Err(StoreError::Parse {
            line: 1,
            message: format!("last header column must be `T`, found `{last}`"),
        });
    }
    let mut builder = Schema::builder();
    for col in attrs {
        let Some((name, ty)) = col.split_once(':') else {
            return Err(StoreError::Parse {
                line: 1,
                message: format!("header column `{col}` is not `name:TYPE`"),
            });
        };
        let ty = match ty {
            "INT" => AttrType::Int,
            "FLOAT" => AttrType::Float,
            "STR" => AttrType::Str,
            "BOOL" => AttrType::Bool,
            other => {
                return Err(StoreError::Parse {
                    line: 1,
                    message: format!("unknown type `{other}`"),
                })
            }
        };
        builder = builder.attr(name, ty);
    }
    builder.build().map_err(StoreError::Event)
}

fn parse_value(field: &str, ty: AttrType) -> Result<Value, String> {
    match ty {
        AttrType::Int => field
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("invalid INT `{field}`")),
        AttrType::Float => field
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|f| !f.is_nan())
            .map(Value::Float)
            .ok_or_else(|| format!("invalid FLOAT `{field}`")),
        AttrType::Str => Ok(Value::str(field)),
        AttrType::Bool => match field.trim() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(format!("invalid BOOL `{field}`")),
        },
    }
}

fn field_to_csv(v: &Value) -> String {
    match v {
        Value::Str(s) => quote_if_needed(s),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // Keep a distinguishing decimal point so floats survive a
            // round-trip as floats.
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Value::Bool(b) => b.to_string(),
    }
}

fn quote_if_needed(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::AttrType;

    fn sample_relation() -> Relation {
        let schema = Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .build()
            .unwrap();
        let mut r = Relation::new(schema);
        r.push_values(Timestamp::new(9), [1.into(), "C".into(), 1672.5.into()])
            .unwrap();
        r.push_values(Timestamp::new(10), [1.into(), "B".into(), 0.0.into()])
            .unwrap();
        r
    }

    fn round_trip(r: &Relation) -> Relation {
        let mut buf = Vec::new();
        write_csv(r, &mut buf).unwrap();
        read_csv(&buf[..]).unwrap()
    }

    #[test]
    fn round_trips_basic_relation() {
        let r = sample_relation();
        let rt = round_trip(&r);
        assert_eq!(rt.len(), 2);
        assert!(rt.schema().is_compatible(r.schema()));
        for (a, b) in r.events().iter().zip(rt.events()) {
            assert_eq!(a.ts(), b.ts());
            assert_eq!(a.values(), b.values());
        }
    }

    #[test]
    fn quoting_round_trips() {
        let schema = Schema::builder().attr("S", AttrType::Str).build().unwrap();
        let mut r = Relation::new(schema);
        for (t, s) in [
            (0, "plain"),
            (1, "with,comma"),
            (2, "with\"quote"),
            (3, "both,\"and\",more"),
            (4, ""),
        ] {
            r.push_values(Timestamp::new(t), [Value::str(s)]).unwrap();
        }
        let rt = round_trip(&r);
        for (a, b) in r.events().iter().zip(rt.events()) {
            assert_eq!(a.values(), b.values());
        }
    }

    #[test]
    fn floats_survive_as_floats() {
        let rt = round_trip(&sample_relation());
        // V of the second row is 0.0 and must come back FLOAT, not INT.
        assert!(matches!(
            rt.events()[1].values()[2],
            Value::Float(f) if f == 0.0
        ));
    }

    #[test]
    fn header_errors() {
        assert!(matches!(
            read_csv(&b""[..]),
            Err(StoreError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_csv(&b"ID:INT,L:STR\n"[..]), // missing T
            Err(StoreError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_csv(&b"ID:WAT,T\n"[..]),
            Err(StoreError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_csv(&b"IDINT,T\n"[..]),
            Err(StoreError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn row_errors_carry_line_numbers() {
        let data = b"ID:INT,T\n1,5\nnope,6\n";
        let err = read_csv(&data[..]).unwrap_err();
        assert!(matches!(err, StoreError::Parse { line: 3, .. }), "{err}");

        let data = b"ID:INT,T\n1,5,extra\n";
        assert!(matches!(
            read_csv(&data[..]).unwrap_err(),
            StoreError::Parse { line: 2, .. }
        ));
    }

    #[test]
    fn out_of_order_rows_rejected() {
        let data = b"ID:INT,T\n1,5\n1,4\n";
        assert!(matches!(
            read_csv(&data[..]).unwrap_err(),
            StoreError::Event(ses_event::EventError::OutOfOrder { .. })
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let data = b"ID:INT,T\n1,5\n\n2,6\n";
        assert_eq!(read_csv(&data[..]).unwrap().len(), 2);
    }

    #[test]
    fn bool_values() {
        let schema = Schema::builder().attr("B", AttrType::Bool).build().unwrap();
        let mut r = Relation::new(schema);
        r.push_values(Timestamp::new(0), [Value::Bool(true)])
            .unwrap();
        r.push_values(Timestamp::new(1), [Value::Bool(false)])
            .unwrap();
        let rt = round_trip(&r);
        assert_eq!(rt.events()[0].values()[0], Value::Bool(true));
        assert_eq!(rt.events()[1].values()[0], Value::Bool(false));
    }

    #[test]
    fn record_reader_handles_escapes_and_newlines() {
        let mut r = RecordReader::new("a,\"b,c\",\"d\"\"e\"\nx,\"multi\nline\",z\n");
        let first = r.next_record().unwrap().unwrap();
        assert_eq!(first.fields, vec!["a", "b,c", "d\"e"]);
        assert_eq!(first.line, 1);
        let second = r.next_record().unwrap().unwrap();
        assert_eq!(second.fields, vec!["x", "multi\nline", "z"]);
        assert_eq!(second.line, 2);
        assert!(r.next_record().unwrap().is_none());

        assert!(RecordReader::new("\"open").next_record().is_err());
        assert!(RecordReader::new("ab\"cd").next_record().is_err());
    }

    #[test]
    fn embedded_newlines_round_trip() {
        let schema = Schema::builder().attr("S", AttrType::Str).build().unwrap();
        let mut rel = Relation::new(schema);
        rel.push_values(Timestamp::new(0), [Value::str("line1\nline2")])
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let rt = read_csv(&buf[..]).unwrap();
        assert_eq!(rt.events()[0].values()[0], Value::str("line1\nline2"));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn full_schema() -> Schema {
            Schema::builder()
                .attr("I", AttrType::Int)
                .attr("F", AttrType::Float)
                .attr("S", AttrType::Str)
                .attr("B", AttrType::Bool)
                .build()
                .unwrap()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Arbitrary relations (including nasty strings with commas,
            /// quotes, and newlines) survive a CSV round trip bit-exactly.
            #[test]
            fn csv_round_trip(
                rows in proptest::collection::vec(
                    (
                        any::<i64>(),
                        -1.0e9f64..1.0e9,
                        "[ -~\n]{0,12}", // printable ASCII + newline
                        any::<bool>(),
                        0i64..1000,
                    ),
                    0..20,
                )
            ) {
                let mut rel = Relation::new(full_schema());
                let mut t = 0i64;
                for (i, f, s, b, gap) in rows {
                    t += gap;
                    rel.push_values(
                        Timestamp::new(t),
                        [
                            Value::Int(i),
                            Value::Float(f),
                            Value::str(&s),
                            Value::Bool(b),
                        ],
                    )
                    .unwrap();
                }
                let mut buf = Vec::new();
                write_csv(&rel, &mut buf).unwrap();
                let rt = read_csv(&buf[..]).unwrap();
                prop_assert_eq!(rt.len(), rel.len());
                for (a, b) in rel.events().iter().zip(rt.events()) {
                    prop_assert_eq!(a.ts(), b.ts());
                    prop_assert_eq!(a.values(), b.values());
                }
            }
        }
    }
}
