//! A thread-safe catalog of named event stores.
//!
//! The experiment harness sweeps parameters across worker threads that
//! share the base data sets (D1…D5); the catalog hands out cheap
//! `Arc<EventStore>` clones under a `parking_lot` read-write lock.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{EventStore, StoreError};

/// A shared, named collection of event stores.
#[derive(Debug, Default)]
pub struct Catalog {
    stores: RwLock<HashMap<String, Arc<EventStore>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers (or replaces) a store under its own name.
    pub fn insert(&self, store: EventStore) -> Arc<EventStore> {
        let arc = Arc::new(store);
        self.stores
            .write()
            .insert(arc.name().to_string(), Arc::clone(&arc));
        arc
    }

    /// Looks up a store by name.
    pub fn get(&self, name: &str) -> Result<Arc<EventStore>, StoreError> {
        self.stores
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    /// Removes a store; returns it if present.
    pub fn remove(&self, name: &str) -> Option<Arc<EventStore>> {
        self.stores.write().remove(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.stores.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered stores.
    pub fn len(&self) -> usize {
        self.stores.read().len()
    }

    /// `true` iff no stores are registered.
    pub fn is_empty(&self) -> bool {
        self.stores.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, Relation, Schema};

    fn store(name: &str) -> EventStore {
        let schema = Schema::builder().attr("X", AttrType::Int).build().unwrap();
        EventStore::new(name, Relation::new(schema))
    }

    #[test]
    fn insert_get_remove() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        cat.insert(store("a"));
        cat.insert(store("b"));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.names(), vec!["a", "b"]);
        assert_eq!(cat.get("a").unwrap().name(), "a");
        assert!(matches!(cat.get("zz"), Err(StoreError::NotFound(_))));
        assert!(cat.remove("a").is_some());
        assert!(cat.remove("a").is_none());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn insert_replaces() {
        let cat = Catalog::new();
        cat.insert(store("x"));
        cat.insert(store("x"));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let cat = Arc::new(Catalog::new());
        cat.insert(store("shared"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cat = Arc::clone(&cat);
                std::thread::spawn(move || cat.get("shared").unwrap().name().to_string())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), "shared");
        }
    }
}
