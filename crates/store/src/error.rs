//! Store errors.

use std::fmt;

/// Errors raised by the event store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// CSV syntax or value parse failure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The file's header schema does not match the expected schema.
    SchemaMismatch {
        /// Expected schema rendering.
        expected: String,
        /// Schema found in the file.
        found: String,
    },
    /// A snapshot or checkpoint payload failed validation.
    Corrupt {
        /// Explanation.
        message: String,
    },
    /// Event-model violation while assembling the relation.
    Event(ses_event::EventError),
    /// A named store was not found in the catalog.
    NotFound(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Parse { line, message } => write!(f, "line {line}: {message}"),
            StoreError::SchemaMismatch { expected, found } => {
                write!(f, "schema mismatch: expected {expected}, found {found}")
            }
            StoreError::Corrupt { message } => write!(f, "corrupt snapshot: {message}"),
            StoreError::Event(e) => write!(f, "event error: {e}"),
            StoreError::NotFound(name) => write!(f, "no store named `{name}`"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Event(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ses_event::EventError> for StoreError {
    fn from(e: ses_event::EventError) -> Self {
        StoreError::Event(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StoreError::Parse {
            line: 3,
            message: "bad int".into(),
        };
        assert_eq!(e.to_string(), "line 3: bad int");
        assert!(StoreError::NotFound("x".into()).to_string().contains("`x`"));
    }
}
