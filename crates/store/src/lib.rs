//! Event store substrate for SES pattern matching.
//!
//! The paper's evaluation reads its event relation from an Oracle 11.1
//! database over OCI, strictly in timestamp order. This crate provides the
//! equivalent tuple-source contract without the external dependency:
//!
//! * [`EventStore`] — a named, in-memory, time-ordered event relation with
//!   CSV persistence ([`read_csv`]/[`write_csv`] use a typed header, no
//!   third-party CSV crate);
//! * dataset scaling ([`EventStore::datasets`]) reproducing the paper's
//!   D1…D5 duplication scheme;
//! * [`EventStore::partition_by`] — per-key sub-stores (e.g. one per
//!   patient), used by the partitioning ablation;
//! * [`Catalog`] — a thread-safe name → store registry for the experiment
//!   harness;
//! * [`EventLog`] — an append-only, segmented, checksummed binary log
//!   with torn-tail recovery and time-range pruning, for workloads that
//!   outgrow CSV;
//! * [`CheckpointStore`] + [`MatchLog`] — the durability subsystem:
//!   atomic, checksummed matcher checkpoints (serialized with the
//!   [`codec`] module's versioned binary format) and a crash-tolerant
//!   match sink, composing with [`EventLog`] replay for exactly-once
//!   recovery (see `docs/durability.md`);
//! * [`SharedEventLog`] + [`SharedMatchLog`] — cloneable mutex-serialized
//!   handles giving many producer threads (the match server's client
//!   connections) a safe total order over one log (see `docs/server.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod checkpoint;
pub mod codec;
mod csv;
mod error;
mod log;
mod shared;
mod store;

pub use catalog::Catalog;
pub use checkpoint::{CheckpointInfo, CheckpointStore, LoadedCheckpoint, MatchLog};
pub use codec::{decode_snapshot, encode_snapshot};
pub use csv::{parse_header, read_csv, write_csv};
pub use error::StoreError;
pub use log::{EventLog, LogConfig};
pub use shared::{SharedEventLog, SharedMatchLog};
pub use store::{EventStore, StoreStats};
