//! The event store: a named, persistent event relation with scan,
//! partition, and dataset-scaling operations.
//!
//! The paper keeps its input relation "in an Oracle database, Enterprise
//! Edition 11.1, which is accessed over the OCI API" and reads it in
//! timestamp order. [`EventStore`] provides the same contract — a
//! time-ordered tuple source — from an in-memory relation with CSV
//! persistence.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use ses_event::{AttrId, Duration, Relation, Schema, Value};

use crate::csv::{read_csv, write_csv};
use crate::StoreError;

/// A named event relation with persistence and analytical helpers.
#[derive(Debug, Clone)]
pub struct EventStore {
    name: String,
    relation: Relation,
}

impl EventStore {
    /// Wraps a relation.
    pub fn new(name: impl Into<String>, relation: Relation) -> EventStore {
        EventStore {
            name: name.into(),
            relation,
        }
    }

    /// Loads a store from a CSV file (schema inferred from the typed
    /// header); the store is named after the file stem.
    pub fn load_csv(path: impl AsRef<Path>) -> Result<EventStore, StoreError> {
        let path = path.as_ref();
        let relation = read_csv(BufReader::new(File::open(path)?))?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "store".to_string());
        Ok(EventStore { name, relation })
    }

    /// Loads a store, validating the file's schema against `expected`.
    pub fn load_csv_with_schema(
        path: impl AsRef<Path>,
        expected: &Schema,
    ) -> Result<EventStore, StoreError> {
        let store = EventStore::load_csv(path)?;
        if !store.relation.schema().is_compatible(expected) {
            return Err(StoreError::SchemaMismatch {
                expected: expected.to_string(),
                found: store.relation.schema().to_string(),
            });
        }
        Ok(store)
    }

    /// Writes the store as CSV.
    pub fn save_csv(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut out = BufWriter::new(File::create(path)?);
        write_csv(&self.relation, &mut out)
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying relation (the matcher's input).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Consumes the store, returning the relation.
    pub fn into_relation(self) -> Relation {
        self.relation
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.relation.len()
    }

    /// `true` iff the store holds no events.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Window size `W` for window width `τ` (Definition 5).
    pub fn window_size(&self, tau: Duration) -> usize {
        self.relation.window_size(tau)
    }

    /// The paper's scaled data sets: `datasets(5)` returns D1…D5 where Dk
    /// contains every event `k` times. Names are suffixed `-D1` … `-Dk`.
    pub fn datasets(&self, max_k: usize) -> Vec<EventStore> {
        (1..=max_k)
            .map(|k| EventStore {
                name: format!("{}-D{k}", self.name),
                relation: self.relation.duplicate(k),
            })
            .collect()
    }

    /// Splits the store by the distinct values of `attr` without copying
    /// any event payload: each partition is an index vector over this
    /// store's relation (see [`ses_event::RelationView`]). Partitions
    /// preserve chronological order and are returned in first-occurrence
    /// order of their key. This is what partitioned matching consumes;
    /// use [`EventStore::partition_by`] when owned sub-stores are needed.
    pub fn partition_views(&self, attr: AttrId) -> Vec<(Value, ses_event::RelationView<'_>)> {
        ses_event::partition_views(&self.relation, attr)
    }

    /// Splits the store by the distinct values of `attr` (e.g. one
    /// sub-store per patient) into owned sub-stores. Partitions preserve
    /// chronological order and are returned in first-occurrence order of
    /// their key.
    pub fn partition_by(&self, attr: AttrId) -> Vec<(Value, EventStore)> {
        self.partition_views(attr)
            .into_iter()
            .enumerate()
            .map(|(i, (k, view))| {
                (
                    k.clone(),
                    EventStore {
                        name: format!("{}[{}={}]", self.name, i, k),
                        relation: view.materialize(),
                    },
                )
            })
            .collect()
    }

    /// The sub-store of events with `lo ≤ T ≤ hi` (inclusive).
    pub fn between(&self, lo: ses_event::Timestamp, hi: ses_event::Timestamp) -> EventStore {
        EventStore {
            name: format!("{}[{}..{}]", self.name, lo.ticks(), hi.ticks()),
            relation: self.relation.between(lo, hi),
        }
    }

    /// Quick descriptive statistics used by `ses-cli stats`.
    pub fn stats(&self, tau: Duration) -> StoreStats {
        StoreStats {
            events: self.relation.len(),
            attributes: self.relation.schema().len(),
            first_ts: self.relation.first_ts().map(|t| t.ticks()),
            last_ts: self.relation.last_ts().map(|t| t.ticks()),
            window_size: self.relation.window_size(tau),
        }
    }
}

/// Descriptive statistics of a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of events.
    pub events: usize,
    /// Number of non-temporal attributes.
    pub attributes: usize,
    /// First timestamp (ticks), if any.
    pub first_ts: Option<i64>,
    /// Last timestamp (ticks), if any.
    pub last_ts: Option<i64>,
    /// Window size `W` for the queried `τ`.
    pub window_size: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, Timestamp};

    fn sample() -> EventStore {
        let schema = Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap();
        let mut r = Relation::new(schema);
        for (t, id, l) in [(0, 1, "A"), (1, 2, "B"), (2, 1, "C"), (3, 2, "D")] {
            r.push_values(Timestamp::new(t), [Value::from(id), Value::from(l)])
                .unwrap();
        }
        EventStore::new("sample", r)
    }

    #[test]
    fn csv_file_round_trip() {
        let store = sample();
        let dir = std::env::temp_dir().join("ses-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        store.save_csv(&path).unwrap();
        let loaded = EventStore::load_csv(&path).unwrap();
        assert_eq!(loaded.name(), "sample");
        assert_eq!(loaded.len(), 4);
        assert_eq!(loaded.relation().events()[2].values()[1], Value::from("C"));
        // Schema validation path.
        let ok = EventStore::load_csv_with_schema(&path, store.relation().schema());
        assert!(ok.is_ok());
        let other = Schema::builder().attr("X", AttrType::Int).build().unwrap();
        assert!(matches!(
            EventStore::load_csv_with_schema(&path, &other),
            Err(StoreError::SchemaMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn datasets_scale_like_the_paper() {
        let store = sample();
        let ds = store.datasets(5);
        assert_eq!(ds.len(), 5);
        for (k, d) in ds.iter().enumerate() {
            assert_eq!(d.len(), 4 * (k + 1));
            assert_eq!(d.name(), format!("sample-D{}", k + 1));
            assert_eq!(
                d.window_size(Duration::ticks(3)),
                4 * (k + 1),
                "duplication multiplies W"
            );
        }
    }

    #[test]
    fn partition_by_id() {
        let store = sample();
        let parts = store.partition_by(AttrId(0));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, Value::from(1));
        assert_eq!(parts[0].1.len(), 2);
        assert_eq!(parts[1].0, Value::from(2));
        assert_eq!(parts[1].1.len(), 2);
        // Partition events keep chronological order.
        let p1 = &parts[0].1;
        assert!(p1.relation().events()[0].ts() < p1.relation().events()[1].ts());
        // Partition of empty store.
        let empty = EventStore::new("e", Relation::new(store.relation().schema().clone()));
        assert!(empty.partition_by(AttrId(0)).is_empty());
    }

    #[test]
    fn partition_views_share_the_parent_events() {
        let store = sample();
        let views = store.partition_views(AttrId(0));
        assert_eq!(views.len(), 2);
        for (_, view) in &views {
            for (local, event) in view.iter() {
                // Zero-copy: the view hands out the store's own events.
                assert!(std::ptr::eq(
                    event,
                    store.relation().event(view.global_id(local))
                ));
            }
        }
        // Owned partitions agree with the views they materialize from.
        let owned = store.partition_by(AttrId(0));
        for ((kv, view), (ko, part)) in views.iter().zip(&owned) {
            assert_eq!(kv, ko);
            assert_eq!(view.ids().len(), part.len());
        }
        assert_eq!(owned[0].1.name(), "sample[0=1]");
    }

    #[test]
    fn between_slices_by_time() {
        let store = sample();
        let mid = store.between(Timestamp::new(1), Timestamp::new(2));
        assert_eq!(mid.len(), 2);
        assert_eq!(mid.name(), "sample[1..2]");
        assert!(store
            .between(Timestamp::new(10), Timestamp::new(20))
            .is_empty());
    }

    #[test]
    fn stats_summary() {
        let s = sample().stats(Duration::ticks(1));
        assert_eq!(
            s,
            StoreStats {
                events: 4,
                attributes: 2,
                first_ts: Some(0),
                last_ts: Some(3),
                window_size: 2,
            }
        );
    }
}
