//! Thread-shared handles over the append-only logs.
//!
//! The match server's ingestion path has many producer threads (one per
//! client connection) and one durability driver, all touching the same
//! [`EventLog`] and [`MatchLog`]. Neither log is internally synchronized
//! — both hand out `&mut` methods — so concurrent writers need an
//! external discipline. [`SharedEventLog`] and [`SharedMatchLog`] provide
//! it: cheap cloneable handles over one mutex-guarded log, serializing
//! every append into a total order.
//!
//! Two properties make the mutex the *whole* discipline rather than just
//! a data-race guard:
//!
//! * **Framing is transactional per append.** A record (or match line)
//!   is written with a single buffered `write_all`, so the on-disk
//!   suffix after a crash is a clean prefix of the serialized append
//!   order plus at most one torn record — exactly what the logs'
//!   torn-tail recovery truncates away on reopen. Interleaving appends
//!   from many threads therefore never produces an *interior* corrupt
//!   record.
//! * **Timestamp monotonicity is decided under the lock.** The event
//!   log refuses out-of-order appends; with concurrent producers the
//!   order of lock acquisition *is* the event order, so
//!   [`SharedEventLog::append_clamped`] resolves cross-producer clock
//!   skew by clamping a stale timestamp forward to the log's floor
//!   while holding the lock. The caller learns the timestamp actually
//!   logged and must feed that (not its original) to the matcher so
//!   replay from the log reproduces the exact same stream.
//!
//! A panicking writer poisons the mutex but not the log: the guard is
//! recovered with [`PoisonError::into_inner`], because a half-finished
//! in-memory buffer is precisely the torn tail the on-disk format
//! already tolerates.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use ses_event::{Relation, Schema, Timestamp, Value};

use crate::checkpoint::MatchLog;
use crate::error::StoreError;
use crate::log::EventLog;

/// A cloneable, mutex-serialized handle to one [`EventLog`].
#[derive(Debug, Clone)]
pub struct SharedEventLog {
    inner: Arc<Mutex<EventLog>>,
}

impl SharedEventLog {
    /// Wraps a log for multi-writer use.
    pub fn new(log: EventLog) -> SharedEventLog {
        SharedEventLog {
            inner: Arc::new(Mutex::new(log)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, EventLog> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one event, failing if `ts` is below the log's floor
    /// (strict producers that must never reorder use this).
    pub fn append(&self, ts: Timestamp, values: impl Into<Vec<Value>>) -> Result<(), StoreError> {
        self.lock().append(ts, values)
    }

    /// Appends one event, clamping `ts` forward to the log's floor if a
    /// faster producer already advanced it. Returns the timestamp
    /// actually logged — the caller must push *that* into the matcher,
    /// so a replay of the log reproduces the stream bit-for-bit.
    pub fn append_clamped(
        &self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<Timestamp, StoreError> {
        let mut log = self.lock();
        let ts = match log.last_ts() {
            Some(floor) if ts < floor => floor,
            _ => ts,
        };
        log.append(ts, values)?;
        Ok(ts)
    }

    /// Flushes buffered appends to the OS.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.lock().sync()
    }

    /// Events appended so far (all writers).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` iff no events were appended.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Number of on-disk segments.
    pub fn segment_count(&self) -> usize {
        self.lock().segment_count()
    }

    /// The log's schema (cloned; the lock is not held across the return).
    pub fn schema(&self) -> Schema {
        self.lock().schema().clone()
    }

    /// Timestamp floor for the next append.
    pub fn last_ts(&self) -> Option<Timestamp> {
        self.lock().last_ts()
    }

    /// Reads the whole log into a relation.
    pub fn scan(&self) -> Result<Relation, StoreError> {
        self.lock().scan()
    }

    /// Reads the events with `lo ≤ T ≤ hi`.
    pub fn scan_range(&self, lo: Timestamp, hi: Timestamp) -> Result<Relation, StoreError> {
        self.lock().scan_range(lo, hi)
    }

    /// Runs `f` with the lock held — for multi-step invariants (e.g.
    /// "append then record the resulting length atomically").
    pub fn with<R>(&self, f: impl FnOnce(&mut EventLog) -> R) -> R {
        f(&mut self.lock())
    }
}

/// A cloneable, mutex-serialized handle to one [`MatchLog`].
#[derive(Debug, Clone)]
pub struct SharedMatchLog {
    inner: Arc<Mutex<MatchLog>>,
}

impl SharedMatchLog {
    /// Wraps a match sink for multi-writer use.
    pub fn new(log: MatchLog) -> SharedMatchLog {
        SharedMatchLog {
            inner: Arc::new(Mutex::new(log)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, MatchLog> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one match line.
    pub fn append(&self, line: &str) -> Result<(), StoreError> {
        self.lock().append(line)
    }

    /// Appends one match line and returns the total line count after it
    /// — the durable cursor a subscriber acknowledges, computed under
    /// the same lock so concurrent appenders see distinct cursors.
    pub fn append_counted(&self, line: &str) -> Result<u64, StoreError> {
        let mut log = self.lock();
        log.append(line)?;
        Ok(log.lines())
    }

    /// Flushes buffered lines to the OS.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.lock().sync()
    }

    /// Complete lines persisted so far.
    pub fn lines(&self) -> u64 {
        self.lock().lines()
    }

    /// Runs `f` with the lock held.
    pub fn with<R>(&self, f: impl FnOnce(&mut MatchLog) -> R) -> R {
        f(&mut self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use ses_event::AttrType;
    use std::thread;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ses-shared-{name}-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn clamped_appends_resolve_cross_producer_skew() {
        let dir = tmp("clamp");
        let log = EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
        let log = SharedEventLog::new(log);
        log.append(Timestamp::new(10), [Value::from(1i64), Value::from("A")])
            .unwrap();
        // A strict append below the floor fails...
        assert!(log
            .append(Timestamp::new(5), [Value::from(2i64), Value::from("B")])
            .is_err());
        // ...a clamped one lands at the floor and reports it.
        let ts = log
            .append_clamped(Timestamp::new(5), [Value::from(2i64), Value::from("B")])
            .unwrap();
        assert_eq!(ts, Timestamp::new(10));
        // In-order clamped appends pass through untouched.
        let ts = log
            .append_clamped(Timestamp::new(12), [Value::from(3i64), Value::from("C")])
            .unwrap();
        assert_eq!(ts, Timestamp::new(12));
        assert_eq!(log.len(), 3);
        let rel = log.scan().unwrap();
        let ticks: Vec<i64> = rel.iter().map(|(_, e)| e.ts().ticks()).collect();
        assert_eq!(ticks, vec![10, 10, 12]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interleaved_writers_with_rotation_yield_a_clean_log() {
        let dir = tmp("interleave");
        // Tiny segments so the two writers force rotations mid-race.
        let cfg = LogConfig {
            max_segment_bytes: 256,
        };
        let log = EventLog::create(&dir, schema(), cfg.clone()).unwrap();
        let shared = SharedEventLog::new(log);
        const PER_WRITER: usize = 500;
        let mut handles = Vec::new();
        for w in 0..2i64 {
            let shared = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..PER_WRITER as i64 {
                    shared
                        .append_clamped(
                            Timestamp::new(i),
                            [Value::from(w * 1_000_000 + i), Value::from("E")],
                        )
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        shared.sync().unwrap();
        assert_eq!(shared.len(), 2 * PER_WRITER);
        assert!(shared.segment_count() > 1, "rotation happened under race");
        // Reopen from disk: every record intact, timestamps non-decreasing,
        // both writers' payloads all present exactly once.
        drop(shared);
        let reopened = EventLog::open(&dir, cfg).unwrap();
        let rel = reopened.scan().unwrap();
        assert_eq!(rel.len(), 2 * PER_WRITER);
        let mut ids: Vec<i64> = rel
            .iter()
            .map(|(_, e)| match e.values()[0] {
                Value::Int(v) => v,
                _ => panic!("int id"),
            })
            .collect();
        let mut last = i64::MIN;
        for (_, e) in rel.iter() {
            assert!(e.ts().ticks() >= last, "monotone on disk");
            last = e.ts().ticks();
        }
        ids.sort_unstable();
        let expect: Vec<i64> = (0..2i64)
            .flat_map(|w| (0..PER_WRITER as i64).map(move |i| w * 1_000_000 + i))
            .collect();
        assert_eq!(ids, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_after_concurrent_writes_leaves_a_clean_prefix() {
        let dir = tmp("torn");
        let cfg = LogConfig {
            max_segment_bytes: 512,
        };
        let log = EventLog::create(&dir, schema(), cfg.clone()).unwrap();
        let shared = SharedEventLog::new(log);
        let mut handles = Vec::new();
        for w in 0..2i64 {
            let shared = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..200i64 {
                    shared
                        .append_clamped(
                            Timestamp::new(i),
                            [Value::from(w * 1_000 + i), Value::from("E")],
                        )
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        shared.sync().unwrap();
        let full = shared.len();
        drop(shared);
        // Crash mid-append: a torn half-record on the newest segment.
        let mut segs: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        let newest = segs.last().unwrap();
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(newest)
            .unwrap();
        f.write_all(&[0x55, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
        drop(f);
        // Reopen: the torn tail is truncated, the prefix survives intact
        // and stays scannable and appendable.
        let reopened = EventLog::open(&dir, cfg).unwrap();
        assert_eq!(reopened.len(), full);
        let rel = reopened.scan_range(Timestamp::MIN, Timestamp::MAX).unwrap();
        assert_eq!(rel.len(), full);
        let shared = SharedEventLog::new(reopened);
        shared
            .append_clamped(Timestamp::new(500), [Value::from(9i64), Value::from("Z")])
            .unwrap();
        assert_eq!(shared.len(), full + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn match_log_concurrent_appends_count_and_persist() {
        let dir = tmp("mlog");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matches.log");
        let log = SharedMatchLog::new(MatchLog::open(&path).unwrap());
        const PER: usize = 300;
        let mut handles = Vec::new();
        for w in 0..2 {
            let log = log.clone();
            handles.push(thread::spawn(move || {
                let mut cursors = Vec::with_capacity(PER);
                for i in 0..PER {
                    cursors.push(log.append_counted(&format!("w{w}-{i}")).unwrap());
                }
                cursors
            }));
        }
        let mut all_cursors: Vec<u64> = Vec::new();
        for h in handles {
            all_cursors.extend(h.join().unwrap());
        }
        log.sync().unwrap();
        assert_eq!(log.lines(), 2 * PER as u64);
        // Cursors computed under the lock are distinct and cover 1..=N.
        all_cursors.sort_unstable();
        let expect: Vec<u64> = (1..=2 * PER as u64).collect();
        assert_eq!(all_cursors, expect);
        // Reopen after a torn final line: the clean prefix is preserved.
        drop(log);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"torn-no-newline").unwrap();
        drop(f);
        let reopened = MatchLog::open(&path).unwrap();
        assert_eq!(reopened.lines(), 2 * PER as u64);
        std::fs::remove_dir_all(&dir).ok();
    }
}
