//! Versioned binary codec for matcher snapshots.
//!
//! Hand-rolled little-endian framing in the same dialect as the
//! [`crate::EventLog`] segment format (length-prefixed variable data,
//! FNV-1a integrity, tagged values), so the two on-disk formats stay
//! mutually legible. The codec is *self-describing* at the value level —
//! each [`Value`] carries its type tag — and schema agreement is
//! enforced one level up by the snapshot fingerprint (see
//! `ses_core::snapshot`).
//!
//! Layout of an encoded [`MatcherSnapshot`] (all integers little-endian):
//!
//! ```text
//! u8 kind                     0 = Stream, 1 = Sharded, 2 = Bank,
//!                             3 = Bank with structural sharing
//! stream  := u64 fingerprint | opt_ts watermark | u8 evict
//!          | u64 evicted | opt_ts last_ts
//!          | u32 n_events  event*      event   := i64 ts | u16 n | value*
//!          | u32 n_instances inst*     inst    := u32 state | u32 n | binding*
//!          | u32 n_pending match*      match   := u32 n | (u32 var, u32 event)*
//!          | u32 n_survivors surv*     surv    := i64 minT | match
//!          | u64 emitted               binding := u32 var | u32 event | i64 ts
//! sharded := u64 fingerprint | u32 key | opt_ts last_ts | u64 next_id
//!          | u64 emitted | u32 n_shards shard*
//! shard   := stream | u32 n_ids u32* | u64 base | u64 peak_omega
//! bank    := opt_ts watermark | opt_ts last_ts | u64 next_id | u64 ties
//!          | u64 emitted | u8 use_index | u32 n_patterns bpat*
//! bpat    := str name | stream | u32 n_ids u32* | u64 base
//!          | u64 peak_omega | u64 hits | u64 skips
//! bank3   := <bank header as above> | u32 n_patterns bpat3*
//!          | u32 n_pools stream*
//! bpat3   := str name | role | u8 has_matcher | stream?
//!          | u32 n_ids u32* | u64 base | u64 peak_omega
//!          | u64 hits | u64 skips
//! role    := 0u8 | 1u8 u32 leader | 2u8 u32 pool
//! opt_ts  := 0u8 | 1u8 i64
//! str     := u32 len | utf8 bytes
//! value   := 0u8 i64 | 1u8 f64 | 2u8 u32 utf8 | 3u8 u8   (the log's tags)
//! ```
//!
//! The file-level framing (magic, format version, checksum) lives in
//! [`crate::CheckpointStore`]; this module only covers the payload.

use ses_core::{
    BankPatternSnapshot, BankRole, BankSnapshot, InstanceSnapshot, MatcherSnapshot, ShardSnapshot,
    ShardedSnapshot, StreamSnapshot,
};
use ses_event::{AttrId, Event, EventId, Timestamp, Value};
use ses_pattern::VarId;

use crate::StoreError;

/// FNV-1a (64-bit) — the workspace's dependency-free integrity check,
/// shared with the event log's record checksums.
pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string (`u32 len | bytes`).
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an optional timestamp (`0u8` or `1u8 i64`).
    pub fn put_opt_ts(&mut self, ts: Option<Timestamp>) {
        match ts {
            None => self.put_u8(0),
            Some(t) => {
                self.put_u8(1);
                self.put_i64(t.ticks());
            }
        }
    }

    /// Appends a tagged [`Value`] using the event log's tag dialect.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.put_u8(0);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(1);
                self.buf.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                self.put_u8(2);
                self.put_str(s);
            }
            Value::Bool(b) => {
                self.put_u8(3);
                self.put_bool(*b);
            }
        }
    }
}

/// A checked little-endian byte cursor; every read fails cleanly at the
/// end of input instead of panicking.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> StoreError {
    StoreError::Corrupt {
        message: format!("snapshot payload truncated at {what}"),
    }
}

impl<'a> Decoder<'a> {
    /// A cursor over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Decoder<'a> {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(truncated(what));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.take(2, "u16")?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(
            self.take(8, "i64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a one-byte `bool`.
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt {
            message: "snapshot string is not UTF-8".into(),
        })
    }

    /// Reads an optional timestamp.
    pub fn get_opt_ts(&mut self) -> Result<Option<Timestamp>, StoreError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(Timestamp::new(self.get_i64()?))),
            tag => Err(StoreError::Corrupt {
                message: format!("invalid option tag {tag}"),
            }),
        }
    }

    /// Reads a tagged [`Value`].
    pub fn get_value(&mut self) -> Result<Value, StoreError> {
        match self.get_u8()? {
            0 => Ok(Value::Int(self.get_i64()?)),
            1 => Ok(Value::Float(f64::from_le_bytes(
                self.take(8, "f64")?.try_into().expect("8 bytes"),
            ))),
            2 => Ok(Value::str(self.get_str()?)),
            3 => Ok(Value::Bool(self.get_bool()?)),
            tag => Err(StoreError::Corrupt {
                message: format!("unknown value tag {tag}"),
            }),
        }
    }

    /// Fails unless every byte was consumed — trailing garbage means the
    /// payload disagrees with its framing.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt {
                message: format!("{} trailing bytes after snapshot payload", self.remaining()),
            });
        }
        Ok(())
    }
}

/// Guards length-prefixed collection reads against hostile counts: a
/// corrupt frame must fail fast, not allocate gigabytes.
fn checked_len(
    n: u32,
    remaining: usize,
    min_item_bytes: usize,
    what: &str,
) -> Result<usize, StoreError> {
    let n = n as usize;
    if n.saturating_mul(min_item_bytes) > remaining {
        return Err(StoreError::Corrupt {
            message: format!("snapshot claims {n} {what}, more than the payload can hold"),
        });
    }
    Ok(n)
}

/// Serializes a snapshot to the payload layout in the module docs.
pub fn encode_snapshot(snapshot: &MatcherSnapshot) -> Vec<u8> {
    let mut e = Encoder::new();
    match snapshot {
        MatcherSnapshot::Stream(s) => {
            e.put_u8(0);
            encode_stream(&mut e, s);
        }
        MatcherSnapshot::Sharded(s) => {
            e.put_u8(1);
            e.put_u64(s.fingerprint);
            e.put_u32(u32::from(s.key.0));
            e.put_opt_ts(s.last_ts);
            e.put_u64(s.next_id);
            e.put_u64(s.emitted);
            e.put_u32(s.shards.len() as u32);
            for shard in &s.shards {
                encode_stream(&mut e, &shard.matcher);
                e.put_u32(shard.ids.len() as u32);
                for id in &shard.ids {
                    e.put_u32(id.0);
                }
                e.put_u64(shard.base);
                e.put_u64(shard.peak_omega);
            }
        }
        MatcherSnapshot::Bank(s) => {
            // A bank without shared structure keeps the original kind-2
            // layout, byte for byte, so pre-sharing checkpoints and
            // their readers stay interchangeable with new ones.
            let shared =
                !s.pools.is_empty() || s.roles.iter().any(|r| !matches!(r, BankRole::Plain));
            e.put_u8(if shared { 3 } else { 2 });
            e.put_opt_ts(s.watermark);
            e.put_opt_ts(s.last_ts);
            e.put_u64(s.next_id);
            e.put_u64(s.ties);
            e.put_u64(s.emitted);
            e.put_bool(s.use_index);
            e.put_u32(s.patterns.len() as u32);
            for (i, p) in s.patterns.iter().enumerate() {
                e.put_str(&p.name);
                if shared {
                    match s.roles.get(i).unwrap_or(&BankRole::Plain) {
                        BankRole::Plain => e.put_u8(0),
                        BankRole::DedupMember { leader } => {
                            e.put_u8(1);
                            e.put_u32(*leader);
                        }
                        BankRole::PrefixMember { pool } => {
                            e.put_u8(2);
                            e.put_u32(*pool);
                        }
                    }
                    match &p.matcher {
                        Some(m) => {
                            e.put_u8(1);
                            encode_stream(&mut e, m);
                        }
                        None => e.put_u8(0),
                    }
                } else {
                    // Every pattern of an unshared bank runs a matcher.
                    encode_stream(
                        &mut e,
                        p.matcher.as_ref().expect("unshared bank pattern matcher"),
                    );
                }
                e.put_u32(p.ids.len() as u32);
                for id in &p.ids {
                    e.put_u32(id.0);
                }
                e.put_u64(p.base);
                e.put_u64(p.peak_omega);
                e.put_u64(p.hits);
                e.put_u64(p.skips);
            }
            if shared {
                e.put_u32(s.pools.len() as u32);
                for pool in &s.pools {
                    encode_stream(&mut e, pool);
                }
            }
        }
    }
    e.into_bytes()
}

fn encode_stream(e: &mut Encoder, s: &StreamSnapshot) {
    e.put_u64(s.fingerprint);
    e.put_opt_ts(s.watermark);
    e.put_bool(s.evict);
    e.put_u64(s.evicted);
    e.put_opt_ts(s.last_ts);
    e.put_u32(s.events.len() as u32);
    for ev in &s.events {
        e.put_i64(ev.ts().ticks());
        e.put_u16(ev.values().len() as u16);
        for v in ev.values() {
            e.put_value(v);
        }
    }
    e.put_u32(s.instances.len() as u32);
    for inst in &s.instances {
        e.put_u32(inst.state);
        e.put_u32(inst.bindings.len() as u32);
        for &(var, event, ts) in &inst.bindings {
            e.put_u32(u32::from(var.0));
            e.put_u32(event.0);
            e.put_i64(ts.ticks());
        }
    }
    e.put_u32(s.pending.len() as u32);
    for m in &s.pending {
        encode_bindings(e, m);
    }
    e.put_u32(s.survivors.len() as u32);
    for (min_ts, m) in &s.survivors {
        e.put_i64(min_ts.ticks());
        encode_bindings(e, m);
    }
    e.put_u64(s.emitted);
}

fn encode_bindings(e: &mut Encoder, bindings: &[(VarId, EventId)]) {
    e.put_u32(bindings.len() as u32);
    for &(var, event) in bindings {
        e.put_u32(u32::from(var.0));
        e.put_u32(event.0);
    }
}

/// Deserializes a snapshot payload; every byte must be consumed.
pub fn decode_snapshot(data: &[u8]) -> Result<MatcherSnapshot, StoreError> {
    let mut d = Decoder::new(data);
    let snapshot = match d.get_u8()? {
        0 => MatcherSnapshot::Stream(decode_stream(&mut d)?),
        1 => {
            let fingerprint = d.get_u64()?;
            let key = d.get_u32()?;
            if key > u32::from(u16::MAX) {
                return Err(StoreError::Corrupt {
                    message: format!("partition key attribute {key} out of range"),
                });
            }
            let last_ts = d.get_opt_ts()?;
            let next_id = d.get_u64()?;
            let emitted = d.get_u64()?;
            let n = checked_len(d.get_u32()?, d.remaining(), 1, "shards")?;
            let mut shards = Vec::with_capacity(n);
            for _ in 0..n {
                let matcher = decode_stream(&mut d)?;
                let n_ids = checked_len(d.get_u32()?, d.remaining(), 4, "shard ids")?;
                let mut ids = Vec::with_capacity(n_ids);
                for _ in 0..n_ids {
                    ids.push(EventId(d.get_u32()?));
                }
                let base = d.get_u64()?;
                let peak_omega = d.get_u64()?;
                shards.push(ShardSnapshot {
                    matcher,
                    ids,
                    base,
                    peak_omega,
                });
            }
            MatcherSnapshot::Sharded(ShardedSnapshot {
                fingerprint,
                key: AttrId(key as u16),
                last_ts,
                next_id,
                emitted,
                shards,
            })
        }
        kind @ (2 | 3) => {
            let shared = kind == 3;
            let watermark = d.get_opt_ts()?;
            let last_ts = d.get_opt_ts()?;
            let next_id = d.get_u64()?;
            let ties = d.get_u64()?;
            let emitted = d.get_u64()?;
            let use_index = d.get_bool()?;
            let n = checked_len(d.get_u32()?, d.remaining(), 4, "bank patterns")?;
            let mut patterns = Vec::with_capacity(n);
            let mut roles = Vec::with_capacity(n);
            for _ in 0..n {
                let name = d.get_str()?;
                let (role, matcher) = if shared {
                    let role = match d.get_u8()? {
                        0 => BankRole::Plain,
                        1 => BankRole::DedupMember {
                            leader: d.get_u32()?,
                        },
                        2 => BankRole::PrefixMember { pool: d.get_u32()? },
                        tag => {
                            return Err(StoreError::Corrupt {
                                message: format!("unknown bank pattern role {tag}"),
                            })
                        }
                    };
                    let matcher = match d.get_u8()? {
                        0 => None,
                        1 => Some(decode_stream(&mut d)?),
                        tag => {
                            return Err(StoreError::Corrupt {
                                message: format!("invalid option tag {tag}"),
                            })
                        }
                    };
                    (role, matcher)
                } else {
                    // Kind 2 predates sharing: every pattern is plain
                    // and carries its matcher inline.
                    (BankRole::Plain, Some(decode_stream(&mut d)?))
                };
                let n_ids = checked_len(d.get_u32()?, d.remaining(), 4, "bank pattern ids")?;
                let mut ids = Vec::with_capacity(n_ids);
                for _ in 0..n_ids {
                    ids.push(EventId(d.get_u32()?));
                }
                let base = d.get_u64()?;
                let peak_omega = d.get_u64()?;
                let hits = d.get_u64()?;
                let skips = d.get_u64()?;
                roles.push(role);
                patterns.push(BankPatternSnapshot {
                    name,
                    matcher,
                    ids,
                    base,
                    peak_omega,
                    hits,
                    skips,
                });
            }
            let mut pools = Vec::new();
            if shared {
                let n_pools = checked_len(d.get_u32()?, d.remaining(), 1, "prefix pools")?;
                pools.reserve(n_pools);
                for _ in 0..n_pools {
                    pools.push(decode_stream(&mut d)?);
                }
            }
            MatcherSnapshot::Bank(BankSnapshot {
                watermark,
                last_ts,
                next_id,
                ties,
                emitted,
                use_index,
                patterns,
                roles,
                pools,
            })
        }
        kind => {
            return Err(StoreError::Corrupt {
                message: format!("unknown snapshot kind {kind}"),
            })
        }
    };
    d.finish()?;
    Ok(snapshot)
}

fn decode_stream(d: &mut Decoder<'_>) -> Result<StreamSnapshot, StoreError> {
    let fingerprint = d.get_u64()?;
    let watermark = d.get_opt_ts()?;
    let evict = d.get_bool()?;
    let evicted = d.get_u64()?;
    let last_ts = d.get_opt_ts()?;
    let n_events = checked_len(d.get_u32()?, d.remaining(), 10, "events")?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let ts = Timestamp::new(d.get_i64()?);
        let n_values = d.get_u16()? as usize;
        let mut values = Vec::with_capacity(n_values);
        for _ in 0..n_values {
            values.push(d.get_value()?);
        }
        events.push(Event::new(ts, values));
    }
    let n_instances = checked_len(d.get_u32()?, d.remaining(), 8, "instances")?;
    let mut instances = Vec::with_capacity(n_instances);
    for _ in 0..n_instances {
        let state = d.get_u32()?;
        let n = checked_len(d.get_u32()?, d.remaining(), 16, "bindings")?;
        let mut bindings = Vec::with_capacity(n);
        for _ in 0..n {
            bindings.push(decode_binding_ts(d)?);
        }
        instances.push(InstanceSnapshot { state, bindings });
    }
    let n_pending = checked_len(d.get_u32()?, d.remaining(), 4, "pending matches")?;
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        pending.push(decode_bindings(d)?);
    }
    let n_survivors = checked_len(d.get_u32()?, d.remaining(), 12, "survivors")?;
    let mut survivors = Vec::with_capacity(n_survivors);
    for _ in 0..n_survivors {
        let min_ts = Timestamp::new(d.get_i64()?);
        survivors.push((min_ts, decode_bindings(d)?));
    }
    let emitted = d.get_u64()?;
    Ok(StreamSnapshot {
        fingerprint,
        watermark,
        evict,
        evicted,
        last_ts,
        events,
        instances,
        pending,
        survivors,
        emitted,
    })
}

fn decode_binding_ts(d: &mut Decoder<'_>) -> Result<(VarId, EventId, Timestamp), StoreError> {
    let (var, event) = decode_binding(d)?;
    let ts = Timestamp::new(d.get_i64()?);
    Ok((var, event, ts))
}

fn decode_binding(d: &mut Decoder<'_>) -> Result<(VarId, EventId), StoreError> {
    let var = d.get_u32()?;
    if var > u32::from(u16::MAX) {
        return Err(StoreError::Corrupt {
            message: format!("variable id {var} out of range"),
        });
    }
    let event = EventId(d.get_u32()?);
    Ok((VarId(var as u16), event))
}

fn decode_bindings(d: &mut Decoder<'_>) -> Result<Vec<(VarId, EventId)>, StoreError> {
    let n = checked_len(d.get_u32()?, d.remaining(), 8, "match bindings")?;
    let mut bindings = Vec::with_capacity(n);
    for _ in 0..n {
        bindings.push(decode_binding(d)?);
    }
    Ok(bindings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> StreamSnapshot {
        StreamSnapshot {
            fingerprint: 0xdead_beef_cafe_f00d,
            watermark: Some(Timestamp::new(42)),
            evict: true,
            evicted: 3,
            last_ts: Some(Timestamp::new(42)),
            events: vec![
                Event::new(
                    Timestamp::new(40),
                    vec![Value::Int(7), Value::str("A"), Value::Float(1.5)],
                ),
                Event::new(
                    Timestamp::new(42),
                    vec![
                        Value::Int(-1),
                        Value::str("commas, \"quotes\"\n"),
                        Value::Bool(true),
                    ],
                ),
            ],
            instances: vec![InstanceSnapshot {
                state: 2,
                bindings: vec![(VarId(0), EventId(3), Timestamp::new(40))],
            }],
            pending: vec![vec![(VarId(1), EventId(3)), (VarId(0), EventId(4))]],
            survivors: vec![(Timestamp::new(39), vec![(VarId(0), EventId(3))])],
            emitted: 9,
        }
    }

    #[test]
    fn stream_snapshot_round_trips() {
        let snap = MatcherSnapshot::Stream(sample_stream());
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn sharded_snapshot_round_trips() {
        let snap = MatcherSnapshot::Sharded(ShardedSnapshot {
            fingerprint: 1,
            key: AttrId(1),
            last_ts: Some(Timestamp::new(100)),
            next_id: 17,
            emitted: 4,
            shards: vec![
                ShardSnapshot {
                    matcher: sample_stream(),
                    ids: vec![EventId(0), EventId(5), EventId(9)],
                    base: 2,
                    peak_omega: 11,
                },
                ShardSnapshot {
                    matcher: StreamSnapshot {
                        events: Vec::new(),
                        instances: Vec::new(),
                        pending: Vec::new(),
                        survivors: Vec::new(),
                        watermark: None,
                        last_ts: None,
                        evicted: 0,
                        emitted: 0,
                        ..sample_stream()
                    },
                    ids: Vec::new(),
                    base: 0,
                    peak_omega: 0,
                },
            ],
        });
        let bytes = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&bytes).unwrap(), snap);
    }

    fn sample_bank() -> MatcherSnapshot {
        MatcherSnapshot::Bank(BankSnapshot {
            watermark: Some(Timestamp::new(50)),
            last_ts: Some(Timestamp::new(42)),
            next_id: 23,
            ties: 2,
            emitted: 6,
            use_index: true,
            patterns: vec![
                BankPatternSnapshot {
                    name: "q-with a space, punctuation…".into(),
                    matcher: Some(sample_stream()),
                    ids: vec![EventId(1), EventId(7), EventId(22)],
                    base: 4,
                    peak_omega: 13,
                    hits: 19,
                    skips: 4,
                },
                BankPatternSnapshot {
                    name: String::new(),
                    matcher: Some(StreamSnapshot {
                        events: Vec::new(),
                        instances: Vec::new(),
                        pending: Vec::new(),
                        survivors: Vec::new(),
                        watermark: None,
                        last_ts: None,
                        evicted: 0,
                        emitted: 0,
                        ..sample_stream()
                    }),
                    ids: Vec::new(),
                    base: 0,
                    peak_omega: 0,
                    hits: 0,
                    skips: 23,
                },
            ],
            roles: vec![BankRole::Plain, BankRole::Plain],
            pools: Vec::new(),
        })
    }

    /// A bank with every sharing role populated: a prefix member, a
    /// dedup member (no matcher of its own), and one prefix pool.
    fn sample_shared_bank() -> MatcherSnapshot {
        let MatcherSnapshot::Bank(mut bank) = sample_bank() else {
            unreachable!()
        };
        bank.patterns[1].matcher = None;
        bank.roles = vec![
            BankRole::PrefixMember { pool: 0 },
            BankRole::DedupMember { leader: 0 },
        ];
        bank.pools = vec![sample_stream()];
        MatcherSnapshot::Bank(bank)
    }

    #[test]
    fn bank_snapshot_round_trips() {
        let snap = sample_bank();
        let bytes = encode_snapshot(&snap);
        // Unshared banks keep the pre-sharing kind-2 layout.
        assert_eq!(bytes[0], 2);
        assert_eq!(decode_snapshot(&bytes).unwrap(), snap);
    }

    #[test]
    fn shared_bank_snapshot_round_trips() {
        let snap = sample_shared_bank();
        let bytes = encode_snapshot(&snap);
        assert_eq!(bytes[0], 3);
        assert_eq!(decode_snapshot(&bytes).unwrap(), snap);
    }

    #[test]
    fn shared_bank_truncation_and_garbage_fail_cleanly() {
        let bytes = encode_snapshot(&sample_shared_bank());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_snapshot(&padded).is_err());
        // An undefined role tag is rejected. The first pattern's role
        // byte sits right after the bank header (44 bytes), the u32
        // pattern count, the u32 name length, and the name itself.
        let name_len = "q-with a space, punctuation…".len();
        let mut hostile = bytes;
        hostile[44 + 4 + 4 + name_len] = 9;
        let err = decode_snapshot(&hostile).unwrap_err();
        assert!(err.to_string().contains("role"), "{err}");
    }

    #[test]
    fn bank_truncation_and_garbage_fail_cleanly() {
        let bytes = encode_snapshot(&sample_bank());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_snapshot(&padded).is_err());
        // A hostile pattern count fails fast instead of allocating.
        // Bank layout: kind(1) watermark(9) last_ts(9) next_id(8)
        // ties(8) emitted(8) use_index(1) → pattern count at offset 44.
        let mut hostile = bytes;
        hostile[44..48].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_snapshot(&hostile).is_err());
    }

    #[test]
    fn truncation_and_garbage_fail_cleanly() {
        let bytes = encode_snapshot(&MatcherSnapshot::Stream(sample_stream()));
        // Every strict prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_snapshot(&padded).is_err());
        // A hostile length prefix fails fast instead of allocating.
        let mut hostile = bytes;
        // Stream layout: kind(1) fingerprint(8) watermark(9) evict(1)
        // evicted(8) last_ts(9) → events count at offset 36.
        hostile[36..40].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_snapshot(&hostile).is_err());
    }

    #[test]
    fn fnv1a_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
