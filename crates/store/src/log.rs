//! Append-only binary event log.
//!
//! A durable, segment-based event store for matching workloads that
//! outgrow CSV: fixed binary framing, per-record checksums, torn-tail
//! recovery on open, and per-segment time ranges so [`EventLog::scan_range`]
//! prunes whole segments.
//!
//! # On-disk format
//!
//! Each segment file `seg-<n>.seslog` is:
//!
//! ```text
//! "SESLOG1\n"                      8-byte magic
//! u16 header_len | header          the typed schema header (CSV syntax)
//! record*                          until EOF
//! ```
//!
//! A record is:
//!
//! ```text
//! u32 payload_len | u64 fnv1a(payload) | payload
//! payload := i64 ts | value*       one tagged value per schema attribute
//! value   := 0u8 i64               INT
//!          | 1u8 f64               FLOAT
//!          | 2u8 u32 utf8-bytes    STR
//!          | 3u8 u8                BOOL
//! ```
//!
//! All integers are little-endian. A partially written or corrupt tail
//! record (crash mid-append) is detected by length/checksum and truncated
//! away when the log is reopened; everything before it is intact.
//!
//! ```
//! use ses_event::{AttrType, Schema, Timestamp, Value};
//! use ses_store::{EventLog, LogConfig};
//!
//! let dir = std::env::temp_dir().join(format!("ses-log-doc-{}", std::process::id()));
//! std::fs::remove_dir_all(&dir).ok();
//! let schema = Schema::builder().attr("L", AttrType::Str).build().unwrap();
//!
//! let mut log = EventLog::create(&dir, schema, LogConfig::default()).unwrap();
//! log.append(Timestamp::new(1), [Value::from("A")]).unwrap();
//! log.append(Timestamp::new(2), [Value::from("B")]).unwrap();
//! log.sync().unwrap();
//!
//! // Reopen and scan.
//! drop(log);
//! let log = EventLog::open(&dir, LogConfig::default()).unwrap();
//! assert_eq!(log.scan().unwrap().len(), 2);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ses_event::{AttrType, Relation, Schema, Timestamp, Value};

use crate::codec::fnv1a;
use crate::csv::parse_header;
use crate::StoreError;

const MAGIC: &[u8; 8] = b"SESLOG1\n";

/// Log configuration.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Rotate to a new segment once the active one exceeds this size.
    pub max_segment_bytes: u64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            // Small enough to exercise rotation in tests; callers tune up.
            max_segment_bytes: 64 * 1024 * 1024,
        }
    }
}

#[derive(Debug, Clone)]
struct SegmentMeta {
    path: PathBuf,
    min_ts: Option<Timestamp>,
    max_ts: Option<Timestamp>,
    events: usize,
    bytes: u64,
}

/// An append-only, segmented, checksummed event log.
#[derive(Debug)]
pub struct EventLog {
    dir: PathBuf,
    schema: Schema,
    config: LogConfig,
    segments: Vec<SegmentMeta>,
    active: File,
    last_ts: Option<Timestamp>,
    header_bytes: Vec<u8>,
}

impl EventLog {
    /// Creates a new log in `dir` (which must be empty or absent).
    pub fn create(
        dir: impl AsRef<Path>,
        schema: Schema,
        config: LogConfig,
    ) -> Result<EventLog, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if std::fs::read_dir(&dir)?.next().is_some() {
            return Err(StoreError::Parse {
                line: 0,
                message: format!("log directory {} is not empty", dir.display()),
            });
        }
        let header_bytes = header_bytes(&schema);
        let mut log = EventLog {
            dir,
            schema,
            config,
            segments: Vec::new(),
            active: File::create("/dev/null")?, // replaced by rotate below
            last_ts: None,
            header_bytes,
        };
        log.rotate()?;
        Ok(log)
    }

    /// Opens an existing log for appending, recovering from a torn tail.
    pub fn open(dir: impl AsRef<Path>, config: LogConfig) -> Result<EventLog, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".seslog"))
            })
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(StoreError::Parse {
                line: 0,
                message: format!("no log segments in {}", dir.display()),
            });
        }

        // A crash during `rotate` can leave a tail segment holding only
        // part of the magic/header preamble, before any record was
        // written. Drop such tails and append to the previous segment —
        // but only while a previous segment exists: a lone torn preamble
        // carries no schema to recover with, so it stays an error.
        while paths.len() > 1 {
            let last = paths.last().expect("non-empty");
            if is_torn_preamble(&std::fs::read(last)?) {
                std::fs::remove_file(last)?;
                paths.pop();
            } else {
                break;
            }
        }

        let mut schema: Option<Schema> = None;
        let mut segments = Vec::with_capacity(paths.len());
        let mut last_ts = None;
        for (i, path) in paths.iter().enumerate() {
            let is_last = i == paths.len() - 1;
            let (seg_schema, meta, seg_last) = read_segment_meta(path, is_last)?;
            match &schema {
                None => schema = Some(seg_schema),
                Some(s) if s.is_compatible(&seg_schema) => {}
                Some(s) => {
                    return Err(StoreError::SchemaMismatch {
                        expected: s.to_string(),
                        found: seg_schema.to_string(),
                    })
                }
            }
            if seg_last.is_some() {
                last_ts = seg_last;
            }
            segments.push(meta);
        }
        let schema = schema.expect("at least one segment");
        let active_path = segments.last().expect("non-empty").path.clone();
        let active = OpenOptions::new().append(true).open(&active_path)?;
        Ok(EventLog {
            header_bytes: header_bytes(&schema),
            dir,
            schema,
            config,
            segments,
            active,
            last_ts,
        })
    }

    /// The log's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of events across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.events).sum()
    }

    /// `true` iff no events have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Appends one event (timestamps must be non-decreasing).
    pub fn append(
        &mut self,
        ts: Timestamp,
        values: impl Into<Vec<Value>>,
    ) -> Result<(), StoreError> {
        let values = values.into();
        self.schema.check_row(&values)?;
        if let Some(last) = self.last_ts {
            if ts < last {
                return Err(StoreError::Event(ses_event::EventError::OutOfOrder {
                    previous: last.ticks(),
                    got: ts.ticks(),
                }));
            }
        }

        let payload = encode_payload(ts, &values);
        let mut frame = BytesMut::with_capacity(payload.len() + 12);
        frame.put_u32_le(payload.len() as u32);
        frame.put_u64_le(fnv1a(&payload));
        frame.put_slice(&payload);
        self.active.write_all(&frame)?;

        let meta = self.segments.last_mut().expect("active segment exists");
        meta.bytes += frame.len() as u64;
        meta.events += 1;
        meta.min_ts = Some(meta.min_ts.map_or(ts, |m| m.min(ts)));
        meta.max_ts = Some(meta.max_ts.map_or(ts, |m| m.max(ts)));
        self.last_ts = Some(ts);

        if meta.bytes >= self.config.max_segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Flushes buffered appends to the OS (call before relying on
    /// durability).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.active.sync_data()?;
        Ok(())
    }

    /// Timestamp of the most recently appended event, if any — the floor
    /// every future append must meet (appends are non-decreasing).
    pub fn last_ts(&self) -> Option<Timestamp> {
        self.last_ts
    }

    /// Reads the whole log into a relation.
    pub fn scan(&self) -> Result<Relation, StoreError> {
        self.scan_range(Timestamp::MIN, Timestamp::MAX)
    }

    /// Reads the events with `lo ≤ T ≤ hi`, skipping segments whose time
    /// range lies entirely outside `[lo, hi]`.
    pub fn scan_range(&self, lo: Timestamp, hi: Timestamp) -> Result<Relation, StoreError> {
        let mut relation = Relation::new(self.schema.clone());
        for seg in &self.segments {
            let (Some(min), Some(max)) = (seg.min_ts, seg.max_ts) else {
                continue; // empty segment
            };
            if max < lo || min > hi {
                continue; // pruned
            }
            read_segment_events(&seg.path, &self.schema, |ts, values| {
                if ts >= lo && ts <= hi {
                    relation
                        .push_values(ts, values)
                        .map_err(StoreError::Event)?;
                }
                Ok(())
            })?;
        }
        Ok(relation)
    }

    /// Starts a fresh segment.
    fn rotate(&mut self) -> Result<(), StoreError> {
        let path = self
            .dir
            .join(format!("seg-{:05}.seslog", self.segments.len()));
        let mut file = File::create(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&self.header_bytes)?;
        let bytes = (MAGIC.len() + self.header_bytes.len()) as u64;
        self.active = file;
        self.segments.push(SegmentMeta {
            path,
            min_ts: None,
            max_ts: None,
            events: 0,
            bytes,
        });
        Ok(())
    }
}

/// `u16 len | header-text` for the schema.
fn header_bytes(schema: &Schema) -> Vec<u8> {
    let mut header = String::new();
    for attr in schema.attrs() {
        header.push_str(&attr.name);
        header.push(':');
        header.push_str(&attr.ty.to_string());
        header.push(',');
    }
    header.push('T');
    let mut out = Vec::with_capacity(header.len() + 2);
    out.extend_from_slice(&(header.len() as u16).to_le_bytes());
    out.extend_from_slice(header.as_bytes());
    out
}

fn encode_payload(ts: Timestamp, values: &[Value]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_i64_le(ts.ticks());
    for v in values {
        match v {
            Value::Int(i) => {
                b.put_u8(0);
                b.put_i64_le(*i);
            }
            Value::Float(f) => {
                b.put_u8(1);
                b.put_f64_le(*f);
            }
            Value::Str(s) => {
                b.put_u8(2);
                b.put_u32_le(s.len() as u32);
                b.put_slice(s.as_bytes());
            }
            Value::Bool(x) => {
                b.put_u8(3);
                b.put_u8(u8::from(*x));
            }
        }
    }
    b.freeze()
}

fn decode_payload(mut buf: &[u8], schema: &Schema) -> Result<(Timestamp, Vec<Value>), String> {
    if buf.remaining() < 8 {
        return Err("payload too short for timestamp".into());
    }
    let ts = Timestamp::new(buf.get_i64_le());
    let mut values = Vec::with_capacity(schema.len());
    for attr in schema.attrs() {
        if buf.remaining() < 1 {
            return Err("payload truncated at value tag".into());
        }
        let tag = buf.get_u8();
        let value = match (tag, attr.ty) {
            (0, AttrType::Int) => {
                if buf.remaining() < 8 {
                    return Err("truncated INT".into());
                }
                Value::Int(buf.get_i64_le())
            }
            (1, AttrType::Float) => {
                if buf.remaining() < 8 {
                    return Err("truncated FLOAT".into());
                }
                Value::Float(buf.get_f64_le())
            }
            (2, AttrType::Str) => {
                if buf.remaining() < 4 {
                    return Err("truncated STR length".into());
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err("truncated STR bytes".into());
                }
                let s = std::str::from_utf8(&buf[..len]).map_err(|_| "invalid utf8")?;
                let v = Value::str(s);
                buf.advance(len);
                v
            }
            (3, AttrType::Bool) => {
                if buf.remaining() < 1 {
                    return Err("truncated BOOL".into());
                }
                Value::Bool(buf.get_u8() != 0)
            }
            (tag, ty) => return Err(format!("value tag {tag} does not match {ty}")),
        };
        values.push(value);
    }
    if buf.has_remaining() {
        return Err("trailing bytes in payload".into());
    }
    Ok((ts, values))
}

/// Reads a segment's schema and metadata; when `recover` is set, a torn
/// or corrupt tail is truncated away (the segment is about to be appended
/// to).
fn read_segment_meta(
    path: &Path,
    recover: bool,
) -> Result<(Schema, SegmentMeta, Option<Timestamp>), StoreError> {
    let mut file = File::open(path)?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    drop(file);

    let (schema, body_start) = parse_segment_header(path, &data)?;

    let mut meta = SegmentMeta {
        path: path.to_path_buf(),
        min_ts: None,
        max_ts: None,
        events: 0,
        bytes: data.len() as u64,
    };
    let mut last_ts = None;
    let mut offset = body_start;
    loop {
        match next_record(&data, offset, &schema) {
            RecordOutcome::Record { ts, next } => {
                meta.min_ts = Some(meta.min_ts.map_or(ts, |m: Timestamp| m.min(ts)));
                meta.max_ts = Some(meta.max_ts.map_or(ts, |m: Timestamp| m.max(ts)));
                meta.events += 1;
                last_ts = Some(ts);
                offset = next;
            }
            RecordOutcome::End => break,
            RecordOutcome::Corrupt(reason) => {
                if recover {
                    // Truncate the torn tail; everything before is intact.
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(offset as u64)?;
                    meta.bytes = offset as u64;
                    break;
                }
                return Err(StoreError::Parse {
                    line: 0,
                    message: format!(
                        "corrupt record in {} at offset {offset}: {reason}",
                        path.display()
                    ),
                });
            }
        }
    }
    Ok((schema, meta, last_ts))
}

/// `true` iff `data` is a strict prefix of a segment preamble
/// (magic + `u16` header length + header text) — the footprint of a
/// crash during segment rotation. A complete preamble with zero records
/// is a valid empty segment, not a torn one.
fn is_torn_preamble(data: &[u8]) -> bool {
    if data.len() < MAGIC.len() {
        return MAGIC.starts_with(data);
    }
    if &data[..MAGIC.len()] != MAGIC {
        return false;
    }
    let Some(len_bytes) = data.get(MAGIC.len()..MAGIC.len() + 2) else {
        return true;
    };
    let header_len = u16::from_le_bytes(len_bytes.try_into().expect("2 bytes")) as usize;
    data.len() < MAGIC.len() + 2 + header_len
}

fn parse_segment_header(path: &Path, data: &[u8]) -> Result<(Schema, usize), StoreError> {
    if data.len() < MAGIC.len() + 2 || &data[..MAGIC.len()] != MAGIC {
        return Err(StoreError::Parse {
            line: 0,
            message: format!("{} is not a SESLOG1 segment", path.display()),
        });
    }
    let header_len = u16::from_le_bytes([data[MAGIC.len()], data[MAGIC.len() + 1]]) as usize;
    let header_start = MAGIC.len() + 2;
    if data.len() < header_start + header_len {
        return Err(StoreError::Parse {
            line: 0,
            message: "truncated segment header".into(),
        });
    }
    let header =
        std::str::from_utf8(&data[header_start..header_start + header_len]).map_err(|_| {
            StoreError::Parse {
                line: 0,
                message: "segment header is not UTF-8".into(),
            }
        })?;
    Ok((parse_header(header)?, header_start + header_len))
}

enum RecordOutcome {
    Record { ts: Timestamp, next: usize },
    End,
    Corrupt(String),
}

fn next_record(data: &[u8], offset: usize, schema: &Schema) -> RecordOutcome {
    if offset == data.len() {
        return RecordOutcome::End;
    }
    if data.len() - offset < 12 {
        return RecordOutcome::Corrupt("truncated frame header".into());
    }
    let len = u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
    let checksum = u64::from_le_bytes(data[offset + 4..offset + 12].try_into().expect("8 bytes"));
    let payload_start = offset + 12;
    if data.len() - payload_start < len {
        return RecordOutcome::Corrupt("truncated payload".into());
    }
    let payload = &data[payload_start..payload_start + len];
    if fnv1a(payload) != checksum {
        return RecordOutcome::Corrupt("checksum mismatch".into());
    }
    match decode_payload(payload, schema) {
        Ok((ts, _)) => RecordOutcome::Record {
            ts,
            next: payload_start + len,
        },
        Err(e) => RecordOutcome::Corrupt(e),
    }
}

fn read_segment_events(
    path: &Path,
    schema: &Schema,
    mut sink: impl FnMut(Timestamp, Vec<Value>) -> Result<(), StoreError>,
) -> Result<(), StoreError> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(0))?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    let (_, body_start) = parse_segment_header(path, &data)?;
    let mut offset = body_start;
    loop {
        match next_record(&data, offset, schema) {
            RecordOutcome::Record { next, .. } => {
                let len = u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes"))
                    as usize;
                let payload = &data[offset + 12..offset + 12 + len];
                let (ts, values) = decode_payload(payload, schema)
                    .map_err(|message| StoreError::Parse { line: 0, message })?;
                sink(ts, values)?;
                offset = next;
            }
            RecordOutcome::End => return Ok(()),
            RecordOutcome::Corrupt(reason) => {
                return Err(StoreError::Parse {
                    line: 0,
                    message: format!(
                        "corrupt record in {} at offset {offset}: {reason}",
                        path.display()
                    ),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .attr("OK", AttrType::Bool)
            .build()
            .unwrap()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ses-log-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn row(i: i64) -> Vec<Value> {
        vec![
            Value::Int(i),
            Value::str(format!("label-{i}")),
            Value::Float(i as f64 * 1.5),
            Value::Bool(i % 2 == 0),
        ]
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut log = EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
        for i in 0..50 {
            log.append(Timestamp::new(i), row(i)).unwrap();
        }
        log.sync().unwrap();
        assert_eq!(log.len(), 50);
        let rel = log.scan().unwrap();
        assert_eq!(rel.len(), 50);
        for (i, e) in rel.events().iter().enumerate() {
            assert_eq!(e.ts(), Timestamp::new(i as i64));
            assert_eq!(e.values(), row(i as i64).as_slice());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_preserves_data_and_order_guard() {
        let dir = temp_dir("reopen");
        {
            let mut log = EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
            for i in 0..10 {
                log.append(Timestamp::new(i * 2), row(i)).unwrap();
            }
            log.sync().unwrap();
        }
        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(log.len(), 10);
        assert!(log.schema().is_compatible(&schema()));
        // The order guard survives reopen.
        assert!(log.append(Timestamp::new(3), row(99)).is_err());
        log.append(Timestamp::new(18), row(99)).unwrap();
        assert_eq!(log.scan().unwrap().len(), 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_and_range_scans_prune() {
        let dir = temp_dir("rotate");
        let config = LogConfig {
            max_segment_bytes: 256, // force frequent rotation
        };
        let mut log = EventLog::create(&dir, schema(), config).unwrap();
        for i in 0..100 {
            log.append(Timestamp::new(i), row(i)).unwrap();
        }
        assert!(log.segment_count() > 3, "got {}", log.segment_count());
        assert_eq!(log.scan().unwrap().len(), 100);

        let mid = log
            .scan_range(Timestamp::new(25), Timestamp::new(30))
            .unwrap();
        assert_eq!(mid.len(), 6);
        assert_eq!(mid.first_ts(), Some(Timestamp::new(25)));
        assert_eq!(mid.last_ts(), Some(Timestamp::new(30)));
        // An empty range.
        assert!(log
            .scan_range(Timestamp::new(1000), Timestamp::new(2000))
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_recovered_on_open() {
        let dir = temp_dir("torn");
        {
            let mut log = EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
            for i in 0..5 {
                log.append(Timestamp::new(i), row(i)).unwrap();
            }
            log.sync().unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the tail.
        let seg = dir.join("seg-00000.seslog");
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(log.len(), 4, "the torn record is dropped");
        // The log is appendable again and the recovered file stays clean.
        log.append(Timestamp::new(100), row(100)).unwrap();
        assert_eq!(log.scan().unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_rotation_header_is_dropped_on_open() {
        // Each shape a crash inside `rotate` can leave behind: an empty
        // file, a prefix of the magic, and a magic with a cut header.
        for torn in [
            &b""[..],
            &MAGIC[..4],
            &MAGIC[..],
            &[&MAGIC[..], &[40u8, 0]].concat(),
        ] {
            let dir = temp_dir("torn-rotate");
            {
                let mut log = EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
                for i in 0..3 {
                    log.append(Timestamp::new(i), row(i)).unwrap();
                }
                log.sync().unwrap();
            }
            std::fs::write(dir.join("seg-00001.seslog"), torn).unwrap();

            let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
            assert_eq!(log.len(), 3, "torn tail segment is dropped");
            assert_eq!(log.segment_count(), 1);
            log.append(Timestamp::new(10), row(10)).unwrap();
            assert_eq!(log.scan().unwrap().len(), 4);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn lone_torn_preamble_stays_an_error() {
        // With no previous segment there is no schema to recover with.
        let dir = temp_dir("torn-lone");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("seg-00000.seslog"), &MAGIC[..5]).unwrap();
        assert!(EventLog::open(&dir, LogConfig::default()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_log_reopens_and_accepts_appends() {
        let dir = temp_dir("empty");
        {
            let log = EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
            assert!(log.is_empty());
        }
        let mut log = EventLog::open(&dir, LogConfig::default()).unwrap();
        assert!(log.is_empty());
        assert!(log.scan().unwrap().is_empty());
        assert!(log
            .scan_range(Timestamp::MIN, Timestamp::MAX)
            .unwrap()
            .is_empty());
        log.append(Timestamp::new(1), row(1)).unwrap();
        assert_eq!(log.scan().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_right_after_rotation_appends_to_fresh_segment() {
        let dir = temp_dir("rollover-reopen");
        let config = LogConfig {
            max_segment_bytes: 1, // every append rotates
        };
        let before;
        {
            let mut log = EventLog::create(&dir, schema(), config.clone()).unwrap();
            for i in 0..4 {
                log.append(Timestamp::new(i), row(i)).unwrap();
            }
            log.sync().unwrap();
            before = log.segment_count();
            // The active segment is freshly rotated and empty.
            assert_eq!(log.segments.last().unwrap().events, 0);
        }
        let mut log = EventLog::open(&dir, config).unwrap();
        assert_eq!(log.segment_count(), before);
        assert_eq!(log.len(), 4);
        log.append(Timestamp::new(9), row(9)).unwrap();
        let rel = log.scan().unwrap();
        assert_eq!(rel.len(), 5);
        assert_eq!(rel.last_ts(), Some(Timestamp::new(9)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_range_endpoints_are_inclusive() {
        let dir = temp_dir("range-endpoints");
        let mut log = EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
        // Ties at both endpoints: 5, 5, 6, 7, 7.
        for (i, ts) in [5, 5, 6, 7, 7].into_iter().enumerate() {
            log.append(Timestamp::new(ts), row(i as i64)).unwrap();
        }
        let range = |lo: i64, hi: i64| {
            log.scan_range(Timestamp::new(lo), Timestamp::new(hi))
                .unwrap()
                .len()
        };
        assert_eq!(range(5, 7), 5, "both endpoints inclusive");
        assert_eq!(range(5, 5), 2, "point query keeps all ties");
        assert_eq!(range(6, 7), 3);
        assert_eq!(range(8, 100), 0, "past the end");
        assert_eq!(range(0, 4), 0, "before the start");
        assert_eq!(range(7, 5), 0, "inverted range is empty");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_record_is_detected() {
        let dir = temp_dir("corrupt");
        {
            let mut log = EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
            for i in 0..5 {
                log.append(Timestamp::new(i), row(i)).unwrap();
            }
            log.sync().unwrap();
        }
        // Flip one byte inside the third record's payload.
        let seg = dir.join("seg-00000.seslog");
        let mut data = std::fs::read(&seg).unwrap();
        let idx = data.len() / 2;
        data[idx] ^= 0xFF;
        std::fs::write(&seg, &data).unwrap();

        // Open-for-append truncates at the corruption point (recovery)…
        let log = EventLog::open(&dir, LogConfig::default()).unwrap();
        assert!(log.len() < 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_non_empty_dir_and_open_refuses_missing() {
        let dir = temp_dir("guards");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("junk"), b"x").unwrap();
        assert!(EventLog::create(&dir, schema(), LogConfig::default()).is_err());
        std::fs::remove_dir_all(&dir).ok();

        let empty = temp_dir("guards-missing");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(EventLog::open(&empty, LogConfig::default()).is_err());
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn schema_violations_and_order_are_enforced() {
        let dir = temp_dir("checks");
        let mut log = EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
        assert!(log.append(Timestamp::new(0), vec![Value::Int(1)]).is_err());
        log.append(Timestamp::new(5), row(1)).unwrap();
        assert!(matches!(
            log.append(Timestamp::new(4), row(2)),
            Err(StoreError::Event(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strings_with_arbitrary_bytes_round_trip() {
        let dir = temp_dir("strings");
        let s = Schema::builder().attr("S", AttrType::Str).build().unwrap();
        let mut log = EventLog::create(&dir, s, LogConfig::default()).unwrap();
        let nasty = "commas, \"quotes\", newlines\n, unicode ¬∃γ, and '' quotes";
        log.append(Timestamp::new(0), vec![Value::str(nasty)])
            .unwrap();
        let rel = log.scan().unwrap();
        assert_eq!(rel.events()[0].values()[0], Value::str(nasty));
        std::fs::remove_dir_all(&dir).ok();
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Crash-consistency: truncating the segment at ANY byte
            /// length and reopening recovers a clean prefix of the
            /// appended events — never garbage, never an error.
            #[test]
            fn arbitrary_truncation_recovers_a_prefix(
                n_events in 1usize..12,
                cut_fraction in 0.0f64..1.0,
            ) {
                let dir = std::env::temp_dir().join(format!(
                    "ses-log-prop-{}-{:?}",
                    std::process::id(),
                    std::thread::current().id()
                ));
                std::fs::remove_dir_all(&dir).ok();

                let expected: Vec<Vec<Value>> = (0..n_events as i64).map(row).collect();
                {
                    let mut log =
                        EventLog::create(&dir, schema(), LogConfig::default()).unwrap();
                    for (i, values) in expected.iter().enumerate() {
                        log.append(Timestamp::new(i as i64), values.clone()).unwrap();
                    }
                    log.sync().unwrap();
                }
                let seg = dir.join("seg-00000.seslog");
                let full = std::fs::metadata(&seg).unwrap().len();
                let header = (MAGIC.len() + 2 + header_bytes(&schema()).len() - 2) as u64;
                let cut = header + ((full - header) as f64 * cut_fraction) as u64;
                OpenOptions::new()
                    .write(true)
                    .open(&seg)
                    .unwrap()
                    .set_len(cut)
                    .unwrap();

                let log = EventLog::open(&dir, LogConfig::default()).unwrap();
                let rel = log.scan().unwrap();
                prop_assert!(rel.len() <= n_events);
                for (i, e) in rel.events().iter().enumerate() {
                    prop_assert_eq!(e.ts(), Timestamp::new(i as i64));
                    prop_assert_eq!(e.values(), expected[i].as_slice());
                }
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // Known FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
