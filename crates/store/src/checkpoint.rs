//! Atomic checkpoint persistence and the durable match sink.
//!
//! A [`CheckpointStore`] writes matcher snapshots as numbered files
//! (`ckpt-<seq>.sesckpt`) inside a directory. Each file frames the
//! codec payload (see [`crate::codec`]) with a magic, a format version,
//! a length, and an FNV-1a checksum:
//!
//! ```text
//! b"SESCKPT1" | u16 version | u64 payload_len | u64 fnv1a(payload) | payload
//! ```
//!
//! Saves are atomic: the frame is written to a `.tmp` sibling, synced,
//! then renamed over the final name — a crash mid-save leaves at most a
//! stale temp file, never a half-written checkpoint under a valid name.
//! The store keeps the last `keep` checkpoints and prunes older ones
//! after each save; [`CheckpointStore::load_latest`] walks sequence
//! numbers downward, skipping (and counting) corrupt or truncated
//! files, so one bad checkpoint falls back to the previous valid one
//! and log replay covers the widened gap.
//!
//! [`MatchLog`] is the other half of exactly-once emission: an
//! append-only line sink that tolerates a torn final line on reopen
//! (truncating it), so `lines()` after a crash counts exactly the
//! matches that durably reached the sink.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ses_core::MatcherSnapshot;

use crate::codec::{decode_snapshot, encode_snapshot, fnv1a};
use crate::StoreError;

/// Magic prefix of a checkpoint file.
const MAGIC: &[u8; 8] = b"SESCKPT1";
/// Current frame format version.
const VERSION: u16 = 1;
/// Frame header bytes ahead of the payload: magic + version + len + checksum.
const HEADER_LEN: usize = 8 + 2 + 8 + 8;
/// Checkpoint file extension.
const EXT: &str = "sesckpt";

/// Metadata of one on-disk checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Monotonic sequence number (encoded in the file name).
    pub seq: u64,
    /// Path of the checkpoint file.
    pub path: PathBuf,
    /// Total file size in bytes (frame + payload).
    pub bytes: u64,
}

/// A successfully loaded checkpoint.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The decoded snapshot.
    pub snapshot: MatcherSnapshot,
    /// Which file it came from.
    pub info: CheckpointInfo,
    /// Newer checkpoints that were skipped as corrupt or unreadable.
    pub skipped: usize,
}

/// A directory of atomically written, checksummed matcher checkpoints.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    next_seq: u64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory, retaining the
    /// last `keep` checkpoints on save. `keep` is clamped to at least 1.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<CheckpointStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let next_seq = list_checkpoints(&dir)?
            .last()
            .map(|info| info.seq + 1)
            .unwrap_or(0);
        Ok(CheckpointStore {
            dir,
            keep: keep.max(1),
            next_seq,
        })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk checkpoints in ascending sequence order.
    pub fn list(&self) -> Result<Vec<CheckpointInfo>, StoreError> {
        list_checkpoints(&self.dir)
    }

    /// Atomically writes `snapshot` as the next checkpoint and prunes
    /// checkpoints beyond the retention count. Returns the new file's
    /// metadata.
    pub fn save(&mut self, snapshot: &MatcherSnapshot) -> Result<CheckpointInfo, StoreError> {
        let payload = encode_snapshot(snapshot);
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&VERSION.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let seq = self.next_seq;
        let path = self.path_of(seq);
        let tmp = path.with_extension("tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&frame)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        // Sync the directory so the rename itself survives a power loss.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.next_seq = seq + 1;
        self.prune()?;
        Ok(CheckpointInfo {
            seq,
            path,
            bytes: frame.len() as u64,
        })
    }

    /// Loads the newest checkpoint that validates, skipping corrupt or
    /// truncated ones. Returns `None` when no checkpoint validates (or
    /// none exists).
    pub fn load_latest(&self) -> Result<Option<LoadedCheckpoint>, StoreError> {
        let mut skipped = 0;
        for info in self.list()?.into_iter().rev() {
            match load_file(&info.path) {
                Ok(snapshot) => {
                    return Ok(Some(LoadedCheckpoint {
                        snapshot,
                        info,
                        skipped,
                    }))
                }
                Err(_) => skipped += 1,
            }
        }
        Ok(None)
    }

    /// Loads a specific checkpoint by sequence number, validating it.
    pub fn load(&self, seq: u64) -> Result<MatcherSnapshot, StoreError> {
        load_file(&self.path_of(seq))
    }

    fn path_of(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:010}.{EXT}"))
    }

    fn prune(&self) -> Result<(), StoreError> {
        let infos = self.list()?;
        if infos.len() > self.keep {
            for info in &infos[..infos.len() - self.keep] {
                fs::remove_file(&info.path)?;
            }
        }
        Ok(())
    }
}

fn list_checkpoints(dir: &Path) -> Result<Vec<CheckpointInfo>, StoreError> {
    let mut infos = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        let seq = match name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(&format!(".{EXT}")))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            Some(seq) => seq,
            None => continue,
        };
        infos.push(CheckpointInfo {
            seq,
            path,
            bytes: entry.metadata()?.len(),
        });
    }
    infos.sort_by_key(|info| info.seq);
    Ok(infos)
}

fn load_file(path: &Path) -> Result<MatcherSnapshot, StoreError> {
    let data = fs::read(path)?;
    if data.len() < HEADER_LEN || &data[..8] != MAGIC {
        return Err(StoreError::Corrupt {
            message: format!("{} is not a SESCKPT1 checkpoint", path.display()),
        });
    }
    let version = u16::from_le_bytes(data[8..10].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(StoreError::Corrupt {
            message: format!("unsupported checkpoint version {version}"),
        });
    }
    let len = u64::from_le_bytes(data[10..18].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(data[18..26].try_into().expect("8 bytes"));
    let payload = &data[HEADER_LEN..];
    if payload.len() != len {
        return Err(StoreError::Corrupt {
            message: format!(
                "checkpoint payload is {} bytes, header claims {len}",
                payload.len()
            ),
        });
    }
    if fnv1a(payload) != checksum {
        return Err(StoreError::Corrupt {
            message: "checkpoint checksum mismatch".into(),
        });
    }
    decode_snapshot(payload)
}

/// An append-only, crash-tolerant match sink.
///
/// Each match is one `\n`-terminated line. On open, a torn final line
/// (crash mid-`append`) is truncated away, so [`MatchLog::lines`]
/// counts exactly the durably written matches — the count recovery
/// compares against a checkpoint's emitted high-water mark to decide
/// how many replayed matches to suppress.
#[derive(Debug)]
pub struct MatchLog {
    file: File,
    lines: u64,
}

impl MatchLog {
    /// Opens (creating if needed) the sink at `path`, truncating any
    /// torn final line.
    pub fn open(path: impl AsRef<Path>) -> Result<MatchLog, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        // Keep everything up to and including the last newline.
        let complete = data
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        if complete != data.len() {
            file.set_len(complete as u64)?;
        }
        file.seek(SeekFrom::Start(complete as u64))?;
        let lines = data[..complete].iter().filter(|&&b| b == b'\n').count() as u64;
        Ok(MatchLog { file, lines })
    }

    /// Number of complete lines durably present at open plus appended
    /// since.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Appends one match line (a trailing newline is added).
    pub fn append(&mut self, line: &str) -> Result<(), StoreError> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.lines += 1;
        Ok(())
    }

    /// Forces appended lines to stable storage. Call before saving a
    /// checkpoint, so the sink is never behind the snapshot's emitted
    /// count.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::StreamSnapshot;
    use ses_event::{Event, Timestamp, Value};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ses-ckpt-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn snapshot(emitted: u64) -> MatcherSnapshot {
        MatcherSnapshot::Stream(StreamSnapshot {
            fingerprint: 7,
            watermark: Some(Timestamp::new(5)),
            evict: true,
            evicted: 0,
            last_ts: Some(Timestamp::new(5)),
            events: vec![Event::new(Timestamp::new(5), vec![Value::Int(1)])],
            instances: Vec::new(),
            pending: Vec::new(),
            survivors: Vec::new(),
            emitted,
        })
    }

    #[test]
    fn save_load_round_trips_and_prunes() {
        let dir = temp_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for i in 0..5 {
            store.save(&snapshot(i)).unwrap();
        }
        let infos = store.list().unwrap();
        assert_eq!(
            infos.iter().map(|i| i.seq).collect::<Vec<_>>(),
            vec![3, 4],
            "keeps only the last K"
        );
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.info.seq, 4);
        assert_eq!(loaded.skipped, 0);
        assert_eq!(loaded.snapshot, snapshot(4));
        // Reopen continues the sequence instead of reusing numbers.
        let mut reopened = CheckpointStore::open(&dir, 2).unwrap();
        assert_eq!(reopened.save(&snapshot(9)).unwrap().seq, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        store.save(&snapshot(1)).unwrap();
        let latest = store.save(&snapshot(2)).unwrap();
        // Flip a payload byte in the newest file.
        let mut bytes = fs::read(&latest.path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&latest.path, &bytes).unwrap();
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.info.seq, 0);
        assert_eq!(loaded.skipped, 1);
        assert_eq!(loaded.snapshot, snapshot(1));
        assert!(matches!(
            store.load(latest.seq),
            Err(StoreError::Corrupt { .. })
        ));
        // Truncated file is also skipped, not fatal.
        fs::write(&latest.path, &bytes[..10]).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().info.seq, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_loads_none() {
        let dir = temp_dir("empty");
        let store = CheckpointStore::open(&dir, 3).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        assert!(store.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn match_log_truncates_torn_tail() {
        let dir = temp_dir("matchlog");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matches.log");
        {
            let mut log = MatchLog::open(&path).unwrap();
            assert_eq!(log.lines(), 0);
            log.append("m1").unwrap();
            log.append("m2").unwrap();
            log.sync().unwrap();
        }
        // Simulate a crash mid-append: a dangling partial line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"m3-part").unwrap();
        }
        let mut log = MatchLog::open(&path).unwrap();
        assert_eq!(log.lines(), 2, "torn line does not count");
        log.append("m3").unwrap();
        log.sync().unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "m1\nm2\nm3\n");
        fs::remove_dir_all(&dir).unwrap();
    }
}
