//! A textual query language for SES patterns, modeled on the SQL change
//! proposal's `PERMUTE` operator (reference \[27\] of the paper).
//!
//! The paper notes that the proposal specifies `PERMUTE` but that no
//! implementation exists; this crate provides a small, self-contained
//! surface syntax that lowers to [`ses_pattern::Pattern`]:
//!
//! ```text
//! PATTERN PERMUTE(c, p+, d) THEN b
//! WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B'
//!   AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
//! WITHIN 264 HOURS
//! ```
//!
//! * `PERMUTE(…)` declares an event set pattern (any order); `THEN`
//!   sequences sets; `v+` marks a group variable (Kleene plus).
//! * `WHERE` takes `AND`-connected comparisons between
//!   `variable.attribute` operands and literals.
//! * `WITHIN` takes a window in `TICKS` or wall-clock units, converted
//!   via a [`TickUnit`] describing the relation's time granularity.
//!
//! # Example
//!
//! ```
//! use ses_query::{parse_pattern, TickUnit};
//!
//! let pattern = parse_pattern(
//!     "PATTERN PERMUTE(buy, sell) THEN alert \
//!      WHERE buy.TYPE = 'BUY' AND sell.TYPE = 'SELL' \
//!        AND alert.TYPE = 'ALERT' \
//!        AND buy.SYM = sell.SYM \
//!      WITHIN 60 TICKS",
//!     TickUnit::Minute,
//! )
//! .unwrap();
//! assert_eq!(pattern.num_sets(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod ast;
mod error;
mod parser;
mod render;
mod token;

pub use analyze::{analyze, condition_spans};
pub use ast::{
    CondAst, NegAst, OperandAst, QueryAst, SetAst, TickUnit, VarAst, WindowUnit, WithinAst,
};
pub use error::{QueryError, QueryErrorKind};
pub use parser::{parse, parse_file};
pub use render::render;
pub use token::{lex, Keyword, Pos, Tok, Token};

use ses_pattern::Pattern;

/// Parses and analyzes query text into a [`Pattern`] in one call.
pub fn parse_pattern(input: &str, tick: TickUnit) -> Result<Pattern, QueryError> {
    analyze(&parse(input)?, tick)
}

/// Parses a `;`-separated query file into named patterns (see
/// [`parse_file`]). Names must be unique when given.
pub fn parse_pattern_file(
    input: &str,
    tick: TickUnit,
) -> Result<Vec<(Option<String>, Pattern)>, QueryError> {
    let items = parse_file(input)?;
    let mut seen: Vec<&str> = Vec::new();
    for (name, _) in &items {
        if let Some(n) = name {
            if seen.contains(&n.as_str()) {
                return Err(QueryError::nowhere(QueryErrorKind::DuplicateQueryName(
                    n.clone(),
                )));
            }
            seen.push(n);
        }
    }
    items
        .iter()
        .map(|(name, ast)| Ok((name.clone(), analyze(ast, tick)?)))
        .collect()
}
