//! Tokens and the hand-rolled lexer of the SES query language.

use std::fmt;

use crate::{QueryError, QueryErrorKind};

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Pos {
    pub(crate) const START: Pos = Pos { line: 1, col: 1 };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords of the language (case-insensitive in source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `PATTERN`
    Pattern,
    /// `PERMUTE`
    Permute,
    /// `THEN`
    Then,
    /// `NOT`
    Not,
    /// `WHERE`
    Where,
    /// `AND`
    And,
    /// `WITHIN`
    Within,
    /// `TICKS`
    Ticks,
    /// `SECONDS`
    Seconds,
    /// `MINUTES`
    Minutes,
    /// `HOURS`
    Hours,
    /// `DAYS`
    Days,
    /// `TRUE`
    True,
    /// `FALSE`
    False,
}

impl Keyword {
    fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "PATTERN" => Keyword::Pattern,
            "PERMUTE" => Keyword::Permute,
            "THEN" => Keyword::Then,
            "NOT" => Keyword::Not,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "WITHIN" => Keyword::Within,
            "TICKS" | "TICK" => Keyword::Ticks,
            "SECONDS" | "SECOND" => Keyword::Seconds,
            "MINUTES" | "MINUTE" => Keyword::Minutes,
            "HOURS" | "HOUR" => Keyword::Hours,
            "DAYS" | "DAY" => Keyword::Days,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A keyword.
    Kw(Keyword),
    /// An identifier (variable or attribute name; case-sensitive).
    Ident(String),
    /// A single-quoted string literal (with `''` escaping).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `+`
    Plus,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Kw(k) => write!(f, "{k:?}").map(|()| ()),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Str(s) => write!(f, "string '{s}'"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v) => write!(f, "float {v}"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semicolon => write!(f, "`;`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes `input`; the final token is always [`Tok::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let mut pos = Pos::START;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    pos.line += 1;
                    pos.col = 1;
                } else {
                    pos.col += 1;
                }
            }
            c
        }};
    }

    loop {
        // Skip whitespace and `--` comments.
        loop {
            match chars.peek() {
                Some(c) if c.is_whitespace() => {
                    bump!();
                }
                Some('-') => {
                    let mut ahead = chars.clone();
                    ahead.next();
                    if ahead.peek() == Some(&'-') {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let start = pos;
        let Some(&c) = chars.peek() else {
            out.push(Token {
                tok: Tok::Eof,
                pos: start,
            });
            return Ok(out);
        };

        let tok = match c {
            '+' => {
                bump!();
                Tok::Plus
            }
            ',' => {
                bump!();
                Tok::Comma
            }
            '(' => {
                bump!();
                Tok::LParen
            }
            ')' => {
                bump!();
                Tok::RParen
            }
            '.' => {
                bump!();
                Tok::Dot
            }
            ':' => {
                bump!();
                Tok::Colon
            }
            ';' => {
                bump!();
                Tok::Semicolon
            }
            '=' => {
                bump!();
                Tok::Eq
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::Ne
                } else {
                    return Err(QueryError::at(QueryErrorKind::UnexpectedChar('!'), start));
                }
            }
            '<' => {
                bump!();
                match chars.peek() {
                    Some('=') => {
                        bump!();
                        Tok::Le
                    }
                    Some('>') => {
                        bump!();
                        Tok::Ne
                    }
                    _ => Tok::Lt,
                }
            }
            '>' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '\'' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        None => {
                            return Err(QueryError::at(QueryErrorKind::UnterminatedString, start))
                        }
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                bump!();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                    }
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit()
                || (c == '-' && {
                    let mut ahead = chars.clone();
                    ahead.next();
                    ahead.peek().is_some_and(char::is_ascii_digit)
                }) =>
            {
                let mut text = String::new();
                if c == '-' {
                    text.push('-');
                    bump!();
                }
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        bump!();
                    } else if c == '.' && !is_float {
                        // Lookahead: `.` must be followed by a digit to be
                        // part of the number (avoid eating `v.A`).
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek().is_some_and(char::is_ascii_digit) {
                            is_float = true;
                            text.push('.');
                            bump!();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                if is_float {
                    text.parse::<f64>().map(Tok::Float).map_err(|_| {
                        QueryError::at(QueryErrorKind::InvalidNumber(text.clone()), start)
                    })?
                } else {
                    text.parse::<i64>().map(Tok::Int).map_err(|_| {
                        QueryError::at(QueryErrorKind::InvalidNumber(text.clone()), start)
                    })?
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                match Keyword::from_ident(&ident) {
                    Some(kw) => Tok::Kw(kw),
                    None => Tok::Ident(ident),
                }
            }
            other => {
                return Err(QueryError::at(QueryErrorKind::UnexpectedChar(other), start));
            }
        };
        out.push(Token { tok, pos: start });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Tok> {
        lex(input).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_the_q1_query() {
        let q = "PATTERN PERMUTE(c, p+, d) THEN b WHERE c.L = 'C' WITHIN 264 HOURS";
        let ts = toks(q);
        assert_eq!(ts[0], Tok::Kw(Keyword::Pattern));
        assert_eq!(ts[1], Tok::Kw(Keyword::Permute));
        assert_eq!(ts[2], Tok::LParen);
        assert_eq!(ts[3], Tok::Ident("c".into()));
        assert_eq!(ts[5], Tok::Ident("p".into()));
        assert_eq!(ts[6], Tok::Plus);
        assert!(ts.contains(&Tok::Str("C".into())));
        assert!(ts.contains(&Tok::Int(264)));
        assert_eq!(*ts.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive_idents_are_not() {
        assert_eq!(
            toks("pattern Pattern PATTERN")[..3].to_vec(),
            vec![Tok::Kw(Keyword::Pattern); 3]
        );
        assert_eq!(
            toks("Foo foo")[..2],
            [Tok::Ident("Foo".into()), Tok::Ident("foo".into())]
        );
    }

    #[test]
    fn numbers_ints_floats_negatives() {
        assert_eq!(toks("42")[0], Tok::Int(42));
        assert_eq!(toks("-7")[0], Tok::Int(-7));
        assert_eq!(toks("3.5")[0], Tok::Float(3.5));
        assert_eq!(toks("-0.25")[0], Tok::Float(-0.25));
        // `1.x` stops before the dot (attribute access on a weird name).
        assert_eq!(
            toks("1.x")[..3],
            [Tok::Int(1), Tok::Dot, Tok::Ident("x".into())]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'it''s'")[0], Tok::Str("it's".into()));
        assert_eq!(toks("''")[0], Tok::Str("".into()));
        assert!(lex("'open").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= != <> < <= > >=")[..7],
            [
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge
            ]
        );
        assert!(lex("!x").is_err());
    }

    #[test]
    fn comments_and_whitespace() {
        let ts = toks("a -- a comment\n  b");
        assert_eq!(ts[..2], [Tok::Ident("a".into()), Tok::Ident("b".into())]);
        // `a - b` (no second dash): `-` followed by non-digit is an error.
        assert!(lex("a - b").is_err());
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let tokens = lex("a\n  bb").unwrap();
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = lex("a @").unwrap_err();
        assert!(err.to_string().contains("1:3"), "{err}");
    }

    #[test]
    fn singular_unit_keywords() {
        assert_eq!(toks("HOUR")[0], Tok::Kw(Keyword::Hours));
        assert_eq!(toks("day")[0], Tok::Kw(Keyword::Days));
    }
}
