//! Semantic analysis: AST → [`ses_pattern::Pattern`].
//!
//! Checks variable declarations, normalizes conditions (the pattern model
//! keeps `variable.attribute` on the left — literal-left conditions are
//! flipped), converts the `WITHIN` clause into ticks under a [`TickUnit`],
//! and delegates structural validation to the pattern builder.

use ses_event::Duration;
use ses_pattern::Pattern;

use crate::ast::{CondAst, OperandAst, QueryAst, TickUnit, WithinAst};
use crate::{QueryError, QueryErrorKind};

/// Lowers a parsed query into a [`Pattern`].
pub fn analyze(ast: &QueryAst, tick: TickUnit) -> Result<Pattern, QueryError> {
    // Declared variables, with duplicate detection at the AST level so the
    // error carries a source position.
    let mut declared: Vec<&str> = Vec::new();
    for set in &ast.sets {
        for v in &set.vars {
            if declared.contains(&v.name.as_str()) {
                return Err(QueryError::at(
                    QueryErrorKind::DuplicateVariable(v.name.clone()),
                    v.pos,
                ));
            }
            declared.push(&v.name);
        }
    }
    let mut negated: Vec<&str> = Vec::new();
    for n in &ast.negations {
        if declared.contains(&n.name.as_str()) || negated.contains(&n.name.as_str()) {
            return Err(QueryError::at(
                QueryErrorKind::DuplicateVariable(n.name.clone()),
                n.pos,
            ));
        }
        negated.push(&n.name);
    }

    let mut b = Pattern::builder();
    for (i, set) in ast.sets.iter().enumerate() {
        let vars: Vec<(String, bool)> = set.vars.iter().map(|v| (v.name.clone(), v.plus)).collect();
        b = b.set(move |s| {
            for (name, plus) in &vars {
                if *plus {
                    s.plus(name.clone());
                } else {
                    s.var(name.clone());
                }
            }
            s
        });
        for n in ast.negations.iter().filter(|n| n.after_set == i) {
            b = b.negate(n.name.clone());
        }
    }

    for cond in &ast.conditions {
        b = lower_condition(b, cond, &declared, &negated)?;
    }

    if let Some(w) = &ast.within {
        b = b.within(window_ticks(w, tick)?);
    }

    Ok(b.build()?)
}

/// Source positions of the `WHERE` conditions that lower onto the
/// **positive** pattern, index-aligned with
/// [`ses_pattern::Pattern::conditions`] of the analyzed pattern: the
/// `i`-th returned position is where the `i`-th pattern condition was
/// written. Conditions involving a negated variable live on the
/// negations instead and are skipped, mirroring the classification in
/// [`analyze`]. Diagnostics from `ses_pattern::analyze` carry condition
/// indices; this is the map back to query text.
pub fn condition_spans(ast: &QueryAst) -> Vec<crate::token::Pos> {
    let negated: Vec<&str> = ast.negations.iter().map(|n| n.name.as_str()).collect();
    let is_neg = |v: &str| negated.contains(&v);
    let mut out = Vec::new();
    for cond in &ast.conditions {
        let positive = match (&cond.lhs, &cond.rhs) {
            (OperandAst::Attr { var, .. }, OperandAst::Attr { var: var2, .. }) => {
                !is_neg(var) && !is_neg(var2)
            }
            (OperandAst::Attr { var, .. }, OperandAst::Literal { .. })
            | (OperandAst::Literal { .. }, OperandAst::Attr { var, .. }) => !is_neg(var),
            (OperandAst::Literal { .. }, OperandAst::Literal { .. }) => false,
        };
        if positive {
            out.push(cond.lhs.pos());
        }
    }
    out
}

fn lower_condition(
    b: ses_pattern::PatternBuilder,
    cond: &CondAst,
    declared: &[&str],
    negated: &[&str],
) -> Result<ses_pattern::PatternBuilder, QueryError> {
    let classify = |var: &str, pos| -> Result<bool, QueryError> {
        if negated.contains(&var) {
            Ok(true)
        } else if declared.contains(&var) {
            Ok(false)
        } else {
            Err(QueryError::at(
                QueryErrorKind::UnknownVariable(var.to_string()),
                pos,
            ))
        }
    };
    match (&cond.lhs, &cond.rhs) {
        (
            OperandAst::Attr { var, attr, pos },
            OperandAst::Attr {
                var: var2,
                attr: attr2,
                pos: pos2,
            },
        ) => {
            let lhs_neg = classify(var, *pos)?;
            let rhs_neg = classify(var2, *pos2)?;
            match (lhs_neg, rhs_neg) {
                (false, false) => Ok(b.cond_vars(
                    var.clone(),
                    attr.clone(),
                    cond.op,
                    var2.clone(),
                    attr2.clone(),
                )),
                (true, false) => Ok(b.neg_cond_vars(
                    var.clone(),
                    attr.clone(),
                    cond.op,
                    var2.clone(),
                    attr2.clone(),
                )),
                // `v.A φ ¬x.A'` ⇒ `¬x.A' φ.flip() v.A`.
                (false, true) => Ok(b.neg_cond_vars(
                    var2.clone(),
                    attr2.clone(),
                    cond.op.flip(),
                    var.clone(),
                    attr.clone(),
                )),
                (true, true) => Err(QueryError::at(
                    QueryErrorKind::BothNegated {
                        lhs: var.clone(),
                        rhs: var2.clone(),
                    },
                    *pos,
                )),
            }
        }
        (OperandAst::Attr { var, attr, pos }, OperandAst::Literal { value, .. }) => {
            if classify(var, *pos)? {
                Ok(b.neg_cond_const(var.clone(), attr.clone(), cond.op, value.clone()))
            } else {
                Ok(b.cond_const(var.clone(), attr.clone(), cond.op, value.clone()))
            }
        }
        (OperandAst::Literal { value, .. }, OperandAst::Attr { var, attr, pos }) => {
            // `C φ v.A` ⇒ `v.A φ.flip() C`.
            if classify(var, *pos)? {
                Ok(b.neg_cond_const(var.clone(), attr.clone(), cond.op.flip(), value.clone()))
            } else {
                Ok(b.cond_const(var.clone(), attr.clone(), cond.op.flip(), value.clone()))
            }
        }
        (OperandAst::Literal { pos, .. }, OperandAst::Literal { .. }) => {
            Err(QueryError::at(QueryErrorKind::ConstantComparison, *pos))
        }
    }
}

fn window_ticks(w: &WithinAst, tick: TickUnit) -> Result<Duration, QueryError> {
    if w.amount < 0 {
        return Err(QueryError::at(
            QueryErrorKind::BadWindow(format!("window must be non-negative, got {}", w.amount)),
            w.pos,
        ));
    }
    let Some(unit_secs) = w.unit.seconds() else {
        return Ok(Duration::ticks(w.amount)); // raw ticks
    };
    let Some(tick_secs) = tick.seconds() else {
        return Err(QueryError::at(
            QueryErrorKind::BadWindow(
                "this relation's time domain is abstract; use WITHIN … TICKS".to_string(),
            ),
            w.pos,
        ));
    };
    let total = w.amount.checked_mul(unit_secs).ok_or_else(|| {
        QueryError::at(
            QueryErrorKind::BadWindow(format!("window overflows: {} {:?}", w.amount, w.unit)),
            w.pos,
        )
    })?;
    if total % tick_secs != 0 {
        return Err(QueryError::at(
            QueryErrorKind::BadWindow(format!(
                "{} {:?} is not a whole number of ticks ({} seconds per tick)",
                w.amount, w.unit, tick_secs
            )),
            w.pos,
        ));
    }
    Ok(Duration::ticks(total / tick_secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::WindowUnit;
    use crate::parser::parse;
    use crate::token::Pos;
    use ses_event::CmpOp;

    fn pattern(q: &str, tick: TickUnit) -> Result<Pattern, QueryError> {
        analyze(&parse(q).unwrap(), tick)
    }

    #[test]
    fn q1_lowers_to_the_paper_pattern() {
        let q = "PATTERN PERMUTE(c, p+, d) THEN b \
                 WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
                   AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
                 WITHIN 264 HOURS";
        let p = pattern(q, TickUnit::Hour).unwrap();
        assert_eq!(p.num_sets(), 2);
        assert_eq!(p.num_vars(), 4);
        assert_eq!(p.conditions().len(), 7);
        assert_eq!(p.within(), Duration::hours(264));
        assert!(p.var(p.var_id("p").unwrap()).is_group());
        // Equivalent to the programmatic Q1 up to display.
        assert_eq!(p.to_string(), ses_workload_free_q1().to_string());
    }

    /// A local copy of Q1 built programmatically (this crate must not
    /// depend on `ses-workload`).
    fn ses_workload_free_q1() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("c").plus("p").var("d"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_const("d", "L", CmpOp::Eq, "D")
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
            .cond_vars("c", "ID", CmpOp::Eq, "d", "ID")
            .cond_vars("d", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::hours(264))
            .build()
            .unwrap()
    }

    #[test]
    fn flipped_literal_conditions() {
        let p = pattern("PATTERN a WHERE 100 < a.V", TickUnit::Hour).unwrap();
        let c = &p.conditions()[0];
        // 100 < a.V ⇒ a.V > 100.
        assert_eq!(c.op, CmpOp::Gt);
        assert!(c.is_constant());
    }

    #[test]
    fn unknown_variable_carries_position() {
        let err = pattern("PATTERN a WHERE zz.L = 'C'", TickUnit::Hour).unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::UnknownVariable(ref v) if v == "zz"));
        assert!(err.pos.is_some());
    }

    #[test]
    fn duplicate_variable_detected() {
        let err = pattern("PATTERN PERMUTE(a, a)", TickUnit::Hour).unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::DuplicateVariable(_)));
        let err = pattern("PATTERN a THEN a", TickUnit::Hour).unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::DuplicateVariable(_)));
    }

    #[test]
    fn constant_comparison_rejected() {
        let err = pattern("PATTERN a WHERE 1 = 2", TickUnit::Hour).unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::ConstantComparison));
    }

    #[test]
    fn window_conversions() {
        // 1 tick = 1 hour: 2 DAYS = 48 ticks.
        let p = pattern("PATTERN a WITHIN 2 DAYS", TickUnit::Hour).unwrap();
        assert_eq!(p.within(), Duration::ticks(48));
        // 1 tick = 1 minute: 264 HOURS = 15840 ticks.
        let p = pattern("PATTERN a WITHIN 264 HOURS", TickUnit::Minute).unwrap();
        assert_eq!(p.within(), Duration::ticks(15840));
        // Raw ticks pass through regardless of tick unit.
        let p = pattern("PATTERN a WITHIN 99 TICKS", TickUnit::Abstract).unwrap();
        assert_eq!(p.within(), Duration::ticks(99));
    }

    #[test]
    fn window_errors() {
        // Non-integral: 90 seconds at minute ticks.
        let w = WithinAst {
            amount: 90,
            unit: WindowUnit::Seconds,
            pos: Pos { line: 1, col: 1 },
        };
        assert!(matches!(
            window_ticks(&w, TickUnit::Minute).unwrap_err().kind,
            QueryErrorKind::BadWindow(_)
        ));
        // Abstract ticks reject wall-clock units.
        assert!(pattern("PATTERN a WITHIN 5 HOURS", TickUnit::Abstract).is_err());
        // Negative window.
        assert!(pattern("PATTERN a WITHIN -5 TICKS", TickUnit::Hour).is_err());
    }

    #[test]
    fn negation_lowered_with_conditions() {
        let p = pattern(
            "PATTERN a THEN NOT x THEN b \
             WHERE a.L = 'A' AND b.L = 'B' AND x.L = 'X' AND x.ID = a.ID \
             WITHIN 10 TICKS",
            TickUnit::Hour,
        )
        .unwrap();
        assert_eq!(p.num_sets(), 2);
        assert_eq!(p.negations().len(), 1);
        let n = &p.negations()[0];
        assert_eq!(n.name(), "x");
        assert_eq!(n.after_set(), 0);
        assert_eq!(n.conditions().len(), 2);
        // Positive conditions stay with the pattern.
        assert_eq!(p.conditions().len(), 2);
        assert!(p.to_string().contains("¬x"));
    }

    #[test]
    fn negation_condition_flipping() {
        // `a.ID = x.ID` (negation on the right) flips onto the negation.
        let p = pattern(
            "PATTERN a THEN NOT x THEN b WHERE a.ID = x.ID",
            TickUnit::Hour,
        )
        .unwrap();
        assert_eq!(p.negations()[0].conditions().len(), 1);
        // `5 > x.V` becomes `x.V < 5`.
        let p = pattern("PATTERN a THEN NOT x THEN b WHERE 5 > x.ID", TickUnit::Hour).unwrap();
        let c = &p.negations()[0].conditions()[0];
        assert_eq!(c.op, CmpOp::Lt);
    }

    #[test]
    fn negation_errors() {
        // NOT as the final element.
        let err = pattern("PATTERN a THEN NOT x", TickUnit::Hour).unwrap_err();
        assert!(err.to_string().contains("followed by another"), "{err}");
        // Two negations related to each other.
        let err = pattern(
            "PATTERN a THEN NOT x THEN b THEN NOT y THEN c WHERE x.ID = y.ID",
            TickUnit::Hour,
        )
        .unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::BothNegated { .. }));
        // Duplicate between positive and negated names.
        let err = pattern("PATTERN a THEN NOT a THEN b", TickUnit::Hour).unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::DuplicateVariable(_)));
        // Kleene plus on a negation is rejected by the parser.
        let err = parse("PATTERN a THEN NOT x+ THEN b").unwrap_err();
        assert!(err.to_string().contains("Kleene plus"), "{err}");
    }

    #[test]
    fn condition_spans_align_with_pattern_conditions() {
        let q = "PATTERN a THEN NOT x THEN b \
                 WHERE a.L = 'A' AND x.ID = a.ID AND 5 > b.V AND b.ID = a.ID";
        let ast = parse(q).unwrap();
        let p = analyze(&ast, TickUnit::Hour).unwrap();
        let spans = condition_spans(&ast);
        // x.ID = a.ID lives on the negation; the other three are positive.
        assert_eq!(p.conditions().len(), 3);
        assert_eq!(spans.len(), 3);
        // All on line 1, in source order, strictly increasing columns.
        assert!(spans.windows(2).all(|w| w[0].col < w[1].col), "{spans:?}");
        assert_eq!(spans[0].line, 1);
        // First positive condition starts at `a.L`.
        let col = q.find("a.L").unwrap() + 1;
        assert_eq!(spans[0].col, col as u32);
    }

    #[test]
    fn no_within_means_unbounded() {
        let p = pattern("PATTERN a", TickUnit::Hour).unwrap();
        assert_eq!(p.within(), Duration::MAX);
    }
}
