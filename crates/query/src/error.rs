//! Query language errors with source positions.

use std::fmt;

use crate::token::Pos;

/// What went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryErrorKind {
    /// A character the lexer cannot start a token with.
    UnexpectedChar(char),
    /// A string literal without a closing quote.
    UnterminatedString,
    /// A numeric literal that does not parse.
    InvalidNumber(String),
    /// The parser expected something else.
    Unexpected {
        /// What was found (token rendering).
        found: String,
        /// What the parser expected.
        expected: String,
    },
    /// A variable was declared twice in the pattern clause.
    DuplicateVariable(String),
    /// Two queries in a file share a name.
    DuplicateQueryName(String),
    /// A condition references an undeclared variable.
    UnknownVariable(String),
    /// Both sides of a condition are literals.
    ConstantComparison,
    /// A condition relates two negated variables (each negation is an
    /// independent prohibition; they cannot see each other's events).
    BothNegated {
        /// Left negated variable.
        lhs: String,
        /// Right negated variable.
        rhs: String,
    },
    /// `WITHIN` value does not convert to a whole number of ticks.
    BadWindow(String),
    /// Pattern-level validation failed after parsing.
    Pattern(ses_pattern::PatternError),
}

/// An error with the position it was detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryError {
    /// The error.
    pub kind: QueryErrorKind,
    /// Source position (1-based line:column), if known.
    pub pos: Option<Pos>,
}

impl QueryError {
    pub(crate) fn at(kind: QueryErrorKind, pos: Pos) -> QueryError {
        QueryError {
            kind,
            pos: Some(pos),
        }
    }

    pub(crate) fn nowhere(kind: QueryErrorKind) -> QueryError {
        QueryError { kind, pos: None }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(pos) = self.pos {
            write!(f, "{pos}: ")?;
        }
        match &self.kind {
            QueryErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            QueryErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            QueryErrorKind::InvalidNumber(s) => write!(f, "invalid number `{s}`"),
            QueryErrorKind::Unexpected { found, expected } => {
                write!(f, "expected {expected}, found {found}")
            }
            QueryErrorKind::DuplicateVariable(v) => {
                write!(f, "variable `{v}` declared more than once")
            }
            QueryErrorKind::DuplicateQueryName(n) => {
                write!(f, "query name `{n}` used more than once")
            }
            QueryErrorKind::UnknownVariable(v) => {
                write!(f, "condition references undeclared variable `{v}`")
            }
            QueryErrorKind::ConstantComparison => {
                write!(
                    f,
                    "at least one side of a condition must be `variable.attribute`"
                )
            }
            QueryErrorKind::BothNegated { lhs, rhs } => write!(
                f,
                "cannot relate two negated variables (`{lhs}` and `{rhs}`)"
            ),
            QueryErrorKind::BadWindow(msg) => write!(f, "invalid WITHIN window: {msg}"),
            QueryErrorKind::Pattern(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ses_pattern::PatternError> for QueryError {
    fn from(e: ses_pattern::PatternError) -> Self {
        QueryError::nowhere(QueryErrorKind::Pattern(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_position() {
        let e = QueryError::at(QueryErrorKind::UnexpectedChar('@'), Pos { line: 2, col: 5 });
        assert_eq!(e.to_string(), "2:5: unexpected character `@`");
        let e = QueryError::nowhere(QueryErrorKind::ConstantComparison);
        assert!(e.to_string().starts_with("at least one side"));
    }
}
