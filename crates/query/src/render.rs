//! Rendering patterns back to query text.
//!
//! [`render`] is the inverse of [`crate::parse_pattern`]: it serializes a
//! [`Pattern`] into the `PATTERN … WHERE … WITHIN` syntax, such that
//! parsing the result yields an equivalent pattern (round-trip
//! property-tested in `tests/query_roundtrip.rs`). Useful for persisting
//! programmatically built patterns and for `explain`-style tooling.

use std::fmt::Write as _;

use ses_event::{Duration, Value};
use ses_pattern::{Pattern, Rhs};

/// Serializes a pattern into parseable query text. The `WITHIN` clause is
/// emitted in raw `TICKS` (lossless under every [`crate::TickUnit`]);
/// an unbounded window ([`Duration::MAX`]) omits the clause.
pub fn render(pattern: &Pattern) -> String {
    let mut out = String::from("PATTERN ");
    for (i, set) in pattern.sets().iter().enumerate() {
        if i > 0 {
            out.push_str(" THEN ");
        }
        if set.len() == 1 && !pattern.var(set[0]).is_group() {
            out.push_str(pattern.var(set[0]).name());
        } else {
            out.push_str("PERMUTE(");
            for (j, v) in set.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(pattern.var(*v).name());
                if pattern.var(*v).is_group() {
                    out.push('+');
                }
            }
            out.push(')');
        }
        for neg in pattern.negations().iter().filter(|n| n.after_set() == i) {
            let _ = write!(out, " THEN NOT {}", neg.name());
        }
    }

    let mut clauses: Vec<String> = Vec::new();
    for c in pattern.conditions() {
        let lhs = format!("{}.{}", pattern.var(c.lhs.var).name(), c.lhs.attr);
        clauses.push(match &c.rhs {
            Rhs::Const(v) => format!("{lhs} {} {}", op_text(c.op), literal(v)),
            Rhs::Attr(r) => format!(
                "{lhs} {} {}.{}",
                op_text(c.op),
                pattern.var(r.var).name(),
                r.attr
            ),
        });
    }
    for neg in pattern.negations() {
        for c in neg.conditions() {
            let lhs = format!("{}.{}", neg.name(), c.attr);
            clauses.push(match &c.rhs {
                Rhs::Const(v) => format!("{lhs} {} {}", op_text(c.op), literal(v)),
                Rhs::Attr(r) => format!(
                    "{lhs} {} {}.{}",
                    op_text(c.op),
                    pattern.var(r.var).name(),
                    r.attr
                ),
            });
        }
    }
    if !clauses.is_empty() {
        out.push_str("\nWHERE ");
        out.push_str(&clauses.join("\n  AND "));
    }

    if pattern.within() != Duration::MAX {
        let _ = write!(out, "\nWITHIN {} TICKS", pattern.within().as_ticks());
    }
    out
}

fn op_text(op: ses_event::CmpOp) -> &'static str {
    match op {
        ses_event::CmpOp::Eq => "=",
        ses_event::CmpOp::Ne => "!=",
        ses_event::CmpOp::Lt => "<",
        ses_event::CmpOp::Le => "<=",
        ses_event::CmpOp::Gt => ">",
        ses_event::CmpOp::Ge => ">=",
    }
}

fn literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // Keep a decimal point so the literal lexes back as a float.
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_pattern, TickUnit};
    use ses_event::CmpOp;

    fn round_trip(p: &Pattern) -> Pattern {
        let text = render(p);
        parse_pattern(&text, TickUnit::Abstract)
            .unwrap_or_else(|e| panic!("rendered text must parse: {e}\n{text}"))
    }

    #[test]
    fn renders_q1_shape() {
        let q1 = Pattern::builder()
            .set(|s| s.var("c").plus("p").var("d"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
            .within(Duration::hours(264))
            .build()
            .unwrap();
        let text = render(&q1);
        assert!(
            text.starts_with("PATTERN PERMUTE(c, p+, d) THEN b"),
            "{text}"
        );
        assert!(text.contains("c.L = 'C'"));
        assert!(text.contains("c.ID = p.ID"));
        assert!(text.ends_with("WITHIN 264 TICKS"));
        assert_eq!(round_trip(&q1).to_string(), q1.to_string());
    }

    #[test]
    fn single_singleton_set_needs_no_permute() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.plus("g"))
            .build()
            .unwrap();
        let text = render(&p);
        assert!(text.contains("PATTERN a THEN PERMUTE(g+)"), "{text}");
        assert_eq!(round_trip(&p).to_string(), p.to_string());
    }

    #[test]
    fn renders_negations_and_their_conditions() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("x")
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .neg_cond_const("x", "L", CmpOp::Eq, "X")
            .neg_cond_vars("x", "ID", CmpOp::Ne, "a", "ID")
            .within(Duration::ticks(9))
            .build()
            .unwrap();
        let text = render(&p);
        assert!(text.contains("THEN NOT x THEN b"), "{text}");
        assert!(text.contains("x.L = 'X'"));
        assert!(text.contains("x.ID != a.ID"));
        let rt = round_trip(&p);
        assert_eq!(rt.negations().len(), 1);
        assert_eq!(rt.negations()[0].conditions().len(), 2);
        assert_eq!(rt.to_string(), p.to_string());
    }

    #[test]
    fn literal_kinds_round_trip() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "I", CmpOp::Gt, -3)
            .cond_const("a", "F", CmpOp::Le, 2.0)
            .cond_const("a", "S", CmpOp::Eq, "it's")
            .cond_const("a", "B", CmpOp::Ne, true)
            .build()
            .unwrap();
        let text = render(&p);
        assert!(text.contains("a.F <= 2.0"), "{text}");
        assert!(text.contains("'it''s'"));
        assert!(text.contains("!= TRUE"));
        assert!(!text.contains("WITHIN"), "unbounded window omits WITHIN");
        assert_eq!(round_trip(&p).to_string(), p.to_string());
    }
}
