//! Recursive-descent parser for the SES query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query    := "PATTERN" set ("THEN" set)*
//!             ["WHERE" cond ("AND" cond)*]
//!             ["WITHIN" INT unit]
//! set      := "PERMUTE" "(" var ("," var)* ")" | var
//! var      := IDENT ["+"]
//! cond     := operand op operand
//! operand  := IDENT "." IDENT | STRING | NUMBER | TRUE | FALSE
//! op       := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//! unit     := "TICKS" | "SECONDS" | "MINUTES" | "HOURS" | "DAYS"
//! ```

use ses_event::{CmpOp, Value};

use crate::ast::{CondAst, OperandAst, QueryAst, SetAst, VarAst, WindowUnit, WithinAst};
use crate::token::{lex, Keyword, Pos, Tok, Token};
use crate::{QueryError, QueryErrorKind};

/// Parses query text into an AST.
pub fn parse(input: &str) -> Result<QueryAst, QueryError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, at: 0 };
    let ast = p.query()?;
    // A single trailing `;` is tolerated.
    p.eat(&Tok::Semicolon);
    p.expect_eof()?;
    Ok(ast)
}

/// Parses a query *file*: one or more `;`-separated queries, each
/// optionally prefixed with `name:`.
///
/// ```text
/// protocol: PATTERN PERMUTE(c, p+, d) THEN b WHERE … WITHIN 264 HOURS;
/// fever:    PATTERN t WHERE t.L = 'T';
/// ```
pub fn parse_file(input: &str) -> Result<Vec<(Option<String>, QueryAst)>, QueryError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, at: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&Tok::Semicolon) {}
        if p.peek().tok == Tok::Eof {
            break;
        }
        // `name :` prefix?
        let name = if let Tok::Ident(n) = p.peek().tok.clone() {
            if p.peek_next() == &Tok::Colon {
                p.bump();
                p.bump();
                Some(n)
            } else {
                None
            }
        } else {
            None
        };
        let ast = p.query()?;
        if !(p.eat(&Tok::Semicolon) || p.peek().tok == Tok::Eof) {
            return p.unexpected("`;` between queries or end of input");
        }
        out.push((name, ast));
    }
    if out.is_empty() {
        return p.unexpected("at least one query");
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn peek_next(&self) -> &Tok {
        &self.tokens[(self.at + 1).min(self.tokens.len() - 1)].tok
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn unexpected<T>(&self, expected: &str) -> Result<T, QueryError> {
        let t = self.peek();
        Err(QueryError::at(
            QueryErrorKind::Unexpected {
                found: t.tok.to_string(),
                expected: expected.to_string(),
            },
            t.pos,
        ))
    }

    fn expect_kw(&mut self, kw: Keyword, what: &str) -> Result<Pos, QueryError> {
        if self.peek().tok == Tok::Kw(kw) {
            Ok(self.bump().pos)
        } else {
            self.unexpected(what)
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_eof(&self) -> Result<(), QueryError> {
        if self.peek().tok == Tok::Eof {
            Ok(())
        } else {
            self.unexpected("end of input")
        }
    }

    fn query(&mut self) -> Result<QueryAst, QueryError> {
        self.expect_kw(Keyword::Pattern, "`PATTERN`")?;
        let mut sets = vec![self.set()?];
        let mut negations = Vec::new();
        while self.eat(&Tok::Kw(Keyword::Then)) {
            if self.eat(&Tok::Kw(Keyword::Not)) {
                let v = self.var()?;
                if v.plus {
                    return Err(QueryError::at(
                        QueryErrorKind::Unexpected {
                            found: "`+`".into(),
                            expected: "a singleton NOT variable (Kleene plus is not allowed)"
                                .into(),
                        },
                        v.pos,
                    ));
                }
                negations.push(crate::ast::NegAst {
                    name: v.name,
                    after_set: sets.len() - 1,
                    pos: v.pos,
                });
            } else {
                sets.push(self.set()?);
            }
        }

        let mut conditions = Vec::new();
        if self.eat(&Tok::Kw(Keyword::Where)) {
            conditions.push(self.condition()?);
            while self.eat(&Tok::Kw(Keyword::And)) {
                conditions.push(self.condition()?);
            }
        }

        let within = if self.peek().tok == Tok::Kw(Keyword::Within) {
            Some(self.within()?)
        } else {
            None
        };

        Ok(QueryAst {
            sets,
            negations,
            conditions,
            within,
        })
    }

    fn set(&mut self) -> Result<SetAst, QueryError> {
        let pos = self.peek().pos;
        if self.eat(&Tok::Kw(Keyword::Permute)) {
            if !self.eat(&Tok::LParen) {
                return self.unexpected("`(` after PERMUTE");
            }
            let mut vars = vec![self.var()?];
            while self.eat(&Tok::Comma) {
                vars.push(self.var()?);
            }
            if !self.eat(&Tok::RParen) {
                return self.unexpected("`,` or `)` in PERMUTE list");
            }
            Ok(SetAst {
                vars,
                permute: true,
                pos,
            })
        } else {
            let v = self.var()?;
            Ok(SetAst {
                vars: vec![v],
                permute: false,
                pos,
            })
        }
    }

    fn var(&mut self) -> Result<VarAst, QueryError> {
        let pos = self.peek().pos;
        let Tok::Ident(name) = self.peek().tok.clone() else {
            return self.unexpected("a variable name");
        };
        self.bump();
        let plus = self.eat(&Tok::Plus);
        Ok(VarAst { name, plus, pos })
    }

    fn condition(&mut self) -> Result<CondAst, QueryError> {
        let lhs = self.operand()?;
        let op = self.cmp_op()?;
        let rhs = self.operand()?;
        Ok(CondAst { lhs, op, rhs })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, QueryError> {
        let op = match self.peek().tok {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return self.unexpected("a comparison operator"),
        };
        self.bump();
        Ok(op)
    }

    fn operand(&mut self) -> Result<OperandAst, QueryError> {
        let pos = self.peek().pos;
        match self.peek().tok.clone() {
            Tok::Ident(var) => {
                self.bump();
                if !self.eat(&Tok::Dot) {
                    return self.unexpected("`.` (conditions reference `variable.attribute`)");
                }
                let Tok::Ident(attr) = self.peek().tok.clone() else {
                    return self.unexpected("an attribute name");
                };
                self.bump();
                Ok(OperandAst::Attr { var, attr, pos })
            }
            Tok::Str(s) => {
                self.bump();
                Ok(OperandAst::Literal {
                    value: Value::str(s),
                    pos,
                })
            }
            Tok::Int(v) => {
                self.bump();
                Ok(OperandAst::Literal {
                    value: Value::Int(v),
                    pos,
                })
            }
            Tok::Float(v) => {
                self.bump();
                Ok(OperandAst::Literal {
                    value: Value::Float(v),
                    pos,
                })
            }
            Tok::Kw(Keyword::True) => {
                self.bump();
                Ok(OperandAst::Literal {
                    value: Value::Bool(true),
                    pos,
                })
            }
            Tok::Kw(Keyword::False) => {
                self.bump();
                Ok(OperandAst::Literal {
                    value: Value::Bool(false),
                    pos,
                })
            }
            _ => self.unexpected("an operand (`variable.attribute` or a literal)"),
        }
    }

    fn within(&mut self) -> Result<WithinAst, QueryError> {
        let pos = self.expect_kw(Keyword::Within, "`WITHIN`")?;
        let Tok::Int(amount) = self.peek().tok else {
            return self.unexpected("an integer window size");
        };
        self.bump();
        let unit = match self.peek().tok {
            Tok::Kw(Keyword::Ticks) => WindowUnit::Ticks,
            Tok::Kw(Keyword::Seconds) => WindowUnit::Seconds,
            Tok::Kw(Keyword::Minutes) => WindowUnit::Minutes,
            Tok::Kw(Keyword::Hours) => WindowUnit::Hours,
            Tok::Kw(Keyword::Days) => WindowUnit::Days,
            _ => return self.unexpected("a time unit (TICKS/SECONDS/MINUTES/HOURS/DAYS)"),
        };
        self.bump();
        Ok(WithinAst { amount, unit, pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "PATTERN PERMUTE(c, p+, d) THEN b \
                      WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
                        AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
                      WITHIN 264 HOURS";

    #[test]
    fn parses_q1() {
        let ast = parse(Q1).unwrap();
        assert_eq!(ast.sets.len(), 2);
        assert_eq!(ast.sets[0].vars.len(), 3);
        assert!(ast.sets[0].permute);
        assert!(ast.sets[0].vars[1].plus);
        assert_eq!(ast.sets[1].vars.len(), 1);
        assert!(!ast.sets[1].permute);
        assert_eq!(ast.conditions.len(), 7);
        let w = ast.within.unwrap();
        assert_eq!(w.amount, 264);
        assert_eq!(w.unit, WindowUnit::Hours);
    }

    #[test]
    fn parses_minimal_query() {
        let ast = parse("PATTERN a").unwrap();
        assert_eq!(ast.sets.len(), 1);
        assert!(ast.conditions.is_empty());
        assert!(ast.within.is_none());
    }

    #[test]
    fn parses_literal_kinds() {
        let ast = parse(
            "PATTERN a WHERE a.X = 5 AND a.Y = 2.5 AND a.Z = 'hi' AND a.B = TRUE AND a.C != FALSE",
        )
        .unwrap();
        assert_eq!(ast.conditions.len(), 5);
        assert!(matches!(
            &ast.conditions[0].rhs,
            OperandAst::Literal {
                value: Value::Int(5),
                ..
            }
        ));
        assert!(matches!(
            &ast.conditions[3].rhs,
            OperandAst::Literal {
                value: Value::Bool(true),
                ..
            }
        ));
    }

    #[test]
    fn literal_on_the_left_parses() {
        let ast = parse("PATTERN a WHERE 5 < a.X").unwrap();
        assert!(matches!(ast.conditions[0].lhs, OperandAst::Literal { .. }));
    }

    #[test]
    fn error_messages_point_at_the_problem() {
        let err = parse("PATTERN PERMUTE(c p)").unwrap_err();
        assert!(err.to_string().contains("`,` or `)`"), "{err}");
        let err = parse("PATTERN").unwrap_err();
        assert!(err.to_string().contains("a variable name"), "{err}");
        let err = parse("PATTERN a WHERE a.X ~ 1");
        assert!(err.is_err());
        let err = parse("PATTERN a WITHIN x HOURS").unwrap_err();
        assert!(err.to_string().contains("integer window"), "{err}");
        let err = parse("PATTERN a WITHIN 5 PARSECS").unwrap_err();
        assert!(err.to_string().contains("time unit"), "{err}");
        let err = parse("PATTERN a extra").unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");
    }

    #[test]
    fn condition_requires_dot_access() {
        let err = parse("PATTERN a WHERE a = 1").unwrap_err();
        assert!(err.to_string().contains("`.`"), "{err}");
    }

    #[test]
    fn trailing_then_is_an_error() {
        assert!(parse("PATTERN a THEN").is_err());
    }

    #[test]
    fn single_query_tolerates_trailing_semicolon() {
        assert!(parse("PATTERN a;").is_ok());
        assert!(parse("PATTERN a; PATTERN b").is_err()); // parse() is single-query
    }

    #[test]
    fn parses_query_files() {
        let file = "\
            protocol: PATTERN PERMUTE(c, d) THEN b WHERE c.L = 'C' WITHIN 10 TICKS;\n\
            -- a comment between queries\n\
            PATTERN x;\n\
            fever: PATTERN t WHERE t.L = 'T';";
        let items = parse_file(file).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].0.as_deref(), Some("protocol"));
        assert_eq!(items[0].1.sets.len(), 2);
        assert_eq!(items[1].0, None);
        assert_eq!(items[2].0.as_deref(), Some("fever"));
        assert_eq!(items[2].1.conditions.len(), 1);
    }

    #[test]
    fn query_file_errors() {
        // Missing separator.
        let err = parse_file("PATTERN a PATTERN b").unwrap_err();
        assert!(err.to_string().contains("`;`"), "{err}");
        // Empty file.
        assert!(parse_file("  -- nothing here\n").is_err());
        // A name without a query.
        assert!(parse_file("lonely:").is_err());
    }

    #[test]
    fn file_names_do_not_clash_with_keywords_or_queries() {
        // `PATTERN` at file start is a query, not a name.
        let items = parse_file("PATTERN a; b: PATTERN c").unwrap();
        assert_eq!(items[0].0, None);
        assert_eq!(items[1].0.as_deref(), Some("b"));
    }
}
