//! Abstract syntax tree of a parsed SES query.

use ses_event::{CmpOp, Value};

use crate::token::Pos;

/// A parsed query, before semantic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAst {
    /// The event set patterns of the `PATTERN` clause, in sequence order.
    pub sets: Vec<SetAst>,
    /// `NOT` variables with the index of the set they follow.
    pub negations: Vec<NegAst>,
    /// The conditions of the `WHERE` clause.
    pub conditions: Vec<CondAst>,
    /// The `WITHIN` clause, if present.
    pub within: Option<WithinAst>,
}

/// A `NOT x` element of the pattern clause.
#[derive(Debug, Clone, PartialEq)]
pub struct NegAst {
    /// The negated variable's name.
    pub name: String,
    /// 0-based index of the set the negation follows.
    pub after_set: usize,
    /// Source position.
    pub pos: Pos,
}

/// One event set pattern: a bare variable or a `PERMUTE(…)` group.
#[derive(Debug, Clone, PartialEq)]
pub struct SetAst {
    /// The variables of the set.
    pub vars: Vec<VarAst>,
    /// `true` when written as `PERMUTE(…)` (informational; a singleton
    /// `PERMUTE(v)` is equivalent to a bare `v`).
    pub permute: bool,
    /// Source position of the set.
    pub pos: Pos,
}

/// A variable declaration `v` or `v+`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarAst {
    /// Variable name.
    pub name: String,
    /// `true` for `v+` (Kleene plus).
    pub plus: bool,
    /// Source position.
    pub pos: Pos,
}

/// One side of a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum OperandAst {
    /// `variable.attribute`.
    Attr {
        /// Variable name.
        var: String,
        /// Attribute name.
        attr: String,
        /// Source position.
        pos: Pos,
    },
    /// A literal value.
    Literal {
        /// The value.
        value: Value,
        /// Source position.
        pos: Pos,
    },
}

impl OperandAst {
    /// The operand's source position.
    pub fn pos(&self) -> Pos {
        match self {
            OperandAst::Attr { pos, .. } | OperandAst::Literal { pos, .. } => *pos,
        }
    }
}

/// A condition `lhs φ rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct CondAst {
    /// Left operand.
    pub lhs: OperandAst,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: OperandAst,
}

/// The `WITHIN` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct WithinAst {
    /// The magnitude.
    pub amount: i64,
    /// The unit it was written in.
    pub unit: WindowUnit,
    /// Source position.
    pub pos: Pos,
}

/// Units accepted by `WITHIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowUnit {
    /// Raw ticks of the relation's time domain.
    Ticks,
    /// Seconds.
    Seconds,
    /// Minutes.
    Minutes,
    /// Hours.
    Hours,
    /// Days.
    Days,
}

impl WindowUnit {
    /// Seconds per unit (`None` for raw ticks).
    pub fn seconds(self) -> Option<i64> {
        match self {
            WindowUnit::Ticks => None,
            WindowUnit::Seconds => Some(1),
            WindowUnit::Minutes => Some(60),
            WindowUnit::Hours => Some(3600),
            WindowUnit::Days => Some(86400),
        }
    }
}

/// What one tick of the relation's time domain means, used to convert
/// `WITHIN` clauses written in wall-clock units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickUnit {
    /// One tick is one second.
    Second,
    /// One tick is one minute.
    Minute,
    /// One tick is one hour (the paper's chemotherapy domain).
    Hour,
    /// One tick is one day.
    Day,
    /// Ticks are abstract; only `WITHIN … TICKS` is allowed.
    Abstract,
}

impl TickUnit {
    /// Seconds per tick (`None` when abstract).
    pub fn seconds(self) -> Option<i64> {
        match self {
            TickUnit::Second => Some(1),
            TickUnit::Minute => Some(60),
            TickUnit::Hour => Some(3600),
            TickUnit::Day => Some(86400),
            TickUnit::Abstract => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(WindowUnit::Hours.seconds(), Some(3600));
        assert_eq!(WindowUnit::Ticks.seconds(), None);
        assert_eq!(TickUnit::Hour.seconds(), Some(3600));
        assert_eq!(TickUnit::Abstract.seconds(), None);
    }

    #[test]
    fn operand_pos() {
        let p = Pos { line: 1, col: 7 };
        let o = OperandAst::Literal {
            value: Value::from(1),
            pos: p,
        };
        assert_eq!(o.pos(), p);
    }
}
