//! The condition algebra `Θ` of an SES pattern.
//!
//! A condition has one of the two forms of the paper's Definition 1:
//!
//! * `v.A φ C` — a **constant condition**: the value of attribute `A` of
//!   the event bound to variable `v` compares against constant `C`;
//! * `v.A φ v'.A'` — a **variable condition**: attribute values of events
//!   bound to two (not necessarily distinct) variables compare against
//!   each other.
//!
//! with `φ ∈ {=, ≠, <, ≤, >, ≥}`.

use std::fmt;
use std::sync::Arc;

use ses_event::{CmpOp, Value};

use crate::VarId;

/// A reference `v.A` to an attribute of the event(s) bound to a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRef {
    /// The event variable.
    pub var: VarId,
    /// The attribute name (resolved against a schema at compile time).
    pub attr: Arc<str>,
}

impl AttrRef {
    /// Creates an attribute reference.
    pub fn new(var: VarId, attr: impl AsRef<str>) -> AttrRef {
        AttrRef {
            var,
            attr: Arc::from(attr.as_ref()),
        }
    }
}

/// Right-hand side of a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Rhs {
    /// A constant `C`.
    Const(Value),
    /// An attribute `v'.A'` of another (or the same) variable.
    Attr(AttrRef),
}

/// A single condition `lhs.attr φ rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Left-hand attribute reference `v.A`.
    pub lhs: AttrRef,
    /// Comparison operator `φ`.
    pub op: CmpOp,
    /// Right-hand side: constant or attribute reference.
    pub rhs: Rhs,
}

impl Condition {
    /// Creates a constant condition `v.A φ C`.
    pub fn constant(
        var: VarId,
        attr: impl AsRef<str>,
        op: CmpOp,
        value: impl Into<Value>,
    ) -> Condition {
        Condition {
            lhs: AttrRef::new(var, attr),
            op,
            rhs: Rhs::Const(value.into()),
        }
    }

    /// Creates a variable condition `v.A φ v'.A'`.
    pub fn vars(
        var: VarId,
        attr: impl AsRef<str>,
        op: CmpOp,
        other: VarId,
        other_attr: impl AsRef<str>,
    ) -> Condition {
        Condition {
            lhs: AttrRef::new(var, attr),
            op,
            rhs: Rhs::Attr(AttrRef::new(other, other_attr)),
        }
    }

    /// `true` iff this is a constant condition `v.A φ C`.
    pub fn is_constant(&self) -> bool {
        matches!(self.rhs, Rhs::Const(_))
    }

    /// The variables mentioned by the condition: `(lhs, Some(rhs))` for a
    /// variable condition, `(lhs, None)` for a constant condition.
    pub fn variables(&self) -> (VarId, Option<VarId>) {
        match &self.rhs {
            Rhs::Const(_) => (self.lhs.var, None),
            Rhs::Attr(r) => (self.lhs.var, Some(r.var)),
        }
    }

    /// `true` iff the condition mentions `var` on either side.
    pub fn mentions(&self, var: VarId) -> bool {
        let (a, b) = self.variables();
        a == var || b == Some(var)
    }
}

/// Renders the condition with variable names supplied by `names`
/// (falls back to `v<i>` when a name is unknown).
pub(crate) fn display_condition(c: &Condition, names: &dyn Fn(VarId) -> String) -> String {
    let lhs = format!("{}.{}", names(c.lhs.var), c.lhs.attr);
    match &c.rhs {
        Rhs::Const(v) => format!("{} {} {}", lhs, c.op, v),
        Rhs::Attr(r) => format!("{} {} {}.{}", lhs, c.op, names(r.var), r.attr),
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&display_condition(self, &|v: VarId| v.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_condition_shape() {
        let c = Condition::constant(VarId(0), "L", CmpOp::Eq, "C");
        assert!(c.is_constant());
        assert_eq!(c.variables(), (VarId(0), None));
        assert!(c.mentions(VarId(0)));
        assert!(!c.mentions(VarId(1)));
        assert_eq!(c.to_string(), "v0.L = 'C'");
    }

    #[test]
    fn variable_condition_shape() {
        let c = Condition::vars(VarId(0), "ID", CmpOp::Eq, VarId(2), "ID");
        assert!(!c.is_constant());
        assert_eq!(c.variables(), (VarId(0), Some(VarId(2))));
        assert!(c.mentions(VarId(2)));
        assert_eq!(c.to_string(), "v0.ID = v2.ID");
    }

    #[test]
    fn self_condition_mentions_once() {
        let c = Condition::vars(VarId(1), "high", CmpOp::Gt, VarId(1), "low");
        assert_eq!(c.variables(), (VarId(1), Some(VarId(1))));
        assert!(c.mentions(VarId(1)));
    }
}
