//! Event→pattern predicate index for multi-pattern (bank) execution.
//!
//! With N patterns registered against one stream, a naive bank pushes
//! every event into every matcher. The paper's §4.5 constant-predicate
//! filter generalizes across patterns: an event needs to reach pattern
//! `p` only when it could possibly *advance* `p` — bind to one of its
//! variables or violate one of its negations. Both are decidable from
//! constant conditions alone:
//!
//! * An event can bind to variable `v` only if it satisfies **all** of
//!   `v`'s constant conditions ([`CompiledPattern::satisfies_var_constants`]
//!   is a necessary criterion — every transition evaluates every
//!   condition of the variable it binds).
//! * An event can violate a negation only if it satisfies **all** of the
//!   negation's constant conditions
//!   ([`crate::CompiledNegation::violated_by`] returns `false` the moment
//!   one fails, regardless of the positive bindings).
//!
//! So pattern `p` *admits* event `e` iff some **admission group** — one
//! per positive variable, one per negation, each the conjunction of its
//! constant conditions — holds on `e` in full. An event admitted by no
//! group of `p` is invisible to `p`'s matching outcome; the bank only
//! heartbeats `p`'s watermark (see `ses-core`'s `PatternBank` and
//! `docs/patternbank.md` for the full soundness argument).
//!
//! # Classification
//!
//! Each pattern is classified once at build time:
//!
//! * **Every** — some variable or negation has *no* constant conditions:
//!   any event could advance the pattern, so it receives every event.
//! * **Never** — Θ is provably unsatisfiable (`SES001`): the matcher can
//!   never emit, so no event is routed (heartbeats only).
//! * **Indexed** — every admission group pins some attribute to a single
//!   point value (computed with the interval [`Domain`]): the group
//!   subscribes under `(attribute, value)` in a hash map, and a push
//!   probes one key per constrained attribute instead of evaluating N
//!   predicates.
//! * **Scanned** — constrained, but at least one group is not a point
//!   (e.g. only range conditions): the admission predicate is evaluated
//!   per event. Still skips — just without the O(1) lookup.
//!
//! Point subscriptions are restricted to `Int`/`Str`/`Bool` values whose
//! type equals the schema's attribute type: for those, condition
//! equality coincides with [`PartitionKey`] hash-equality. Floats are
//! excluded (`-0.0 == 0.0` compares equal but hashes differently), as
//! are cross-type numeric pins — such groups fall back to **Scanned**,
//! trading the lookup for unconditional soundness.

use std::collections::HashMap;

use ses_event::{AttrId, CmpOp, Event, PartitionKey, Value};

use crate::{AdmissionLanes, CompiledPattern, Domain};

/// How the index routes events to one registered pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexClass {
    /// Some variable or negation carries no constant condition — the
    /// pattern must see every event.
    Every,
    /// Θ is provably unsatisfiable — the pattern sees no event at all.
    Never,
    /// Every admission group is pinned to a point: events reach the
    /// pattern through the hash lookup.
    Indexed,
    /// The admission predicate is evaluated against every event.
    Scanned,
}

/// One admission group: the constant-condition conjunction of a single
/// variable or negation, pre-extracted as `(attr, op, value)` triples.
#[derive(Debug, Clone)]
struct Group {
    conds: Vec<(AttrId, CmpOp, Value)>,
}

impl Group {
    fn holds(&self, event: &Event) -> bool {
        self.conds
            .iter()
            .all(|(attr, op, v)| event.value(*attr).compare(*op, v))
    }

    /// The `(attribute, value)` point every event satisfying this group
    /// is pinned to, when one exists and its equality is hash-faithful
    /// (see the module docs). Groups whose interval domain is provably
    /// empty return the marker `Empty` instead — no event satisfies
    /// them, and the caller drops them outright.
    fn point(&self, pattern: &CompiledPattern) -> GroupPoint {
        let mut attrs: Vec<AttrId> = self.conds.iter().map(|c| c.0).collect();
        attrs.sort_unstable();
        attrs.dedup();
        let mut point = GroupPoint::None;
        for attr in attrs {
            let mut dom = Domain::top();
            for (a, op, v) in &self.conds {
                if *a == attr {
                    dom.constrain(*op, v);
                }
            }
            if dom.is_empty() {
                return GroupPoint::Empty;
            }
            if dom.is_poisoned() || !matches!(point, GroupPoint::None) {
                continue;
            }
            if let Some(v) = dom.point() {
                let hash_faithful = matches!(v, Value::Int(_) | Value::Str(_) | Value::Bool(_))
                    && v.attr_type() == pattern.schema().attr_type(attr);
                if hash_faithful {
                    point = GroupPoint::At(attr, v.clone());
                }
            }
        }
        point
    }
}

enum GroupPoint {
    /// No hash-faithful point — the group forces a scan.
    None,
    /// Pinned to `(attr, value)`.
    At(AttrId, Value),
    /// The conjunction is provably unsatisfiable — drop the group.
    Empty,
}

/// Per-pattern admission predicate.
#[derive(Debug, Clone)]
enum Admission {
    Every,
    Never,
    /// The event must fully satisfy at least one group.
    Groups(Vec<Group>),
}

/// An event→pattern predicate index over N compiled patterns sharing
/// one schema.
///
/// Built once at bank construction; [`PatternIndex::admitted`] returns
/// the ids of the patterns an event must reach, and
/// [`PatternIndex::admits`] answers the per-pattern question directly.
/// See the module docs for the admission criterion and its soundness.
#[derive(Debug, Clone)]
pub struct PatternIndex {
    admissions: Vec<Admission>,
    classes: Vec<IndexClass>,
    /// Patterns that receive every event.
    every: Vec<usize>,
    /// Patterns whose predicate is evaluated per event.
    scan: Vec<usize>,
    /// Point subscriptions: `(attr, value-key) → pattern ids` (deduped,
    /// ascending). Candidates are verified against the full admission
    /// predicate before routing.
    point: HashMap<(AttrId, PartitionKey), Vec<usize>>,
    /// Distinct attributes with point subscriptions — the keys a lookup
    /// probes.
    point_attrs: Vec<AttrId>,
}

impl PatternIndex {
    /// Builds the index over `patterns`, in registration order. All
    /// patterns must be compiled against the same schema (the bank
    /// enforces this; the index itself only reads attribute ids).
    pub fn build<'a>(patterns: impl IntoIterator<Item = &'a CompiledPattern>) -> PatternIndex {
        let mut idx = PatternIndex {
            admissions: Vec::new(),
            classes: Vec::new(),
            every: Vec::new(),
            scan: Vec::new(),
            point: HashMap::new(),
            point_attrs: Vec::new(),
        };
        for (id, cp) in patterns.into_iter().enumerate() {
            let (admission, class) = classify(cp, id, &mut idx.point);
            match class {
                IndexClass::Every => idx.every.push(id),
                IndexClass::Scanned => idx.scan.push(id),
                IndexClass::Indexed | IndexClass::Never => {}
            }
            idx.admissions.push(admission);
            idx.classes.push(class);
        }
        idx.point_attrs = idx.point.keys().map(|(a, _)| *a).collect();
        idx.point_attrs.sort_unstable();
        idx.point_attrs.dedup();
        for ids in idx.point.values_mut() {
            ids.sort_unstable();
            ids.dedup();
        }
        idx
    }

    /// Number of registered patterns.
    pub fn len(&self) -> usize {
        self.admissions.len()
    }

    /// `true` iff no pattern is registered.
    pub fn is_empty(&self) -> bool {
        self.admissions.is_empty()
    }

    /// How the index routes events to pattern `id`.
    pub fn class(&self, id: usize) -> IndexClass {
        self.classes[id]
    }

    /// Number of `(attribute, value)` point subscriptions.
    pub fn point_subscriptions(&self) -> usize {
        self.point.values().map(Vec::len).sum()
    }

    /// `true` iff `event` must reach pattern `id`: it satisfies some
    /// admission group in full (or the pattern is classified `Every`).
    pub fn admits(&self, id: usize, event: &Event) -> bool {
        match &self.admissions[id] {
            Admission::Every => true,
            Admission::Never => false,
            Admission::Groups(groups) => groups.iter().any(|g| g.holds(event)),
        }
    }

    /// Ids of every pattern `event` must reach, ascending and deduped:
    /// the `Every` patterns, the scanned patterns whose predicate holds,
    /// and the verified point-lookup candidates.
    pub fn admitted(&self, event: &Event) -> Vec<usize> {
        let mut out = self.every.clone();
        out.extend(self.scan.iter().copied().filter(|&i| self.admits(i, event)));
        for &attr in &self.point_attrs {
            let key = (attr, PartitionKey::of(event.value(attr)));
            if let Some(ids) = self.point.get(&key) {
                out.extend(ids.iter().copied().filter(|&i| self.admits(i, event)));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Builds pattern `id`'s admission groups and classification, inserting
/// point subscriptions into `point` as a side effect.
///
/// The group derivation itself lives in [`AdmissionLanes`] — the same
/// enumeration the columnar evaluation layer consumes — so index
/// admission and bitmask admission cannot drift apart.
fn classify(
    cp: &CompiledPattern,
    id: usize,
    point: &mut HashMap<(AttrId, PartitionKey), Vec<usize>>,
) -> (Admission, IndexClass) {
    if !cp.is_satisfiable() {
        return (Admission::Never, IndexClass::Never);
    }
    let lanes = AdmissionLanes::of(cp);
    let mut groups: Vec<Group> = Vec::new();
    for g in lanes.groups() {
        if g.lanes.is_empty() {
            // An unconstrained variable (any event could bind) or a
            // negation whose constant conjunction holds vacuously (any
            // event could be a killer).
            return (Admission::Every, IndexClass::Every);
        }
        let conds = g
            .lanes
            .iter()
            .map(|&i| {
                let l = &lanes.lanes()[i];
                (l.attr, l.op, l.value.clone())
            })
            .collect();
        groups.push(Group { conds });
    }
    if groups.is_empty() {
        // No variables and no negations — nothing to advance.
        return (Admission::Groups(Vec::new()), IndexClass::Indexed);
    }
    let mut kept = Vec::with_capacity(groups.len());
    let mut all_pointed = true;
    let mut points = Vec::new();
    for g in groups {
        match g.point(cp) {
            // No event satisfies the group's conjunction: admitting
            // through it is impossible, so it contributes nothing.
            GroupPoint::Empty => continue,
            GroupPoint::At(attr, value) => points.push((attr, value)),
            GroupPoint::None => all_pointed = false,
        }
        kept.push(g);
    }
    if all_pointed {
        for (attr, value) in points {
            point
                .entry((attr, PartitionKey::of(&value)))
                .or_default()
                .push(id);
        }
        (Admission::Groups(kept), IndexClass::Indexed)
    } else {
        (Admission::Groups(kept), IndexClass::Scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pattern;
    use ses_event::{AttrType, Duration, Schema, Timestamp};

    fn schema() -> Schema {
        Schema::builder()
            .attr("L", AttrType::Str)
            .attr("ID", AttrType::Int)
            .build()
            .unwrap()
    }

    fn event(l: &str, id: i64) -> Event {
        Event::new(Timestamp::new(0), vec![Value::from(l), Value::from(id)])
    }

    fn typed(a: &str, b: &str) -> CompiledPattern {
        Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, a)
            .cond_const("b", "L", CmpOp::Eq, b)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap()
    }

    #[test]
    fn typed_patterns_are_point_indexed() {
        let ps = [typed("A", "B"), typed("C", "D")];
        let idx = PatternIndex::build(&ps);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.class(0), IndexClass::Indexed);
        assert_eq!(idx.class(1), IndexClass::Indexed);
        assert_eq!(idx.point_subscriptions(), 4);
        assert_eq!(idx.admitted(&event("A", 1)), vec![0]);
        assert_eq!(idx.admitted(&event("D", 1)), vec![1]);
        assert!(idx.admits(0, &event("B", 1)));
        assert!(!idx.admits(0, &event("C", 1)));
    }

    #[test]
    fn unconstrained_variable_forces_every() {
        // `b` has no constant condition: any event could bind to it.
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let idx = PatternIndex::build([&p, &typed("C", "D")]);
        assert_eq!(idx.class(0), IndexClass::Every);
        // Even an event matching no constant of pattern 0 reaches it.
        assert_eq!(idx.admitted(&event("Z", 9)), vec![0]);
        assert_eq!(idx.admitted(&event("C", 9)), vec![0, 1]);
    }

    #[test]
    fn overlapping_constraints_route_to_all_matching_patterns() {
        // Both patterns want A events for their first variable.
        let ps = [typed("A", "B"), typed("A", "C")];
        let idx = PatternIndex::build(&ps);
        assert_eq!(idx.admitted(&event("A", 1)), vec![0, 1]);
        assert_eq!(idx.admitted(&event("B", 1)), vec![0]);
        assert_eq!(idx.admitted(&event("C", 1)), vec![1]);
    }

    #[test]
    fn foreign_event_types_route_nowhere() {
        let ps = [typed("A", "B"), typed("C", "D")];
        let idx = PatternIndex::build(&ps);
        assert!(idx.admitted(&event("X", 1)).is_empty());
    }

    #[test]
    fn unsatisfiable_pattern_is_never_routed() {
        // ID > 10 ∧ ID < 5 is provably empty (SES001).
        let dead = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("a", "ID", CmpOp::Gt, 10)
            .cond_const("a", "ID", CmpOp::Lt, 5)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        assert!(!dead.is_satisfiable());
        let idx = PatternIndex::build([&dead, &typed("A", "B")]);
        assert_eq!(idx.class(0), IndexClass::Never);
        // The A event matches the dead pattern's constants, but routing
        // it would be wasted work: Θ can never be satisfied.
        assert_eq!(idx.admitted(&event("A", 7)), vec![1]);
        assert!(!idx.admits(0, &event("A", 7)));
    }

    #[test]
    fn range_conditions_fall_back_to_scanned() {
        // `ID > 3` pins no point: the pattern is scanned, not indexed —
        // but still skips events outside the range.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "ID", CmpOp::Gt, 3)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let idx = PatternIndex::build([&p]);
        assert_eq!(idx.class(0), IndexClass::Scanned);
        assert_eq!(idx.point_subscriptions(), 0);
        assert_eq!(idx.admitted(&event("A", 5)), vec![0]);
        assert!(idx.admitted(&event("A", 2)).is_empty());
    }

    #[test]
    fn mixed_point_and_range_group_verifies_in_full() {
        // L = 'A' ∧ ID > 3 on one variable: indexed under ('L', "A"),
        // but the lookup candidate is verified against the whole
        // conjunction — an A event with a small ID is still skipped.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("a", "ID", CmpOp::Gt, 3)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let idx = PatternIndex::build([&p]);
        assert_eq!(idx.class(0), IndexClass::Indexed);
        assert_eq!(idx.admitted(&event("A", 5)), vec![0]);
        assert!(idx.admitted(&event("A", 1)).is_empty());
    }

    #[test]
    fn negation_constants_admit_potential_killers() {
        // a THEN b with NOT x (x.L = 'X') guarding the gap: X events
        // bind to no variable but can kill matches — they must be
        // admitted.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("x")
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .neg_cond_const("x", "L", CmpOp::Eq, "X")
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let idx = PatternIndex::build([&p]);
        assert_eq!(idx.class(0), IndexClass::Indexed);
        assert!(idx.admits(0, &event("X", 1)));
        assert!(idx.admitted(&event("Y", 1)).is_empty());
    }

    #[test]
    fn negation_without_constants_forces_every() {
        // x is only correlated (x.ID = a.ID): whether an event kills
        // depends on the bindings, so every event must be admitted.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("x")
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .neg_cond_vars("x", "ID", CmpOp::Eq, "a", "ID")
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let idx = PatternIndex::build([&p]);
        assert_eq!(idx.class(0), IndexClass::Every);
        assert!(idx.admits(0, &event("Z", 1)));
    }

    #[test]
    fn ne_point_conflict_drops_the_group() {
        // L = 'A' ∧ L ≠ 'A' is empty: variable `a` can never bind, so
        // its group is dropped and nothing is ever admitted through it.
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("a", "L", CmpOp::Ne, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let idx = PatternIndex::build([&p]);
        // Either the analyzer already proved Θ empty (Never), or the
        // index dropped the empty group; both route the A event nowhere.
        assert!(!idx.admits(0, &event("A", 1)));
    }

    #[test]
    fn float_equality_stays_scanned_and_sign_zero_routes() {
        // `-0.0 == 0.0` compares equal but the two values hash to
        // different partition keys, so a Float point pin must never
        // reach the hash map: the group stays Scanned, and the scan's
        // value comparison treats both zeros identically.
        let fschema = Schema::builder()
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .build()
            .unwrap();
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("a", "V", CmpOp::Eq, 0.0)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&fschema)
            .unwrap();
        let idx = PatternIndex::build([&p]);
        // L = 'A' pins a hash-faithful Str point, so the group may
        // still be Indexed through L — but never through V. Whatever
        // the class, both zero spellings must route identically.
        assert_eq!(
            idx.point_subscriptions(),
            usize::from(idx.class(0) == IndexClass::Indexed)
        );
        let pos = Event::new(Timestamp::new(0), vec![Value::from("A"), Value::from(0.0)]);
        let neg = Event::new(Timestamp::new(0), vec![Value::from("A"), Value::from(-0.0)]);
        assert!(idx.admits(0, &pos));
        assert!(idx.admits(0, &neg));
        assert_eq!(idx.admitted(&pos), vec![0]);
        assert_eq!(idx.admitted(&neg), vec![0]);

        // With *only* the Float pin available the pattern must fall all
        // the way back to Scanned.
        let p2 = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "V", CmpOp::Eq, 0.0)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&fschema)
            .unwrap();
        let idx2 = PatternIndex::build([&p2]);
        assert_eq!(idx2.class(0), IndexClass::Scanned);
        assert_eq!(idx2.point_subscriptions(), 0);
        let neg_only = Event::new(Timestamp::new(0), vec![Value::from("Z"), Value::from(-0.0)]);
        assert_eq!(idx2.admitted(&neg_only), vec![0]);
    }

    #[test]
    fn empty_bank_admits_nothing() {
        let idx = PatternIndex::build(std::iter::empty::<&CompiledPattern>());
        assert!(idx.is_empty());
        assert!(idx.admitted(&event("A", 1)).is_empty());
    }
}
