//! Event variables: the atoms of an SES pattern.

use std::fmt;
use std::sync::Arc;

/// Dense identifier of an event variable within a [`crate::Pattern`].
///
/// Variable ids are assigned in declaration order across all event set
/// patterns, so they also index the bit positions of the automaton's
/// state bitsets in `ses-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u16);

impl VarId {
    /// The variable's position in the pattern's declaration order.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The bitmask with only this variable's bit set (used by the automaton
    /// state representation; patterns are limited to 64 variables).
    #[inline]
    pub fn bit(self) -> u64 {
        1u64 << self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// How many events a variable binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// A singleton variable binds exactly one event.
    Singleton,
    /// A group variable (`v+`, Kleene plus) binds one or more events.
    Plus,
}

impl Quantifier {
    /// `true` for group variables.
    #[inline]
    pub fn is_group(self) -> bool {
        matches!(self, Quantifier::Plus)
    }
}

/// An event variable: a name plus a quantifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    name: Arc<str>,
    quantifier: Quantifier,
    set_index: usize,
}

impl Variable {
    pub(crate) fn new(name: Arc<str>, quantifier: Quantifier, set_index: usize) -> Variable {
        Variable {
            name,
            quantifier,
            set_index,
        }
    }

    /// The variable's name, unique within its pattern.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Singleton or group.
    pub fn quantifier(&self) -> Quantifier {
        self.quantifier
    }

    /// `true` iff this is a group variable (`v+`).
    pub fn is_group(&self) -> bool {
        self.quantifier.is_group()
    }

    /// Index of the event set pattern `Vi` the variable belongs to
    /// (0-based).
    pub fn set_index(&self) -> usize {
        self.set_index
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if self.is_group() {
            write!(f, "+")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_id_bits() {
        assert_eq!(VarId(0).bit(), 1);
        assert_eq!(VarId(3).bit(), 8);
        assert_eq!(VarId(5).index(), 5);
        assert_eq!(VarId(2).to_string(), "v2");
    }

    #[test]
    fn variable_display_marks_groups() {
        let v = Variable::new(Arc::from("p"), Quantifier::Plus, 0);
        assert_eq!(v.to_string(), "p+");
        assert!(v.is_group());
        let s = Variable::new(Arc::from("c"), Quantifier::Singleton, 1);
        assert_eq!(s.to_string(), "c");
        assert!(!s.is_group());
        assert_eq!(s.set_index(), 1);
    }
}
