//! Negated event variables — an extension beyond the paper.
//!
//! A negation `NOT x` placed between event set patterns `Vi` and `Vi+1`
//! asserts that **no** event satisfying `x`'s conditions occurs strictly
//! between the (chronologically) last event bound to `Vi` and the first
//! event bound to `Vi+1`. This is the classic `SEQ(A, ¬B, C)` gap
//! constraint of SASE/Cayuga, generalized to event *sets*; the paper's
//! conclusion lists "support [for] a broader class of SES patterns" as
//! future work, and negation is the most requested member of that class.
//!
//! A negated variable never binds into a match; its conditions may
//! reference constants and *positive* pattern variables (e.g.
//! `x.ID = c.ID` to scope the prohibition to the matched patient).

use std::sync::Arc;

use ses_event::{AttrId, CmpOp, Event, Relation, Schema, Value};

use crate::condition::Rhs;
use crate::{PatternError, VarId};

/// A negated variable and its placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Negation {
    name: Arc<str>,
    /// The negation guards the gap between `sets[after_set]` and
    /// `sets[after_set + 1]`.
    after_set: usize,
    conditions: Vec<NegCondition>,
}

/// One condition on a negated event: `x.attr φ rhs` where `rhs` is a
/// constant or an attribute of a positive variable.
#[derive(Debug, Clone, PartialEq)]
pub struct NegCondition {
    /// The negated event's attribute name.
    pub attr: Arc<str>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant or positive-variable attribute.
    pub rhs: Rhs,
}

impl Negation {
    pub(crate) fn new(name: Arc<str>, after_set: usize) -> Negation {
        Negation {
            name,
            after_set,
            conditions: Vec::new(),
        }
    }

    pub(crate) fn push_condition(&mut self, cond: NegCondition) {
        self.conditions.push(cond);
    }

    /// The negated variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Index `i` such that the negation guards the gap `Vi → Vi+1`
    /// (0-based).
    pub fn after_set(&self) -> usize {
        self.after_set
    }

    /// The conditions a gap event must satisfy to violate the negation.
    pub fn conditions(&self) -> &[NegCondition] {
        &self.conditions
    }

    /// With a new `after_set` (used by the brute-force chain mapping).
    pub fn relocated(&self, after_set: usize) -> Negation {
        Negation {
            after_set,
            ..self.clone()
        }
    }
}

/// A negation with attributes resolved against a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNegation {
    /// Source negation's name.
    pub name: Arc<str>,
    /// Guarded gap (between `after_set` and `after_set + 1`).
    pub after_set: usize,
    /// Resolved conditions.
    pub conditions: Vec<CompiledNegCondition>,
}

/// A resolved negation condition.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNegCondition {
    /// The negated event's attribute.
    pub attr: AttrId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant or positive-variable attribute.
    pub rhs: CompiledNegRhs,
}

/// Resolved right-hand side of a negation condition.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledNegRhs {
    /// A constant.
    Const(Value),
    /// An attribute of a positive variable's binding(s).
    Attr {
        /// The positive variable.
        var: VarId,
        /// Its attribute.
        attr: AttrId,
    },
}

impl CompiledNegation {
    pub(crate) fn compile(
        neg: &Negation,
        schema: &Schema,
        pretty_var: &dyn Fn(VarId) -> String,
    ) -> Result<CompiledNegation, PatternError> {
        let mut conditions = Vec::with_capacity(neg.conditions.len());
        for c in &neg.conditions {
            let attr = schema
                .attr_id(&c.attr)
                .ok_or_else(|| PatternError::UnknownAttribute {
                    attr: c.attr.to_string(),
                })?;
            let lhs_ty = schema.attr_type(attr);
            let pretty = || match &c.rhs {
                Rhs::Const(v) => format!("{}.{} {} {}", neg.name, c.attr, c.op, v),
                Rhs::Attr(r) => format!(
                    "{}.{} {} {}.{}",
                    neg.name,
                    c.attr,
                    c.op,
                    pretty_var(r.var),
                    r.attr
                ),
            };
            let rhs = match &c.rhs {
                Rhs::Const(v) => {
                    if !lhs_ty.comparable_with(v.attr_type()) {
                        return Err(PatternError::IncomparableTypes {
                            condition: pretty(),
                            lhs: lhs_ty,
                            rhs: v.attr_type(),
                        });
                    }
                    CompiledNegRhs::Const(v.clone())
                }
                Rhs::Attr(r) => {
                    let rattr =
                        schema
                            .attr_id(&r.attr)
                            .ok_or_else(|| PatternError::UnknownAttribute {
                                attr: r.attr.to_string(),
                            })?;
                    let rhs_ty = schema.attr_type(rattr);
                    if !lhs_ty.comparable_with(rhs_ty) {
                        return Err(PatternError::IncomparableTypes {
                            condition: pretty(),
                            lhs: lhs_ty,
                            rhs: rhs_ty,
                        });
                    }
                    CompiledNegRhs::Attr {
                        var: r.var,
                        attr: rattr,
                    }
                }
            };
            conditions.push(CompiledNegCondition {
                attr,
                op: c.op,
                rhs,
            });
        }
        Ok(CompiledNegation {
            name: neg.name.clone(),
            after_set: neg.after_set,
            conditions,
        })
    }

    /// Whether `event` violates this negation, given resolvers for the
    /// positive bindings: `bindings_of(var)` yields the events bound to
    /// `var` in the candidate match.
    ///
    /// Decomposition semantics: the negation fires if **some** choice of
    /// one binding per referenced variable satisfies every condition
    /// simultaneously. Referenced variables are resolved through
    /// `relation`.
    pub fn violated_by(
        &self,
        event: &Event,
        relation: &Relation,
        bindings_of: &dyn Fn(VarId) -> Vec<ses_event::EventId>,
    ) -> bool {
        // Collect the referenced variables and their candidate bindings.
        let mut vars: Vec<VarId> = self
            .conditions
            .iter()
            .filter_map(|c| match &c.rhs {
                CompiledNegRhs::Attr { var, .. } => Some(*var),
                CompiledNegRhs::Const(_) => None,
            })
            .collect();
        vars.sort_unstable();
        vars.dedup();

        // Constant conditions must hold regardless of the choice.
        for c in &self.conditions {
            if let CompiledNegRhs::Const(v) = &c.rhs {
                if !event.value(c.attr).compare(c.op, v) {
                    return false;
                }
            }
        }
        if vars.is_empty() {
            return true;
        }

        // Cartesian product over per-variable binding choices (group
        // variables may have several; singletons have one).
        let choices: Vec<Vec<ses_event::EventId>> = vars.iter().map(|v| bindings_of(*v)).collect();
        if choices.iter().any(Vec::is_empty) {
            return false; // referenced variable unbound — cannot relate
        }
        let mut idx = vec![0usize; vars.len()];
        loop {
            let satisfied = self.conditions.iter().all(|c| match &c.rhs {
                CompiledNegRhs::Const(_) => true, // checked above
                CompiledNegRhs::Attr { var, attr } => {
                    let vi = vars.iter().position(|v| v == var).expect("collected");
                    let bound = relation.event(choices[vi][idx[vi]]);
                    event.value(c.attr).compare(c.op, bound.value(*attr))
                }
            });
            if satisfied {
                return true;
            }
            // Odometer.
            let mut i = 0;
            loop {
                if i == idx.len() {
                    return false;
                }
                idx[i] += 1;
                if idx[i] < choices[i].len() {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, EventId, Schema, Timestamp};

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap()
    }

    fn compiled(conds: Vec<NegCondition>) -> CompiledNegation {
        let mut n = Negation::new(Arc::from("x"), 0);
        for c in conds {
            n.push_condition(c);
        }
        CompiledNegation::compile(&n, &schema(), &|v| v.to_string()).unwrap()
    }

    fn rel(rows: &[(i64, i64, &str)]) -> Relation {
        let mut r = Relation::new(schema());
        for (t, id, l) in rows {
            r.push_values(Timestamp::new(*t), [Value::from(*id), Value::from(*l)])
                .unwrap();
        }
        r
    }

    #[test]
    fn constant_only_negation() {
        let n = compiled(vec![NegCondition {
            attr: Arc::from("L"),
            op: CmpOp::Eq,
            rhs: Rhs::Const(Value::from("X")),
        }]);
        let r = rel(&[(0, 1, "X"), (1, 1, "Y")]);
        let none = |_v: VarId| Vec::new();
        assert!(n.violated_by(r.event(EventId(0)), &r, &none));
        assert!(!n.violated_by(r.event(EventId(1)), &r, &none));
    }

    #[test]
    fn correlated_negation_uses_bindings() {
        // x.L='X' ∧ x.ID = v0.ID
        let n = compiled(vec![
            NegCondition {
                attr: Arc::from("L"),
                op: CmpOp::Eq,
                rhs: Rhs::Const(Value::from("X")),
            },
            NegCondition {
                attr: Arc::from("ID"),
                op: CmpOp::Eq,
                rhs: Rhs::Attr(crate::AttrRef::new(VarId(0), "ID")),
            },
        ]);
        // e1 is patient-1 X, e2 patient-2 X; v0 bound to a patient-1 event e3.
        let r = rel(&[(0, 1, "X"), (1, 2, "X"), (2, 1, "A")]);
        let bindings = |v: VarId| {
            if v == VarId(0) {
                vec![EventId(2)]
            } else {
                vec![]
            }
        };
        assert!(n.violated_by(r.event(EventId(0)), &r, &bindings));
        assert!(!n.violated_by(r.event(EventId(1)), &r, &bindings));
    }

    #[test]
    fn group_variable_rhs_uses_any_binding() {
        // x.ID = v0.ID with v0 bound to two events of different patients:
        // either choice may fire the negation.
        let n = compiled(vec![NegCondition {
            attr: Arc::from("ID"),
            op: CmpOp::Eq,
            rhs: Rhs::Attr(crate::AttrRef::new(VarId(0), "ID")),
        }]);
        let r = rel(&[(0, 1, "X"), (1, 1, "A"), (2, 2, "A")]);
        let bindings = |v: VarId| {
            if v == VarId(0) {
                vec![EventId(1), EventId(2)]
            } else {
                vec![]
            }
        };
        assert!(n.violated_by(r.event(EventId(0)), &r, &bindings));
        // Unbound referenced variable → cannot relate → no violation.
        let none = |_v: VarId| Vec::new();
        assert!(!n.violated_by(r.event(EventId(0)), &r, &none));
    }

    #[test]
    fn compile_rejects_bad_attrs_and_types() {
        let mut n = Negation::new(Arc::from("x"), 0);
        n.push_condition(NegCondition {
            attr: Arc::from("NOPE"),
            op: CmpOp::Eq,
            rhs: Rhs::Const(Value::from(1)),
        });
        assert!(matches!(
            CompiledNegation::compile(&n, &schema(), &|v| v.to_string()),
            Err(PatternError::UnknownAttribute { .. })
        ));

        let mut n = Negation::new(Arc::from("x"), 0);
        n.push_condition(NegCondition {
            attr: Arc::from("L"),
            op: CmpOp::Eq,
            rhs: Rhs::Const(Value::from(1)), // INT vs STR
        });
        assert!(matches!(
            CompiledNegation::compile(&n, &schema(), &|v| v.to_string()),
            Err(PatternError::IncomparableTypes { .. })
        ));
    }

    #[test]
    fn relocated_changes_only_position() {
        let n = Negation::new(Arc::from("x"), 0);
        let moved = n.relocated(3);
        assert_eq!(moved.after_set(), 3);
        assert_eq!(moved.name(), "x");
    }
}
