//! Schema-resolved patterns ready for automaton construction.

use ses_event::{AttrId, CmpOp, Event, Schema, Value};

use crate::analysis::PatternAnalysis;
use crate::closure::UnionFind;
use crate::condition::Rhs;
use crate::{Pattern, PatternError, VarId};

/// Right-hand side of a compiled condition.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledRhs {
    /// Constant `C`.
    Const(Value),
    /// Attribute `v'.A'` with the attribute resolved to a dense id.
    Attr {
        /// The other variable `v'`.
        var: VarId,
        /// The resolved attribute `A'`.
        attr: AttrId,
    },
}

/// A condition with attribute names resolved to [`AttrId`]s and types
/// checked against the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCondition {
    /// Left-hand variable `v`.
    pub lhs_var: VarId,
    /// Left-hand attribute `A`.
    pub lhs_attr: AttrId,
    /// Comparison operator `φ`.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: CompiledRhs,
    /// Index of the source [`crate::Condition`] in the pattern.
    pub source: usize,
}

impl CompiledCondition {
    /// `true` iff this is a constant condition `v.A φ C`.
    pub fn is_constant(&self) -> bool {
        matches!(self.rhs, CompiledRhs::Const(_))
    }

    /// The right-hand variable of a variable condition.
    pub fn other_var(&self) -> Option<VarId> {
        match &self.rhs {
            CompiledRhs::Const(_) => None,
            CompiledRhs::Attr { var, .. } => Some(*var),
        }
    }

    /// Evaluates a **constant** condition against an event bound to the
    /// left-hand variable. Panics when called on a variable condition.
    #[inline]
    pub fn eval_const(&self, event: &Event) -> bool {
        match &self.rhs {
            CompiledRhs::Const(c) => event.value(self.lhs_attr).compare(self.op, c),
            CompiledRhs::Attr { .. } => panic!("eval_const on variable condition"),
        }
    }

    /// Evaluates a **variable** condition given the event bound to the
    /// left-hand variable and the event bound to the right-hand variable
    /// (they may be the same event for self-conditions `v.A φ v.A'`).
    /// Panics when called on a constant condition.
    #[inline]
    pub fn eval_vars(&self, lhs_event: &Event, rhs_event: &Event) -> bool {
        match &self.rhs {
            CompiledRhs::Attr { attr, .. } => lhs_event
                .value(self.lhs_attr)
                .compare(self.op, rhs_event.value(*attr)),
            CompiledRhs::Const(_) => panic!("eval_vars on constant condition"),
        }
    }
}

/// A pattern compiled against a concrete schema.
///
/// Owns the source [`Pattern`], the resolved conditions, per-variable
/// indexes over the constant conditions (used by the §4.5 event filter),
/// and the static [`PatternAnalysis`].
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    pattern: Pattern,
    schema: Schema,
    conditions: Vec<CompiledCondition>,
    negations: Vec<crate::CompiledNegation>,
    const_conds_by_var: Vec<Vec<usize>>,
    analysis: PatternAnalysis,
    unsatisfiable: Option<String>,
    partition_keys: Vec<AttrId>,
}

impl CompiledPattern {
    pub(crate) fn compile(
        pattern: Pattern,
        schema: &Schema,
    ) -> Result<CompiledPattern, PatternError> {
        // Defense in depth: `PatternBuilder::build` enforces the same
        // limit, but patterns constructed by other front ends must not
        // slip past it — the automaton's state bitsets and the engine's
        // per-event type-precheck mask are `u64`s, so `VarId::bit()`
        // silently overflows beyond 64 variables.
        if pattern.num_vars() > 64 {
            return Err(PatternError::TooManyVariables(pattern.num_vars()));
        }
        let mut conditions = Vec::with_capacity(pattern.conditions().len());
        let mut const_conds_by_var = vec![Vec::new(); pattern.num_vars()];

        for (source, cond) in pattern.conditions().iter().enumerate() {
            let pretty = || {
                crate::condition::display_condition(cond, &|v| pattern.var(v).name().to_string())
            };
            let lhs_attr =
                schema
                    .attr_id(&cond.lhs.attr)
                    .ok_or_else(|| PatternError::UnknownAttribute {
                        attr: cond.lhs.attr.to_string(),
                    })?;
            let lhs_ty = schema.attr_type(lhs_attr);
            let rhs = match &cond.rhs {
                Rhs::Const(v) => {
                    if let Value::Float(f) = v {
                        if f.is_nan() {
                            return Err(PatternError::NanConstant {
                                condition: pretty(),
                            });
                        }
                    }
                    if !lhs_ty.comparable_with(v.attr_type()) {
                        return Err(PatternError::IncomparableTypes {
                            condition: pretty(),
                            lhs: lhs_ty,
                            rhs: v.attr_type(),
                        });
                    }
                    CompiledRhs::Const(v.clone())
                }
                Rhs::Attr(r) => {
                    let attr =
                        schema
                            .attr_id(&r.attr)
                            .ok_or_else(|| PatternError::UnknownAttribute {
                                attr: r.attr.to_string(),
                            })?;
                    let rhs_ty = schema.attr_type(attr);
                    if !lhs_ty.comparable_with(rhs_ty) {
                        return Err(PatternError::IncomparableTypes {
                            condition: pretty(),
                            lhs: lhs_ty,
                            rhs: rhs_ty,
                        });
                    }
                    CompiledRhs::Attr { var: r.var, attr }
                }
            };
            if matches!(rhs, CompiledRhs::Const(_)) {
                const_conds_by_var[cond.lhs.var.index()].push(conditions.len());
            }
            conditions.push(CompiledCondition {
                lhs_var: cond.lhs.var,
                lhs_attr,
                op: cond.op,
                rhs,
                source,
            });
        }

        let pretty_var = |v: VarId| pattern.var(v).name().to_string();
        let mut negations = Vec::with_capacity(pattern.negations().len());
        for neg in pattern.negations() {
            negations.push(crate::CompiledNegation::compile(neg, schema, &pretty_var)?);
        }

        let analysis = PatternAnalysis::analyze(&pattern, &conditions);
        let unsatisfiable = crate::analyzer::provably_unsatisfiable(&pattern);
        let partition_keys = infer_partition_keys(&pattern, &conditions, schema);
        Ok(CompiledPattern {
            pattern,
            schema: schema.clone(),
            conditions,
            negations,
            const_conds_by_var,
            analysis,
            unsatisfiable,
            partition_keys,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The schema the pattern was compiled against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All compiled conditions, in source order.
    pub fn conditions(&self) -> &[CompiledCondition] {
        &self.conditions
    }

    /// The compiled condition at `idx`.
    pub fn condition(&self, idx: usize) -> &CompiledCondition {
        &self.conditions[idx]
    }

    /// The compiled negations (empty unless the pattern uses the
    /// negation extension).
    pub fn negations(&self) -> &[crate::CompiledNegation] {
        &self.negations
    }

    /// Indices of the constant conditions whose left-hand variable is
    /// `var`.
    pub fn const_conditions_of(&self, var: VarId) -> &[usize] {
        &self.const_conds_by_var[var.index()]
    }

    /// `true` iff `event` satisfies **all** constant conditions of `var`
    /// (a necessary criterion for the event to ever bind to `var`).
    pub fn satisfies_var_constants(&self, var: VarId, event: &Event) -> bool {
        self.const_conds_by_var[var.index()]
            .iter()
            .all(|&i| self.conditions[i].eval_const(event))
    }

    /// `true` iff `event` satisfies **at least one** constant condition of
    /// the whole pattern — the paper's §4.5 filter criterion.
    pub fn satisfies_any_constant(&self, event: &Event) -> bool {
        self.conditions
            .iter()
            .filter(|c| c.is_constant())
            .any(|c| c.eval_const(event))
    }

    /// `true` iff every variable has at least one constant condition. When
    /// false, some variable can match arbitrary events and constant-based
    /// event filtering would be unsound.
    pub fn every_var_constrained(&self) -> bool {
        self.const_conds_by_var.iter().all(|v| !v.is_empty())
    }

    /// The static analysis (mutual exclusion, complexity classes).
    pub fn analysis(&self) -> &PatternAnalysis {
        &self.analysis
    }

    /// `false` iff constraint propagation proved `Θ` unsatisfiable at
    /// compile time — the matcher can then return the empty answer without
    /// scanning a single event. See [`crate::provably_unsatisfiable`].
    pub fn is_satisfiable(&self) -> bool {
        self.unsatisfiable.is_none()
    }

    /// The unsatisfiability proof, when [`Self::is_satisfiable`] is false.
    pub fn unsatisfiable_reason(&self) -> Option<&str> {
        self.unsatisfiable.as_deref()
    }

    /// The attributes proven to be **partition keys**: every match binds
    /// only events sharing one value of the attribute, so the relation
    /// can be split per distinct value and matched independently without
    /// changing the answer set (cross-partition matches are impossible).
    ///
    /// Attribute `A` is proven iff the equality-condition graph over
    /// `(variable, attribute)` nodes connects `(v, A)` for *every*
    /// variable `v` of the pattern — each edge `v.A = v'.A'` equates the
    /// values across **all** bindings of both variables (group variables
    /// included, since each binding is checked against each), so
    /// connectivity transports one key value to every bound event. A
    /// single-singleton pattern trivially qualifies for every attribute
    /// (each match is one event). Patterns with negations never qualify:
    /// a forbidden event may carry a different key value and would be
    /// invisible to the match's partition.
    ///
    /// Returned in schema order; empty when nothing is provable.
    pub fn partition_keys(&self) -> &[AttrId] {
        &self.partition_keys
    }

    /// `true` iff [`Self::partition_keys`] contains `attr`.
    pub fn is_partition_key(&self, attr: AttrId) -> bool {
        self.partition_keys.contains(&attr)
    }
}

/// See [`CompiledPattern::partition_keys`] for the proof obligation this
/// discharges.
fn infer_partition_keys(
    pattern: &Pattern,
    conditions: &[CompiledCondition],
    schema: &Schema,
) -> Vec<AttrId> {
    if pattern.has_negations() || pattern.num_vars() == 0 {
        return Vec::new();
    }
    let all_attrs = || (0..schema.len() as u16).map(AttrId).collect();
    if pattern.num_vars() == 1 {
        // One singleton variable: a match is a single event, which
        // trivially lives in one partition of any attribute. One *group*
        // variable is the opposite extreme: its bindings are mutually
        // unconstrained (conditions relate distinct variables, or an
        // event to itself), so nothing is provable.
        return if pattern.variables()[0].is_group() {
            Vec::new()
        } else {
            all_attrs()
        };
    }

    // Intern the (variable, attribute) nodes of the `=` variable
    // conditions and union the endpoints — the compiled mirror of
    // `equality_closure`, over dense `AttrId`s. Cross-attribute chains
    // (`a.X = b.Y`, `b.Y = c.X`) connect through the shared node.
    let mut nodes: Vec<(VarId, AttrId)> = Vec::new();
    let intern = |nodes: &mut Vec<(VarId, AttrId)>, n: (VarId, AttrId)| {
        nodes.iter().position(|&m| m == n).unwrap_or_else(|| {
            nodes.push(n);
            nodes.len() - 1
        })
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for c in conditions {
        if c.op != CmpOp::Eq {
            continue;
        }
        if let CompiledRhs::Attr { var, attr } = c.rhs {
            let a = intern(&mut nodes, (c.lhs_var, c.lhs_attr));
            let b = intern(&mut nodes, (var, attr));
            edges.push((a, b));
        }
    }
    let mut uf = UnionFind::new(nodes.len());
    for (a, b) in edges {
        uf.union(a, b);
    }

    let vars: Vec<VarId> = (0..pattern.num_vars() as u16).map(VarId).collect();
    (0..schema.len() as u16)
        .map(AttrId)
        .filter(|&attr| {
            let mut root = None;
            vars.iter().all(|&v| {
                match nodes.iter().position(|&n| n == (v, attr)) {
                    None => false, // v's value of `attr` is unconstrained
                    Some(n) => {
                        let r = uf.find(n);
                        *root.get_or_insert(r) == r
                    }
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, Duration, Timestamp};

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .build()
            .unwrap()
    }

    fn event(id: i64, l: &str, v: f64) -> Event {
        Event::new(
            Timestamp::new(0),
            vec![Value::from(id), Value::from(l), Value::from(v)],
        )
    }

    fn q1() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("c").plus("p").var("d"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_const("d", "L", CmpOp::Eq, "D")
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
            .cond_vars("c", "ID", CmpOp::Eq, "d", "ID")
            .cond_vars("d", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::hours(264))
            .build()
            .unwrap()
    }

    #[test]
    fn compiles_q1() {
        let cp = q1().compile(&schema()).unwrap();
        assert_eq!(cp.conditions().len(), 7);
        assert_eq!(cp.const_conditions_of(VarId(0)).len(), 1);
        assert!(cp.every_var_constrained());
        assert!(cp.conditions()[4].other_var() == Some(VarId(1)));
    }

    #[test]
    fn rejects_unknown_attribute() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "NOPE", CmpOp::Eq, 1)
            .build()
            .unwrap();
        assert!(matches!(
            p.compile(&schema()),
            Err(PatternError::UnknownAttribute { attr }) if attr == "NOPE"
        ));
    }

    #[test]
    fn rejects_incomparable_types() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, 5)
            .build()
            .unwrap();
        let err = p.compile(&schema()).unwrap_err();
        assert!(
            matches!(err, PatternError::IncomparableTypes { .. }),
            "{err}"
        );

        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_vars("a", "L", CmpOp::Lt, "b", "V")
            .build()
            .unwrap();
        assert!(matches!(
            p.compile(&schema()),
            Err(PatternError::IncomparableTypes { .. })
        ));
    }

    #[test]
    fn rejects_nan_constant() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "V", CmpOp::Gt, f64::NAN)
            .build()
            .unwrap();
        assert!(matches!(
            p.compile(&schema()),
            Err(PatternError::NanConstant { .. })
        ));
    }

    #[test]
    fn numeric_cross_type_conditions_compile() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "V", CmpOp::Gt, 100) // Int const vs Float attr
            .build()
            .unwrap();
        let cp = p.compile(&schema()).unwrap();
        assert!(cp.conditions()[0].eval_const(&event(1, "C", 150.0)));
        assert!(!cp.conditions()[0].eval_const(&event(1, "C", 50.0)));
    }

    #[test]
    fn filter_predicates() {
        let cp = q1().compile(&schema()).unwrap();
        let c_event = event(1, "C", 10.0);
        let x_event = event(1, "X", 10.0);
        assert!(cp.satisfies_any_constant(&c_event));
        assert!(!cp.satisfies_any_constant(&x_event));
        assert!(cp.satisfies_var_constants(VarId(0), &c_event));
        assert!(!cp.satisfies_var_constants(VarId(2), &c_event)); // d wants 'D'
    }

    #[test]
    fn eval_vars_checks_both_events() {
        let cp = q1().compile(&schema()).unwrap();
        // condition 4: c.ID = p.ID
        let cond = &cp.conditions()[4];
        assert!(cond.eval_vars(&event(1, "C", 0.0), &event(1, "P", 0.0)));
        assert!(!cond.eval_vars(&event(1, "C", 0.0), &event(2, "P", 0.0)));
    }

    #[test]
    fn unsatisfiable_theta_flagged_at_compile_time() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "V", CmpOp::Gt, 10.0)
            .cond_const("a", "V", CmpOp::Lt, 5.0)
            .build()
            .unwrap();
        let cp = p.compile(&schema()).unwrap();
        assert!(!cp.is_satisfiable());
        assert!(cp.unsatisfiable_reason().unwrap().contains("a.V"));
        let cp = q1().compile(&schema()).unwrap();
        assert!(cp.is_satisfiable());
        assert!(cp.unsatisfiable_reason().is_none());
    }

    #[test]
    fn q1_partition_key_is_id() {
        let cp = q1().compile(&schema()).unwrap();
        let id = schema().attr_id("ID").unwrap();
        assert_eq!(cp.partition_keys(), &[id]);
        assert!(cp.is_partition_key(id));
        assert!(!cp.is_partition_key(schema().attr_id("L").unwrap()));
    }

    #[test]
    fn under_correlated_pattern_has_no_keys() {
        // b is not reached by the ID-equality graph.
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b").var("c"))
            .cond_vars("a", "ID", CmpOp::Eq, "c", "ID")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        assert!(p.compile(&schema()).unwrap().partition_keys().is_empty());
    }

    #[test]
    fn non_equality_links_prove_nothing() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_vars("a", "ID", CmpOp::Le, "b", "ID")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        assert!(p.compile(&schema()).unwrap().partition_keys().is_empty());
    }

    #[test]
    fn single_singleton_pattern_keys_every_attribute() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let cp = p.compile(&schema()).unwrap();
        assert_eq!(cp.partition_keys().len(), schema().len());
    }

    #[test]
    fn single_group_pattern_has_no_keys() {
        // p+'s bindings are mutually unconstrained: two events with
        // different IDs can form one match.
        let p = Pattern::builder()
            .set(|s| s.plus("p"))
            .cond_const("p", "L", CmpOp::Eq, "P")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        assert!(p.compile(&schema()).unwrap().partition_keys().is_empty());
    }

    #[test]
    fn cross_attribute_chain_connects_through_shared_node() {
        // a.ID = b.V and b.V = b.ID: both variables' ID nodes join one
        // class (through (b, V)), so ID is proven; V is not (a has no V
        // node).
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_vars("a", "ID", CmpOp::Eq, "b", "V")
            .cond_vars("b", "V", CmpOp::Eq, "b", "ID")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        let cp = p.compile(&schema()).unwrap();
        assert_eq!(cp.partition_keys(), &[schema().attr_id("ID").unwrap()]);
    }

    #[test]
    fn negations_disable_partition_keys() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("x")
            .set(|s| s.var("b"))
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .neg_cond_const("x", "L", CmpOp::Eq, "X")
            .within(Duration::ticks(5))
            .build()
            .unwrap();
        assert!(p.compile(&schema()).unwrap().partition_keys().is_empty());
    }

    #[test]
    fn compile_rejects_too_many_variables() {
        // `PatternBuilder::build` already enforces the limit; this
        // constructs the oversized pattern behind the builder's back to
        // pin the compile-time backstop (65 variables overflow the u64
        // state bitsets and the engine's type-precheck mask).
        use crate::variable::{Quantifier, Variable};
        use std::sync::Arc;
        let vars: Vec<Variable> = (0..65)
            .map(|i| Variable::new(Arc::from(format!("v{i}")), Quantifier::Singleton, 0))
            .collect();
        let sets = vec![(0..65).map(|i| VarId(i as u16)).collect()];
        let p = Pattern::from_parts(vars, sets, Vec::new(), Vec::new(), Duration::ticks(5));
        assert!(matches!(
            p.compile(&schema()),
            Err(PatternError::TooManyVariables(65))
        ));
    }

    #[test]
    fn unconstrained_variable_detected() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .build()
            .unwrap();
        let cp = p.compile(&schema()).unwrap();
        assert!(!cp.every_var_constrained());
    }
}
