//! Cross-pattern static analysis: equivalence, subsumption, and shared
//! sequencing-prefix detection over a *set* of patterns, plus the
//! [`SharingPlan`] that drives structural sharing in a multi-pattern
//! bank.
//!
//! Everything here is **static** (computed before a single event is
//! pushed) and **conservative**: a claimed relation is always sound, a
//! missed relation merely costs an optimization or a lint hint.
//!
//! # Canonical form
//!
//! Each pattern is normalized into two layers of per-`(variable,
//! attribute)` admission facts:
//!
//! * a **semantic** layer — the interval [`Domain`] of every constant
//!   condition, explicit *plus* the constants derived by
//!   [`propagate`]. Domains are rendered through
//!   [`Domain::to_constraints`], which is canonical for non-poisoned
//!   domains, so `v.V > 5 ∧ v.V ≥ 5` and `v.V > 5` produce the same
//!   key. Poisoned domains (unorderable bound pairs, e.g. mixed-type
//!   comparisons) fall back to the sorted syntactic rendering.
//! * a **literal** layer — the same rendering restricted to the
//!   explicit constants of `Θ`. This is the *evaluation-identical*
//!   notion: two variables with equal literal keys admit exactly the
//!   same events at run time, which is the bar structural sharing must
//!   clear (derived constants may not be checked by the engine, and
//!   importing them across variables can change greedy
//!   skip-till-next-match behavior even when it cannot change the final
//!   answer's candidate space).
//!
//! Variable conditions are orientation-normalized (`a φ b` and
//! `b φ.flip() a` render identically) and compared as sorted sets —
//! once over the literal `Θ` and once over the §4.4 equality closure
//! ([`equality_closure`]), whose output is candidate-space preserving.
//!
//! # The three relations
//!
//! * **Equivalence** — the sets match position-wise after sorting each
//!   set's variables by semantic key, closed variable conditions match
//!   under that alignment, negations and `τ` match. The equal keys are
//!   themselves the witness isomorphism, so the claim is sound even
//!   though no search is performed; sort ties can only cause missed
//!   equivalences.
//! * **Subsumption** — `A ⊑ B` iff every candidate match of `A`
//!   (a substitution satisfying Definition 1's conditions 1–3),
//!   restricted to the variables of `B` under an injective per-set
//!   embedding `φ : vars(B) → vars(A)`, is a candidate match of `B`.
//!   Certified by finding `φ` (Kuhn's matching over domain-implication
//!   edges per set), checking `B`'s closed variable conditions appear
//!   in `A`'s closure under `φ`, `τ_A ≤ τ_B`, and — when `B` carries
//!   negations — that `φ` is set-bijective (so the guarded gaps
//!   coincide) with every negation of `B` present in `A`.
//! * **Shared prefix** — the first `k` event sets are *identical in
//!   declaration order* (same `VarId` layout, same quantifiers, equal
//!   literal keys) with equal literal variable conditions among the
//!   prefix variables, equal `τ`, and no negations on either side.
//!   This is deliberately the evaluation-identical notion: a bank can
//!   run the shared prefix once and fork instances at the divergence
//!   point without perturbing any member's output.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

use ses_event::{CmpOp, Value};

use crate::condition::Rhs;
use crate::{equality_closure, propagate, Condition, Domain, Negation, Pattern, VarId};

/// Renders a constant with a type tag so `1`, `1.0`, `'1'` and `true`
/// can never collide in a canonical key.
fn value_key(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i{i}"),
        Value::Float(f) => format!("f{f}"),
        Value::Str(s) => format!("s'{s}'"),
        Value::Bool(b) => format!("b{b}"),
    }
}

/// The admission facts of one `(variable, attribute)` pair.
#[derive(Debug, Clone, Default)]
struct AttrFacts {
    domain: Domain,
    /// Sorted syntactic renderings of the contributing constants —
    /// the fallback key when the domain is poisoned.
    raw: BTreeSet<String>,
}

impl AttrFacts {
    fn add(&mut self, op: CmpOp, v: &Value) {
        self.domain.constrain(op, v);
        self.raw.insert(format!("{} {}", op, value_key(v)));
    }

    /// Canonical key: minimal interval constraints for healthy domains,
    /// a `∅` marker for provably empty ones, the raw syntax otherwise.
    fn key(&self) -> String {
        if self.domain.is_poisoned() {
            let raws: Vec<&str> = self.raw.iter().map(String::as_str).collect();
            format!("?[{}]", raws.join(" & "))
        } else if self.domain.is_empty() {
            "∅".to_string()
        } else {
            let parts: Vec<String> = self
                .domain
                .to_constraints()
                .iter()
                .map(|(op, v)| format!("{} {}", op, value_key(v)))
                .collect();
            parts.join(" & ")
        }
    }

    /// `true` iff every value admitted by `self` provably satisfies all
    /// of `weaker`'s constraints (`self` is at least as strict).
    fn implies_all_of(&self, weaker: &AttrFacts) -> bool {
        if self.domain.is_poisoned() || weaker.domain.is_poisoned() {
            return self.key() == weaker.key();
        }
        if weaker.domain.is_empty() {
            return self.domain.is_empty();
        }
        weaker
            .domain
            .to_constraints()
            .iter()
            .all(|(op, v)| self.domain.implies(*op, v))
    }
}

/// Admission facts of one variable: quantifier plus per-attribute facts.
#[derive(Debug, Clone, Default)]
struct VarFacts {
    group: bool,
    attrs: BTreeMap<String, AttrFacts>,
}

impl VarFacts {
    fn key(&self) -> String {
        let mut s = String::from(if self.group { "+{" } else { "1{" });
        for (attr, f) in &self.attrs {
            s.push_str(attr);
            s.push_str(": ");
            s.push_str(&f.key());
            s.push_str("; ");
        }
        s.push('}');
        s
    }

    /// `true` iff mapping `weaker` (a variable of the subsuming
    /// pattern) onto `self` (a variable of the subsumed one) is sound:
    /// quantifiers embed and `self`'s admission set is contained in
    /// `weaker`'s.
    fn embeds_into(&self, weaker: &VarFacts) -> bool {
        // A group binding projected onto a singleton would bind several
        // events to one variable; the reverse (singleton → group) is a
        // legal one-event group binding.
        if self.group && !weaker.group {
            return false;
        }
        weaker
            .attrs
            .iter()
            .all(|(attr, wf)| match self.attrs.get(attr) {
                Some(sf) => sf.implies_all_of(wf),
                None => false,
            })
    }
}

fn render_var_cond(c: &Condition, pos: &dyn Fn(VarId) -> usize) -> Option<String> {
    let Rhs::Attr(r) = &c.rhs else { return None };
    let l = (pos(c.lhs.var), c.lhs.attr.to_string());
    let rr = (pos(r.var), r.attr.to_string());
    let (l, op, rr) = if l <= rr {
        (l, c.op, rr)
    } else {
        (rr, c.op.flip(), l)
    };
    Some(format!("@{}.{} {} @{}.{}", l.0, l.1, op, rr.0, rr.1))
}

fn render_negation(neg: &Negation, pos: &dyn Fn(VarId) -> usize) -> String {
    let mut conds: Vec<String> = neg
        .conditions()
        .iter()
        .map(|c| {
            let rhs = match &c.rhs {
                Rhs::Const(v) => value_key(v),
                Rhs::Attr(r) => format!("@{}.{}", pos(r.var), r.attr),
            };
            format!(".{} {} {}", c.attr, c.op, rhs)
        })
        .collect();
    conds.sort();
    conds.dedup();
    format!("¬gap{}[{}]", neg.after_set(), conds.join(" & "))
}

/// The canonical form of one pattern, precomputed once per
/// [`relate`]/[`SharingPlan`] call.
struct Form<'p> {
    pattern: &'p Pattern,
    /// Semantic facts (explicit + derived constants), by `VarId` index.
    sem: Vec<VarFacts>,
    /// Literal facts (explicit constants only), by `VarId` index.
    lit: Vec<VarFacts>,
    lit_keys: Vec<String>,
    /// Per set: its variables' semantic keys, sorted — the
    /// order-insensitive structural fingerprint.
    canon_set_keys: Vec<String>,
    /// Closure variable conditions rendered at canonical positions.
    canon_cond_keys: BTreeSet<String>,
    /// Negations rendered at canonical positions.
    canon_negs: BTreeSet<String>,
    /// Closure variable conditions rendered at declaration positions.
    closed_cond_keys: BTreeSet<String>,
    /// Non-constant conditions of the literal `Θ`.
    literal_conds: Vec<Condition>,
    /// Negations rendered at declaration positions.
    inorder_negs: BTreeSet<String>,
}

impl<'p> Form<'p> {
    fn build(p: &'p Pattern) -> Form<'p> {
        let n = p.num_vars();
        let mut sem: Vec<VarFacts> = (0..n)
            .map(|i| VarFacts {
                group: p.var(VarId(i as u16)).is_group(),
                attrs: BTreeMap::new(),
            })
            .collect();
        let mut lit = sem.clone();

        let prop = propagate(p);
        for c in p.conditions() {
            if let Rhs::Const(v) = &c.rhs {
                let attr = c.lhs.attr.to_string();
                sem[c.lhs.var.index()]
                    .attrs
                    .entry(attr.clone())
                    .or_default()
                    .add(c.op, v);
                lit[c.lhs.var.index()]
                    .attrs
                    .entry(attr)
                    .or_default()
                    .add(c.op, v);
            }
        }
        for c in &prop.derived {
            if let Rhs::Const(v) = &c.rhs {
                sem[c.lhs.var.index()]
                    .attrs
                    .entry(c.lhs.attr.to_string())
                    .or_default()
                    .add(c.op, v);
            }
        }

        let sem_keys: Vec<String> = sem.iter().map(VarFacts::key).collect();
        let lit_keys: Vec<String> = lit.iter().map(VarFacts::key).collect();

        // Canonical positions: sets in order, each set's variables
        // sorted by semantic key (ties by declaration order).
        let mut canon_pos = vec![0usize; n];
        let mut canon_set_keys = Vec::with_capacity(p.num_sets());
        let mut next = 0usize;
        for i in 0..p.num_sets() {
            let mut order: Vec<VarId> = p.set(i).to_vec();
            order.sort_by(|a, b| {
                sem_keys[a.index()]
                    .cmp(&sem_keys[b.index()])
                    .then_with(|| a.index().cmp(&b.index()))
            });
            let keys: Vec<&str> = order.iter().map(|v| sem_keys[v.index()].as_str()).collect();
            canon_set_keys.push(keys.join(" | "));
            for v in order {
                canon_pos[v.index()] = next;
                next += 1;
            }
        }

        let closed = equality_closure(p);
        let identity = |v: VarId| v.index();
        let canonical = |v: VarId| canon_pos[v.index()];
        let mut canon_cond_keys = BTreeSet::new();
        let mut closed_cond_keys = BTreeSet::new();
        for c in closed.conditions() {
            if let Some(k) = render_var_cond(c, &canonical) {
                canon_cond_keys.insert(k);
            }
            if let Some(k) = render_var_cond(c, &identity) {
                closed_cond_keys.insert(k);
            }
        }
        let literal_conds: Vec<Condition> = p
            .conditions()
            .iter()
            .filter(|c| !c.is_constant())
            .cloned()
            .collect();

        let mut canon_negs = BTreeSet::new();
        let mut inorder_negs = BTreeSet::new();
        for neg in p.negations() {
            canon_negs.insert(render_negation(neg, &canonical));
            inorder_negs.insert(render_negation(neg, &identity));
        }

        Form {
            pattern: p,
            sem,
            lit,
            lit_keys,
            canon_set_keys,
            canon_cond_keys,
            canon_negs,
            closed_cond_keys,
            literal_conds,
            inorder_negs,
        }
    }

    /// Declaration-order evaluation fingerprint: two patterns with
    /// equal in-order keys behave identically at run time (same
    /// `VarId` layout, same literal admission per position, same
    /// literal variable conditions, same negations and `τ`).
    fn inorder_key(&self) -> String {
        let p = self.pattern;
        let mut s = String::new();
        for i in 0..p.num_sets() {
            s.push('<');
            for v in p.set(i) {
                s.push_str(&self.lit_keys[v.index()]);
                s.push(',');
            }
            s.push('>');
        }
        let identity = |v: VarId| v.index();
        let mut conds: Vec<String> = self
            .literal_conds
            .iter()
            .filter_map(|c| render_var_cond(c, &identity))
            .collect();
        conds.sort();
        conds.dedup();
        s.push_str(&conds.join(" & "));
        s.push('|');
        for neg in &self.inorder_negs {
            s.push_str(neg);
            s.push(';');
        }
        s.push_str(&format!("|τ={}", p.within().as_ticks()));
        s
    }

    /// Literal variable conditions confined to the first `prefix_vars`
    /// declaration positions, rendered and sorted.
    fn prefix_cond_keys(&self, prefix_vars: &BTreeSet<VarId>) -> BTreeSet<String> {
        let identity = |v: VarId| v.index();
        self.literal_conds
            .iter()
            .filter(|c| {
                let (a, b) = c.variables();
                prefix_vars.contains(&a) && b.map(|v| prefix_vars.contains(&v)).unwrap_or(true)
            })
            .filter_map(|c| render_var_cond(c, &identity))
            .collect()
    }
}

fn equivalent(a: &Form<'_>, b: &Form<'_>) -> bool {
    a.pattern.within() == b.pattern.within()
        && a.canon_set_keys == b.canon_set_keys
        && a.canon_cond_keys == b.canon_cond_keys
        && a.canon_negs == b.canon_negs
}

/// Kuhn's augmenting-path matching: tries to match every `right` node
/// (a variable of the subsuming pattern) to a distinct `left` node
/// (a variable of the subsumed pattern) along `compat` edges.
fn perfect_matching(compat: &[Vec<bool>], lefts: usize) -> Option<Vec<usize>> {
    let rights = compat.len();
    if rights > lefts {
        return None;
    }
    // owner[l] = matched right node, if any.
    let mut owner: Vec<Option<usize>> = vec![None; lefts];
    fn augment(
        r: usize,
        compat: &[Vec<bool>],
        owner: &mut [Option<usize>],
        seen: &mut [bool],
    ) -> bool {
        for l in 0..owner.len() {
            if compat[r][l] && !seen[l] {
                seen[l] = true;
                if owner[l].is_none() || augment(owner[l].unwrap(), compat, owner, seen) {
                    owner[l] = Some(r);
                    return true;
                }
            }
        }
        false
    }
    for r in 0..rights {
        let mut seen = vec![false; lefts];
        if !augment(r, compat, &mut owner, &mut seen) {
            return None;
        }
    }
    let mut assign = vec![usize::MAX; rights];
    for (l, o) in owner.iter().enumerate() {
        if let Some(r) = o {
            assign[*r] = l;
        }
    }
    Some(assign)
}

/// `true` iff every candidate match of `a`, restricted through an
/// embedding of `b`'s variables, is a candidate match of `b`.
fn subsumed_by(a: &Form<'_>, b: &Form<'_>) -> bool {
    let pa = a.pattern;
    let pb = b.pattern;
    if pa.num_sets() != pb.num_sets() || pa.within() > pb.within() {
        return false;
    }
    if pb.has_negations() {
        // The guarded gap of a projected match only coincides with the
        // full match's gap when every adjacent set maps bijectively.
        if (0..pa.num_sets()).any(|i| pa.set(i).len() != pb.set(i).len()) {
            return false;
        }
    }

    // Build the per-set embedding φ : vars(b) → vars(a).
    let mut phi = vec![VarId(0); pb.num_vars()];
    for i in 0..pb.num_sets() {
        let avars = pa.set(i);
        let bvars = pb.set(i);
        let compat: Vec<Vec<bool>> = bvars
            .iter()
            .map(|bv| {
                avars
                    .iter()
                    .map(|av| a.sem[av.index()].embeds_into(&b.sem[bv.index()]))
                    .collect()
            })
            .collect();
        let Some(assign) = perfect_matching(&compat, avars.len()) else {
            return false;
        };
        for (bi, ai) in assign.iter().enumerate() {
            phi[bvars[bi].index()] = avars[*ai];
        }
    }

    // Every closed variable condition of b, mapped through φ, must be
    // entailed (syntactically, over the closure) by a.
    let mapped = |v: VarId| phi[v.index()].index();
    for c in &b.literal_conds {
        // Checking the closure of b would be redundant: it is entailed
        // by the literal conditions, and a's closure is itself closed.
        if let Some(k) = render_var_cond(c, &mapped) {
            if !a.closed_cond_keys.contains(&k) {
                return false;
            }
        }
    }
    for neg in pb.negations() {
        let k = render_negation(neg, &mapped);
        if !a.inorder_negs.contains(&k) {
            return false;
        }
    }
    true
}

/// The number of leading event sets shared in declaration order with
/// evaluation-identical admission (see the module docs); `0` when no
/// prefix is shared.
fn shared_prefix_sets(a: &Form<'_>, b: &Form<'_>) -> usize {
    let pa = a.pattern;
    let pb = b.pattern;
    if pa.within() != pb.within() || pa.has_negations() || pb.has_negations() {
        return 0;
    }
    let max_k = pa.num_sets().min(pb.num_sets());
    let mut k = 0;
    while k < max_k && set_identical(a, b, k) {
        k += 1;
    }
    // Condition equality is downward-monotone: if the literal prefix
    // conditions agree at k they agree at every k' < k, so walk down
    // until they do.
    while k > 0 {
        let vars: BTreeSet<VarId> = (0..k).flat_map(|i| pa.set(i).iter().copied()).collect();
        if a.prefix_cond_keys(&vars) == b.prefix_cond_keys(&vars) {
            break;
        }
        k -= 1;
    }
    k
}

fn set_identical(a: &Form<'_>, b: &Form<'_>, i: usize) -> bool {
    let sa = a.pattern.set(i);
    let sb = b.pattern.set(i);
    sa == sb
        && sa.iter().all(|v| {
            a.lit_keys[v.index()] == b.lit_keys[v.index()]
                && a.lit[v.index()].group == b.lit[v.index()].group
        })
}

/// The conservative pairwise relation between two patterns, strongest
/// first: equivalence, then subsumption (either direction), then a
/// shared sequencing prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternRelation {
    /// The patterns provably admit the same candidate matches, up to
    /// variable renaming and reordering within event sets.
    Equivalent,
    /// Every candidate match of the first pattern, restricted to the
    /// embedded variables, is a candidate match of the second (the
    /// first is the stricter, redundant one).
    SubsumedBy,
    /// The mirror image: the second pattern is subsumed by the first.
    Subsumes,
    /// The patterns share their first `sets` event sets with
    /// evaluation-identical admission constraints.
    SharedPrefix {
        /// Number of shared leading event sets.
        sets: usize,
    },
    /// No relation could be certified.
    Unrelated,
}

/// Relates two patterns conservatively; see [`PatternRelation`].
pub fn relate(a: &Pattern, b: &Pattern) -> PatternRelation {
    let fa = Form::build(a);
    let fb = Form::build(b);
    if equivalent(&fa, &fb) {
        return PatternRelation::Equivalent;
    }
    if subsumed_by(&fa, &fb) {
        return PatternRelation::SubsumedBy;
    }
    if subsumed_by(&fb, &fa) {
        return PatternRelation::Subsumes;
    }
    match shared_prefix_sets(&fa, &fb) {
        0 => PatternRelation::Unrelated,
        sets => PatternRelation::SharedPrefix { sets },
    }
}

/// How one registered pattern participates in a [`SharingPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShareRole {
    /// Runs its own automaton.
    Independent,
    /// Runs its own automaton and additionally answers for the listed
    /// duplicate member indices.
    DedupLeader {
        /// Indices of the patterns deduplicated into this automaton.
        members: Vec<usize>,
    },
    /// Evaluation-identical to `leader`; runs no automaton of its own
    /// and re-emits the leader's matches.
    DedupMember {
        /// Index of the pattern whose automaton answers for this one.
        leader: usize,
    },
}

/// A group of patterns that evaluate a common sequencing prefix once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixGroup {
    /// Participating pattern indices, ascending. Dedup members never
    /// appear here (their leader does).
    pub members: Vec<usize>,
    /// Number of shared leading event sets.
    pub sets: usize,
    /// Number of shared leading variables (`VarId`s `0..vars` in every
    /// member).
    pub vars: usize,
    /// The member whose pattern seeds the shared prefix automaton
    /// (guaranteed to have more than `sets` event sets).
    pub leader: usize,
}

/// Per-pattern constraints fed into [`SharingPlan::compute`] by the
/// caller (a bank knows things this crate cannot: execution options
/// and compile-time satisfiability).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareConstraint {
    /// Opaque execution-options compatibility class: only patterns
    /// with equal keys may share anything.
    pub compat: u64,
    /// Whether this pattern may join a prefix group. Callers must
    /// clear this for patterns their engine short-circuits (e.g.
    /// compile-time unsatisfiable ones).
    pub allow_prefix: bool,
}

impl Default for ShareConstraint {
    fn default() -> Self {
        ShareConstraint {
            compat: 0,
            allow_prefix: true,
        }
    }
}

/// The structural-sharing plan for a set of patterns: who runs, who
/// re-emits, and which groups evaluate a shared prefix once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharingPlan {
    /// Per-pattern role, indexed like the input slice.
    pub roles: Vec<ShareRole>,
    /// Shared-prefix groups over non-dedup-member patterns.
    pub prefix_groups: Vec<PrefixGroup>,
}

impl SharingPlan {
    /// The plan that shares nothing among `n` patterns.
    pub fn trivial(n: usize) -> SharingPlan {
        SharingPlan {
            roles: vec![ShareRole::Independent; n],
            prefix_groups: Vec::new(),
        }
    }

    /// `true` iff the plan shares nothing.
    pub fn is_trivial(&self) -> bool {
        self.prefix_groups.is_empty()
            && self
                .roles
                .iter()
                .all(|r| matches!(r, ShareRole::Independent))
    }

    /// The prefix group containing pattern `idx`, if any.
    pub fn prefix_group_of(&self, idx: usize) -> Option<usize> {
        self.prefix_groups
            .iter()
            .position(|g| g.members.contains(&idx))
    }

    /// One-line human summary (for `--stats` style output).
    pub fn describe(&self) -> String {
        let dedup = self
            .roles
            .iter()
            .filter(|r| matches!(r, ShareRole::DedupMember { .. }))
            .count();
        let groups: Vec<String> = self
            .prefix_groups
            .iter()
            .map(|g| format!("{}×k={}", g.members.len(), g.sets))
            .collect();
        format!(
            "{} deduplicated, {} prefix group(s) [{}]",
            dedup,
            self.prefix_groups.len(),
            groups.join(", ")
        )
    }

    /// Computes the sharing plan for `patterns`.
    ///
    /// `constraints` must be empty (all defaults) or match `patterns`
    /// in length. Duplicate detection uses the declaration-order
    /// evaluation fingerprint, so a dedup member behaves push-for-push
    /// identically to its leader; prefix groups require identical
    /// leading sets in declaration order (see the module docs). Groups
    /// are never split: a bucket shares the deepest prefix *all* its
    /// members agree on.
    pub fn compute(patterns: &[&Pattern], constraints: &[ShareConstraint]) -> SharingPlan {
        let n = patterns.len();
        let defaults;
        let constraints = if constraints.is_empty() {
            defaults = vec![ShareConstraint::default(); n];
            &defaults
        } else {
            assert_eq!(constraints.len(), n, "one constraint per pattern");
            constraints
        };
        let forms: Vec<Form<'_>> = patterns.iter().map(|p| Form::build(p)).collect();

        // 1. Deduplicate evaluation-identical patterns.
        let mut roles = vec![ShareRole::Independent; n];
        let mut first_of: BTreeMap<(u64, String), usize> = BTreeMap::new();
        for i in 0..n {
            let key = (constraints[i].compat, forms[i].inorder_key());
            match first_of.get(&key) {
                Some(&leader) => {
                    roles[i] = ShareRole::DedupMember { leader };
                    match &mut roles[leader] {
                        ShareRole::DedupLeader { members } => members.push(i),
                        r => *r = ShareRole::DedupLeader { members: vec![i] },
                    }
                }
                None => {
                    first_of.insert(key, i);
                }
            }
        }

        // 2. Bucket the remaining automaton-running patterns by their
        //    first-set signature, then deepen each bucket as far as all
        //    members agree.
        let mut buckets: BTreeMap<(u64, String), Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            if matches!(roles[i], ShareRole::DedupMember { .. }) {
                continue;
            }
            if !constraints[i].allow_prefix {
                continue;
            }
            let p = patterns[i];
            if p.has_negations() || p.num_sets() == 0 {
                continue;
            }
            let vars: BTreeSet<VarId> = p.set(0).iter().copied().collect();
            let mut sig = String::new();
            sig.push('<');
            for v in p.set(0) {
                sig.push_str(&format!("{}:", v.index()));
                sig.push_str(&forms[i].lit_keys[v.index()]);
                sig.push(',');
            }
            sig.push('>');
            let conds: Vec<String> = forms[i].prefix_cond_keys(&vars).into_iter().collect();
            sig.push_str(&conds.join(" & "));
            sig.push_str(&format!("|τ={}", p.within().as_ticks()));
            buckets
                .entry((constraints[i].compat, sig))
                .or_default()
                .push(i);
        }

        let mut prefix_groups = Vec::new();
        for members in buckets.into_values() {
            if members.len() < 2 {
                continue;
            }
            // Deepen while every member still agrees.
            let rep = members[0];
            let mut k = 1usize;
            loop {
                let next = k + 1;
                if members.iter().any(|&m| patterns[m].num_sets() < next) {
                    break;
                }
                let grows = members.iter().skip(1).all(|&m| {
                    set_identical(&forms[rep], &forms[m], k) && {
                        let vars: BTreeSet<VarId> = (0..next)
                            .flat_map(|s| patterns[rep].set(s).iter().copied())
                            .collect();
                        forms[rep].prefix_cond_keys(&vars) == forms[m].prefix_cond_keys(&vars)
                    }
                });
                if !grows {
                    break;
                }
                k = next;
            }
            // The pool needs a pattern that continues past the prefix;
            // at most one member can be fully consumed by it (two such
            // members would have been deduplicated above).
            let Some(leader) = members
                .iter()
                .copied()
                .find(|&m| patterns[m].num_sets() > k)
            else {
                continue;
            };
            let vars = (0..k).map(|s| patterns[leader].set(s).len()).sum();
            prefix_groups.push(PrefixGroup {
                members,
                sets: k,
                vars,
                leader,
            });
        }

        SharingPlan {
            roles,
            prefix_groups,
        }
    }
}

/// Deterministic order for [`PatternRelation`] severity (used by lint
/// output): equivalence strongest, unrelated weakest.
impl PartialOrd for PatternRelation {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        fn rank(r: &PatternRelation) -> usize {
            match r {
                PatternRelation::Equivalent => 0,
                PatternRelation::SubsumedBy => 1,
                PatternRelation::Subsumes => 2,
                PatternRelation::SharedPrefix { .. } => 3,
                PatternRelation::Unrelated => 4,
            }
        }
        Some(rank(self).cmp(&rank(other)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::Duration;

    fn q(build: impl FnOnce(crate::PatternBuilder) -> crate::PatternBuilder) -> Pattern {
        build(Pattern::builder()).build().unwrap()
    }

    #[test]
    fn equivalence_survives_renaming_and_redundant_constants() {
        let a = q(|b| {
            b.set(|s| s.var("x").var("y"))
                .cond_const("x", "L", CmpOp::Eq, "C")
                .cond_const("y", "V", CmpOp::Gt, 5)
                .cond_const("y", "V", CmpOp::Ge, 5) // redundant
                .within(Duration::hours(10))
        });
        let b = q(|b| {
            b.set(|s| s.var("p").var("q"))
                .cond_const("q", "L", CmpOp::Eq, "C") // set-internal reorder
                .cond_const("p", "V", CmpOp::Gt, 5)
                .within(Duration::hours(10))
        });
        assert_eq!(relate(&a, &b), PatternRelation::Equivalent);
    }

    #[test]
    fn set_order_and_tau_matter() {
        let a = q(|b| {
            b.set(|s| s.var("x"))
                .set(|s| s.var("y"))
                .cond_const("x", "L", CmpOp::Eq, "A")
                .cond_const("y", "L", CmpOp::Eq, "B")
                .within(Duration::hours(10))
        });
        let swapped = q(|b| {
            b.set(|s| s.var("x"))
                .set(|s| s.var("y"))
                .cond_const("x", "L", CmpOp::Eq, "B")
                .cond_const("y", "L", CmpOp::Eq, "A")
                .within(Duration::hours(10))
        });
        assert_ne!(relate(&a, &swapped), PatternRelation::Equivalent);
        let widened = q(|b| {
            b.set(|s| s.var("x"))
                .set(|s| s.var("y"))
                .cond_const("x", "L", CmpOp::Eq, "A")
                .cond_const("y", "L", CmpOp::Eq, "B")
                .within(Duration::hours(20))
        });
        // Same shape, wider window: subsumed, not equivalent.
        assert_eq!(relate(&a, &widened), PatternRelation::SubsumedBy);
    }

    #[test]
    fn extra_conditions_mean_subsumption() {
        let strict = q(|b| {
            b.set(|s| s.var("a"))
                .set(|s| s.var("b"))
                .cond_const("a", "L", CmpOp::Eq, "C")
                .cond_const("b", "L", CmpOp::Eq, "B")
                .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
                .within(Duration::hours(10))
        });
        let loose = q(|b| {
            b.set(|s| s.var("a"))
                .set(|s| s.var("b"))
                .cond_const("a", "L", CmpOp::Eq, "C")
                .cond_const("b", "L", CmpOp::Eq, "B")
                .within(Duration::hours(10))
        });
        assert_eq!(relate(&strict, &loose), PatternRelation::SubsumedBy);
        assert_eq!(relate(&loose, &strict), PatternRelation::Subsumes);
    }

    #[test]
    fn tighter_domain_means_subsumption() {
        let strict = q(|b| {
            b.set(|s| s.var("a"))
                .cond_const("a", "V", CmpOp::Gt, 10)
                .within(Duration::hours(5))
        });
        let loose = q(|b| {
            b.set(|s| s.var("a"))
                .cond_const("a", "V", CmpOp::Gt, 5)
                .within(Duration::hours(5))
        });
        assert_eq!(relate(&strict, &loose), PatternRelation::SubsumedBy);
    }

    #[test]
    fn extra_variable_in_subsumed_set_embeds() {
        let strict = q(|b| {
            b.set(|s| s.var("a").var("x"))
                .set(|s| s.var("b"))
                .cond_const("a", "L", CmpOp::Eq, "C")
                .cond_const("x", "L", CmpOp::Eq, "P")
                .cond_const("b", "L", CmpOp::Eq, "B")
                .within(Duration::hours(10))
        });
        let loose = q(|b| {
            b.set(|s| s.var("a"))
                .set(|s| s.var("b"))
                .cond_const("a", "L", CmpOp::Eq, "C")
                .cond_const("b", "L", CmpOp::Eq, "B")
                .within(Duration::hours(10))
        });
        assert_eq!(relate(&strict, &loose), PatternRelation::SubsumedBy);
    }

    #[test]
    fn negations_block_subsumption_unless_mirrored() {
        let with_neg = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("x")
            .neg_cond_const("x", "L", CmpOp::Eq, "X")
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "C")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::hours(10))
            .build()
            .unwrap();
        let strict = q(|b| {
            b.set(|s| s.var("a"))
                .set(|s| s.var("b"))
                .cond_const("a", "L", CmpOp::Eq, "C")
                .cond_const("b", "L", CmpOp::Eq, "B")
                .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
                .within(Duration::hours(10))
        });
        // strict has no negation, so its matches may contain gap events
        // with_neg forbids: no subsumption either way.
        assert_eq!(relate(&strict, &with_neg), PatternRelation::Unrelated);

        let strict_neg = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("y")
            .neg_cond_const("y", "L", CmpOp::Eq, "X")
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "C")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .within(Duration::hours(10))
            .build()
            .unwrap();
        assert_eq!(relate(&strict_neg, &with_neg), PatternRelation::SubsumedBy);
    }

    #[test]
    fn shared_prefix_detected_and_maximal() {
        let mk = |suffix_label: &str| {
            q(|b| {
                b.set(|s| s.var("a"))
                    .set(|s| s.plus("p"))
                    .set(|s| s.var("z"))
                    .cond_const("a", "L", CmpOp::Eq, "A")
                    .cond_const("p", "L", CmpOp::Eq, "P")
                    .cond_vars("a", "ID", CmpOp::Eq, "p", "ID")
                    .cond_const("z", "L", CmpOp::Eq, suffix_label)
                    .within(Duration::hours(10))
            })
        };
        let x = mk("X");
        let y = mk("Y");
        assert_eq!(relate(&x, &y), PatternRelation::SharedPrefix { sets: 2 });

        let plan = SharingPlan::compute(&[&x, &y], &[]);
        assert_eq!(plan.prefix_groups.len(), 1);
        let g = &plan.prefix_groups[0];
        assert_eq!(g.members, vec![0, 1]);
        assert_eq!(g.sets, 2);
        assert_eq!(g.vars, 2);
    }

    #[test]
    fn prefix_requires_identical_admission_and_tau() {
        let a = q(|b| {
            b.set(|s| s.var("a"))
                .set(|s| s.var("z"))
                .cond_const("a", "V", CmpOp::Gt, 5)
                .cond_const("z", "L", CmpOp::Eq, "X")
                .within(Duration::hours(10))
        });
        let tighter = q(|b| {
            b.set(|s| s.var("a"))
                .set(|s| s.var("z"))
                .cond_const("a", "V", CmpOp::Gt, 6)
                .cond_const("z", "L", CmpOp::Eq, "Y")
                .within(Duration::hours(10))
        });
        assert_eq!(relate(&a, &tighter), PatternRelation::Unrelated);
        let other_tau = q(|b| {
            b.set(|s| s.var("a"))
                .set(|s| s.var("z"))
                .cond_const("a", "V", CmpOp::Gt, 5)
                .cond_const("z", "L", CmpOp::Eq, "Y")
                .within(Duration::hours(11))
        });
        assert_eq!(relate(&a, &other_tau), PatternRelation::Unrelated);
    }

    #[test]
    fn plan_deduplicates_renamed_twins_and_fans_out() {
        let mk = |n1: &str, n2: &str| {
            q(|b| {
                b.set(|s| s.var(n1))
                    .set(|s| s.var(n2))
                    .cond_const(n1, "L", CmpOp::Eq, "C")
                    .cond_const(n2, "L", CmpOp::Eq, "B")
                    .within(Duration::hours(10))
            })
        };
        let p1 = mk("a", "b");
        let p2 = mk("x", "y");
        let plan = SharingPlan::compute(&[&p1, &p2], &[]);
        assert_eq!(plan.roles[0], ShareRole::DedupLeader { members: vec![1] });
        assert_eq!(plan.roles[1], ShareRole::DedupMember { leader: 0 });
        assert!(plan.prefix_groups.is_empty());
        assert!(!plan.is_trivial());
    }

    #[test]
    fn constraints_gate_sharing() {
        let mk = || {
            q(|b| {
                b.set(|s| s.var("a"))
                    .set(|s| s.var("z"))
                    .cond_const("a", "L", CmpOp::Eq, "A")
                    .cond_const("z", "L", CmpOp::Eq, "Z")
                    .within(Duration::hours(10))
            })
        };
        let p1 = mk();
        let p2 = mk();
        // Different options classes: nothing shared.
        let plan = SharingPlan::compute(
            &[&p1, &p2],
            &[
                ShareConstraint {
                    compat: 1,
                    allow_prefix: true,
                },
                ShareConstraint {
                    compat: 2,
                    allow_prefix: true,
                },
            ],
        );
        assert!(plan.is_trivial());
    }

    #[test]
    fn negations_and_prefix_opt_out_block_prefix_groups() {
        let mk_suffix = |l: &str| {
            Pattern::builder()
                .set(|s| s.var("a"))
                .set(|s| s.var("z"))
                .cond_const("a", "L", CmpOp::Eq, "A")
                .cond_const("z", "L", CmpOp::Eq, l)
                .within(Duration::hours(10))
        };
        let p1 = mk_suffix("X").build().unwrap();
        let p2 = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("n")
            .neg_cond_const("n", "L", CmpOp::Eq, "BAD")
            .set(|s| s.var("z"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("z", "L", CmpOp::Eq, "Y")
            .within(Duration::hours(10))
            .build()
            .unwrap();
        let plan = SharingPlan::compute(&[&p1, &p2], &[]);
        assert!(plan.prefix_groups.is_empty());

        let p3 = mk_suffix("Y").build().unwrap();
        let plan = SharingPlan::compute(
            &[&p1, &p3],
            &[
                ShareConstraint {
                    compat: 0,
                    allow_prefix: true,
                },
                ShareConstraint {
                    compat: 0,
                    allow_prefix: false,
                },
            ],
        );
        assert!(plan.prefix_groups.is_empty());
    }

    #[test]
    fn group_quantifiers_participate_in_prefixes() {
        let mk = |l: &str| {
            q(|b| {
                b.set(|s| s.plus("g"))
                    .set(|s| s.var("z"))
                    .cond_const("g", "L", CmpOp::Eq, "G")
                    .cond_const("z", "L", CmpOp::Eq, l)
                    .within(Duration::hours(10))
            })
        };
        let a = mk("X");
        let b = mk("Y");
        assert_eq!(relate(&a, &b), PatternRelation::SharedPrefix { sets: 1 });
        // Quantifier mismatch in the first set: no sharing.
        let s = q(|bld| {
            bld.set(|s| s.var("g"))
                .set(|s| s.var("z"))
                .cond_const("g", "L", CmpOp::Eq, "G")
                .cond_const("z", "L", CmpOp::Eq, "Y")
                .within(Duration::hours(10))
        });
        assert_eq!(relate(&a, &s), PatternRelation::Unrelated);
    }

    #[test]
    fn full_prefix_member_is_grouped() {
        // p1 is exactly the shared prefix of p2.
        let p1 = q(|b| {
            b.set(|s| s.var("a"))
                .cond_const("a", "L", CmpOp::Eq, "A")
                .within(Duration::hours(10))
        });
        let p2 = q(|b| {
            b.set(|s| s.var("a"))
                .set(|s| s.var("z"))
                .cond_const("a", "L", CmpOp::Eq, "A")
                .cond_const("z", "L", CmpOp::Eq, "Z")
                .within(Duration::hours(10))
        });
        assert_eq!(relate(&p1, &p2), PatternRelation::SharedPrefix { sets: 1 });
        let plan = SharingPlan::compute(&[&p1, &p2], &[]);
        assert_eq!(plan.prefix_groups.len(), 1);
        assert_eq!(plan.prefix_groups[0].leader, 1);
    }

    #[test]
    fn mixed_type_constants_fall_back_syntactically() {
        // `a.V > 1 ∧ a.V < 'x'` poisons the interval domain; equality
        // must then rely on the syntactic rendering.
        let mk = || {
            q(|b| {
                b.set(|s| s.var("a"))
                    .cond_const("a", "V", CmpOp::Gt, 1)
                    .cond_const("a", "V", CmpOp::Lt, "x")
                    .within(Duration::hours(5))
            })
        };
        let p1 = mk();
        let p2 = mk();
        assert_eq!(relate(&p1, &p2), PatternRelation::Equivalent);
        let p3 = q(|b| {
            b.set(|s| s.var("a"))
                .cond_const("a", "V", CmpOp::Gt, 2)
                .cond_const("a", "V", CmpOp::Lt, "x")
                .within(Duration::hours(5))
        });
        assert_ne!(relate(&p1, &p3), PatternRelation::Equivalent);
    }
}
