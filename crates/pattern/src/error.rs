//! Pattern construction and compilation errors.

use std::fmt;

use ses_event::AttrType;

/// Errors raised while building or compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The pattern has no event set patterns (`m ≥ 1` is required).
    NoSets,
    /// An event set pattern is empty (`|Vi| ≥ 1` is required).
    EmptySet {
        /// 0-based index of the empty set.
        set_index: usize,
    },
    /// Two variables share a name; the paper requires `Vi ∩ Vj = ∅` and we
    /// additionally require globally unique names.
    DuplicateVariable(String),
    /// A variable name is empty.
    EmptyVariableName,
    /// More than 64 variables — the bitset state representation would
    /// overflow.
    TooManyVariables(usize),
    /// A condition references a variable name the pattern does not declare.
    UnknownVariable(String),
    /// The window `τ` is negative.
    NegativeWindow(i64),
    /// Compilation: a condition references an attribute absent from the
    /// schema.
    UnknownAttribute {
        /// The missing attribute name.
        attr: String,
    },
    /// Compilation: a condition compares incomparable attribute types.
    IncomparableTypes {
        /// The condition, pretty-printed.
        condition: String,
        /// Left-hand type.
        lhs: AttrType,
        /// Right-hand type.
        rhs: AttrType,
    },
    /// Compilation: a constant condition's literal is `NaN`.
    NanConstant {
        /// The condition, pretty-printed.
        condition: String,
    },
    /// A negated variable is declared at an invalid position.
    NegationPosition {
        /// The negated variable's name.
        name: String,
        /// Why the position is invalid.
        reason: String,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::NoSets => write!(f, "a pattern needs at least one event set pattern"),
            PatternError::EmptySet { set_index } => {
                write!(f, "event set pattern V{} is empty", set_index + 1)
            }
            PatternError::DuplicateVariable(n) => {
                write!(f, "variable `{n}` is declared more than once")
            }
            PatternError::EmptyVariableName => write!(f, "variable names must be non-empty"),
            PatternError::TooManyVariables(n) => {
                write!(f, "pattern has {n} variables; at most 64 are supported")
            }
            PatternError::UnknownVariable(n) => {
                write!(f, "condition references undeclared variable `{n}`")
            }
            PatternError::NegativeWindow(t) => {
                write!(f, "window τ must be non-negative, got {t} ticks")
            }
            PatternError::UnknownAttribute { attr } => {
                write!(f, "schema has no attribute `{attr}`")
            }
            PatternError::IncomparableTypes {
                condition,
                lhs,
                rhs,
            } => {
                write!(f, "condition `{condition}` compares {lhs} with {rhs}")
            }
            PatternError::NanConstant { condition } => {
                write!(f, "condition `{condition}` uses a NaN constant")
            }
            PatternError::NegationPosition { name, reason } => {
                write!(f, "negation `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for PatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert_eq!(
            PatternError::EmptySet { set_index: 1 }.to_string(),
            "event set pattern V2 is empty"
        );
        assert!(PatternError::UnknownVariable("x".into())
            .to_string()
            .contains("`x`"));
    }
}
