//! The multi-pass static analyzer pipeline: [`analyze`].
//!
//! Runs, in order:
//!
//! 1. **Schema check** — compiles the pattern; failures surface as
//!    `SES005` diagnostics instead of hard errors.
//! 2. **Complexity lint** — event set patterns whose instance bound is
//!    factorial or exponential (Theorems 2–3, via
//!    [`crate::ComplexityClass`]) get a `SES004` warning before the user
//!    pays `O(n!)` at runtime.
//! 3. **Equality closure + order-and-constant propagation**
//!    ([`crate::equality_closure`], [`crate::propagate`]) — proves
//!    unsatisfiability (`SES001`) or derives constant conditions for
//!    variables that had none.
//! 4. **Redundancy** — constant conditions implied by the *other*
//!    explicit constant conditions on the same `(variable, attribute)`
//!    (interval [`crate::Domain`] reasoning) get `SES002` and are dropped
//!    from the rewritten pattern.
//! 5. **Filter audit** — if some variable still lacks a constant
//!    condition after derivation, the §4.5 pre-filter will silently
//!    downgrade to `Off` (`SES003` warning); if derivation *rescued* the
//!    filter, `SES003` is reported at info severity instead.
//!
//! The returned [`Analysis::pattern`] is the rewritten pattern: redundant
//! constants removed, derived constants added. The equality closure is
//! used *internally* for propagation but its extra variable conditions
//! are not injected (that stays the `derive_equalities` opt-in). Every
//! rewrite preserves conditions 1–3 of Definition 2, so the matching
//! substitutions are identical to the input pattern's (see
//! `docs/analysis.md` for the soundness argument).

use ses_event::Schema;

use crate::closure::equality_closure;
use crate::condition::Rhs;
use crate::diagnostics::{Diagnostic, DiagnosticCode, Diagnostics, Severity};
use crate::domain::Domain;
use crate::propagate::propagate;
use crate::{Condition, Pattern, VarId};

/// The analyzer's verdict on one pattern.
#[derive(Debug)]
pub struct Analysis {
    /// The rewritten pattern: derived constants added, redundant
    /// constant conditions removed. Equals the input when nothing was
    /// rewritten (or when `SES005` prevented analysis).
    pub pattern: Pattern,
    /// All findings, in pass order.
    pub diagnostics: Diagnostics,
    /// `false` iff `Θ` is provably unsatisfiable (`SES001`).
    pub satisfiable: bool,
    /// Derived constant conditions added to the rewritten pattern.
    pub derived: Vec<Condition>,
    /// Indices (into the input pattern's conditions) of redundant
    /// constant conditions dropped from the rewritten pattern.
    pub redundant: Vec<usize>,
}

/// Runs the full static-analysis pipeline on `pattern` (see the module
/// docs).
pub fn analyze(pattern: &Pattern, schema: &Schema) -> Analysis {
    let mut diagnostics = Diagnostics::new();

    // Pass 1: schema check. Without a well-typed pattern the interval
    // reasoning below has no footing, so SES005 ends the pipeline.
    let compiled = match pattern.compile(schema) {
        Ok(c) => c,
        Err(e) => {
            diagnostics.push(Diagnostic::new(
                DiagnosticCode::SchemaMismatch,
                e.to_string(),
            ));
            return Analysis {
                pattern: pattern.clone(),
                diagnostics,
                satisfiable: true,
                derived: Vec::new(),
                redundant: Vec::new(),
            };
        }
    };

    // Pass 2: complexity lint (Theorems 2–3).
    for (i, class) in compiled.analysis().set_classes().iter().enumerate() {
        if class.is_superpolynomial() {
            diagnostics.push(Diagnostic::new(
                DiagnosticCode::ComplexityBound,
                format!(
                    "event set pattern V{} has instance bound {class}; \
                     consider mutually exclusive constant conditions (Definition 6)",
                    i + 1
                ),
            ));
        }
    }

    // Pass 3: closure + propagation.
    let closed = equality_closure(pattern);
    let prop = propagate(&closed);
    if let Some(reason) = prop.unsat {
        diagnostics.push(Diagnostic::new(
            DiagnosticCode::Unsatisfiable,
            format!("Θ is unsatisfiable: {reason}; the pattern can never match"),
        ));
        return Analysis {
            pattern: pattern.clone(),
            diagnostics,
            satisfiable: false,
            derived: Vec::new(),
            redundant: Vec::new(),
        };
    }

    // Pass 4: redundant constant conditions, judged against the *other*
    // explicit constants on the same node only — dropping them is then
    // behavior-preserving under every engine, not just the reference
    // semantics (same-variable constants evaluate per event).
    let redundant = redundant_constants(pattern);
    let names = |v: VarId| pattern.var(v).name().to_string();
    for &i in &redundant {
        diagnostics.push(
            Diagnostic::new(
                DiagnosticCode::RedundantCondition,
                format!(
                    "condition `{}` is implied by the other constant conditions on the \
                     same attribute and was dropped",
                    crate::condition::display_condition(&pattern.conditions()[i], &names)
                ),
            )
            .with_condition(i),
        );
    }

    // Pass 5: filter audit. A variable without any constant condition
    // (explicit or derived) forces the §4.5 filter to Off.
    let constrained = |conds: &[&Condition], var: VarId| {
        conds
            .iter()
            .any(|c| c.lhs.var == var && matches!(c.rhs, Rhs::Const(_)))
    };
    let explicit: Vec<&Condition> = pattern.conditions().iter().collect();
    let with_derived: Vec<&Condition> = explicit
        .iter()
        .copied()
        .chain(prop.derived.iter())
        .collect();
    let mut rescued: Vec<String> = Vec::new();
    let mut still_open: Vec<String> = Vec::new();
    for i in 0..pattern.num_vars() {
        let var = VarId(i as u16);
        if constrained(&explicit, var) {
            continue;
        }
        if constrained(&with_derived, var) {
            rescued.push(pattern.var(var).name().to_string());
        } else {
            still_open.push(pattern.var(var).name().to_string());
        }
    }
    if !still_open.is_empty() {
        diagnostics.push(Diagnostic::new(
            DiagnosticCode::FilterDowngraded,
            format!(
                "variable(s) {} have no constant condition (none derivable): the §4.5 \
                 event pre-filter silently downgrades to Off",
                still_open.join(", ")
            ),
        ));
    } else if !rescued.is_empty() {
        diagnostics.push(
            Diagnostic::new(
                DiagnosticCode::FilterDowngraded,
                format!(
                    "variable(s) {} gained derived constant conditions; the event \
                     pre-filter runs in the requested mode on the rewritten pattern \
                     instead of downgrading to Off",
                    rescued.join(", ")
                ),
            )
            .with_severity(Severity::Info),
        );
    }

    // Assemble the rewritten pattern: the input's conditions minus the
    // redundant ones, plus the derived constants. The closure's extra
    // *variable* conditions are deliberately NOT injected — under greedy
    // skip-till-next-match they can steer which events a group variable
    // absorbs (see `derive_equalities` for the opt-in), while
    // constant-level edits are behavior-preserving everywhere.
    let conditions: Vec<Condition> = pattern
        .conditions()
        .iter()
        .enumerate()
        .filter(|(i, _)| !redundant.contains(i))
        .map(|(_, c)| c.clone())
        .chain(prop.derived.iter().cloned())
        .collect();
    let rewritten = Pattern::from_parts(
        pattern.variables().to_vec(),
        pattern.sets().to_vec(),
        conditions,
        pattern.negations().to_vec(),
        pattern.within(),
    );

    Analysis {
        pattern: rewritten,
        diagnostics,
        satisfiable: true,
        derived: prop.derived,
        redundant,
    }
}

/// Decides whether `Θ` is provably unsatisfiable — the check
/// [`crate::CompiledPattern`] runs once at compile time so the engine can
/// refuse provably-empty patterns without scanning a single event.
pub fn provably_unsatisfiable(pattern: &Pattern) -> Option<String> {
    propagate(&equality_closure(pattern)).unsat
}

/// Indices of constant conditions implied by the *other* explicit
/// constant conditions on the same `(variable, attribute)`. Scanned in
/// order so that of two mutually implying conditions (e.g. exact
/// duplicates) exactly one survives.
fn redundant_constants(pattern: &Pattern) -> Vec<usize> {
    let conds = pattern.conditions();
    let mut dropped = vec![false; conds.len()];
    let mut out = Vec::new();
    for (i, c) in conds.iter().enumerate() {
        let Rhs::Const(value) = &c.rhs else { continue };
        // Domain of every other surviving constant condition on this node.
        let mut others = Domain::top();
        for (j, o) in conds.iter().enumerate() {
            if i == j || dropped[j] || o.lhs.var != c.lhs.var || o.lhs.attr != c.lhs.attr {
                continue;
            }
            if let Rhs::Const(v) = &o.rhs {
                others.constrain(o.op, v);
            }
        }
        // An empty `others` domain would imply everything vacuously, but
        // that is the SES001 case — `analyze` never reaches this pass
        // then; `provably_unsatisfiable` guards direct callers too.
        if !others.is_empty() && others.implies(c.op, value) {
            dropped[i] = true;
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::{AttrType, CmpOp, Duration};

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .build()
            .unwrap()
    }

    fn codes(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_pattern_has_no_findings() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(10))
            .build()
            .unwrap();
        let a = analyze(&p, &schema());
        assert!(a.diagnostics.is_empty(), "{}", a.diagnostics);
        assert!(a.satisfiable);
        assert_eq!(a.pattern.conditions().len(), 2);
    }

    #[test]
    fn unsatisfiable_interval_reports_ses001() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "V", CmpOp::Gt, 10.0)
            .cond_const("a", "V", CmpOp::Lt, 5.0)
            .build()
            .unwrap();
        let a = analyze(&p, &schema());
        assert!(!a.satisfiable);
        assert!(a.diagnostics.has_errors());
        assert_eq!(codes(&a), vec!["SES001"]);
    }

    #[test]
    fn redundant_condition_reports_ses002_and_is_dropped() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "V", CmpOp::Lt, 5.0)
            .cond_const("a", "V", CmpOp::Lt, 7.0) // implied by < 5
            .build()
            .unwrap();
        let a = analyze(&p, &schema());
        assert_eq!(codes(&a), vec!["SES002"]);
        assert_eq!(a.redundant, vec![1]);
        assert_eq!(a.pattern.conditions().len(), 1);
        assert!(a.diagnostics.iter().next().unwrap().condition == Some(1));
    }

    #[test]
    fn duplicate_conditions_keep_exactly_one() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "V", CmpOp::Lt, 5.0)
            .cond_const("a", "V", CmpOp::Lt, 5.0)
            .build()
            .unwrap();
        let a = analyze(&p, &schema());
        assert_eq!(a.redundant, vec![0]);
        assert_eq!(a.pattern.conditions().len(), 1);
    }

    #[test]
    fn filter_downgrade_reports_ses003_warning() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("free"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .build()
            .unwrap();
        let a = analyze(&p, &schema());
        assert_eq!(codes(&a), vec!["SES003"]);
        let d = a.diagnostics.iter().next().unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("free"), "{}", d.message);
    }

    #[test]
    fn derived_constant_rescues_filter_as_info() {
        // `b` has no constant condition, but b.L = a.L ∧ a.L = 'A'
        // derives b.L = 'A'.
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_vars("b", "L", CmpOp::Eq, "a", "L")
            .build()
            .unwrap();
        let a = analyze(&p, &schema());
        assert_eq!(codes(&a), vec!["SES003"]);
        let d = a.diagnostics.iter().next().unwrap();
        assert_eq!(d.severity, Severity::Info);
        assert!(!a.diagnostics.has_errors());
        assert_eq!(a.derived.len(), 1);
        // The rewritten pattern is fully constrained.
        let cp = a.pattern.compile(&schema()).unwrap();
        assert!(cp.every_var_constrained());
    }

    #[test]
    fn factorial_class_reports_ses004() {
        let p = Pattern::builder()
            .set(|s| s.var("x").var("y"))
            .cond_const("x", "L", CmpOp::Eq, "M")
            .cond_const("y", "L", CmpOp::Eq, "M")
            .build()
            .unwrap();
        let a = analyze(&p, &schema());
        assert_eq!(codes(&a), vec!["SES004"]);
        assert!(!a.diagnostics.has_errors());
    }

    #[test]
    fn schema_mismatch_reports_ses005() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "NOPE", CmpOp::Eq, 1)
            .build()
            .unwrap();
        let a = analyze(&p, &schema());
        assert_eq!(codes(&a), vec!["SES005"]);
        assert!(a.diagnostics.has_errors());
        // The pattern is returned unrewritten.
        assert_eq!(a.pattern.conditions().len(), 1);
    }

    #[test]
    fn unsat_via_equality_closure_and_propagation() {
        // a.ID = b.ID, b.ID = 5, a.ID > 9 — only visible through the
        // equality edge.
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
            .cond_const("b", "ID", CmpOp::Eq, 5)
            .cond_const("a", "ID", CmpOp::Gt, 9)
            .build()
            .unwrap();
        let a = analyze(&p, &schema());
        assert!(!a.satisfiable);
        assert!(provably_unsatisfiable(&p).is_some());
    }

    #[test]
    fn rewritten_pattern_reanalyzes_clean() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "ID", CmpOp::Ge, 3)
            .cond_const("a", "ID", CmpOp::Ge, 1) // redundant
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .cond_vars("b", "ID", CmpOp::Eq, "a", "ID")
            .build()
            .unwrap();
        let first = analyze(&p, &schema());
        assert!(first.satisfiable);
        let second = analyze(&first.pattern, &schema());
        assert!(second.derived.is_empty(), "{:?}", second.derived);
        assert!(second.redundant.is_empty(), "{:?}", second.redundant);
    }
}
