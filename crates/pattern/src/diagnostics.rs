//! Diagnostics emitted by the static analyzer (see [`crate::analyze`]).
//!
//! Every finding carries a stable `SESnnn` code so scripts and CI gates
//! can match on it, a severity, a human-readable message, and — when the
//! pattern came from query text — a source span threaded through from
//! `ses-query`. Rendering is available both human-readable (one line per
//! diagnostic, `rustc`-style) and as JSON for `ses-cli check --format
//! json`.

use std::fmt;

/// Stable diagnostic codes of the static analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticCode {
    /// `SES001` — the condition set `Θ` is provably unsatisfiable: no
    /// event assignment can ever satisfy it.
    Unsatisfiable,
    /// `SES002` — a constant condition is implied by the other constant
    /// conditions on the same `(variable, attribute)` and can be dropped
    /// from transition evaluation.
    RedundantCondition,
    /// `SES003` — the §4.5 event pre-filter cannot run in the requested
    /// mode because some variable has no constant condition (the filter
    /// silently downgrades to `Off` at runtime).
    FilterDowngraded,
    /// `SES004` — an event set pattern falls in a factorial or
    /// exponential instance-bound class (Theorems 2–3).
    ComplexityBound,
    /// `SES005` — the pattern does not compile against the schema
    /// (unknown attribute, incomparable types, NaN constant).
    SchemaMismatch,
    /// `SES006` — two patterns in a bank are provably equivalent (up to
    /// variable renaming and reordering within event sets): one of them
    /// is redundant. Emitted by `ses-cli check --patterns`.
    EquivalentPatterns,
    /// `SES007` — a pattern is subsumed by another: every candidate
    /// match, restricted to the shared variables, is a candidate match
    /// of the more general pattern. Emitted by `ses-cli check
    /// --patterns`.
    SubsumedPattern,
    /// `SES008` — two or more patterns share a sequencing prefix of `k`
    /// event sets with evaluation-identical admission constraints; a
    /// pattern bank with sharing enabled evaluates that prefix once.
    /// Emitted by `ses-cli check --patterns`.
    SharedPrefix,
}

impl DiagnosticCode {
    /// The stable `SESnnn` rendering of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::Unsatisfiable => "SES001",
            DiagnosticCode::RedundantCondition => "SES002",
            DiagnosticCode::FilterDowngraded => "SES003",
            DiagnosticCode::ComplexityBound => "SES004",
            DiagnosticCode::SchemaMismatch => "SES005",
            DiagnosticCode::EquivalentPatterns => "SES006",
            DiagnosticCode::SubsumedPattern => "SES007",
            DiagnosticCode::SharedPrefix => "SES008",
        }
    }

    /// The severity the analyzer assigns by default.
    pub fn default_severity(self) -> Severity {
        match self {
            DiagnosticCode::Unsatisfiable | DiagnosticCode::SchemaMismatch => Severity::Error,
            DiagnosticCode::RedundantCondition
            | DiagnosticCode::FilterDowngraded
            | DiagnosticCode::ComplexityBound
            | DiagnosticCode::EquivalentPatterns
            | DiagnosticCode::SubsumedPattern => Severity::Warning,
            DiagnosticCode::SharedPrefix => Severity::Info,
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is. Errors make `ses-cli check` exit
/// non-zero; warnings and notes do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: nothing is wrong, but the analyzer derived
    /// something worth knowing.
    Info,
    /// Suspicious but executable.
    Warning,
    /// The pattern is broken (unsatisfiable or uncompilable).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A 1-based source position in the query text a pattern was parsed
/// from. Patterns built programmatically have no spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagnosticCode,
    /// Severity (usually [`DiagnosticCode::default_severity`], but e.g. a
    /// filter downgrade *avoided* by derived conditions demotes `SES003`
    /// to [`Severity::Info`]).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Index of the offending condition in
    /// [`crate::Pattern::conditions`], when the finding is about one.
    pub condition: Option<usize>,
    /// Source span in the originating query text, when known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: DiagnosticCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            condition: None,
            span: None,
        }
    }

    /// Overrides the severity.
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// Attaches the index of the offending condition.
    pub fn with_condition(mut self, idx: usize) -> Diagnostic {
        self.condition = Some(idx);
        self
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for Diagnostic {
    /// `severity[CODE]: message (at line:col)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = self.span {
            write!(f, " (at {span})")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics from one analyzer run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// All diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` iff any diagnostic has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Diagnostics with the given code.
    pub fn with_code(&self, code: DiagnosticCode) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter().filter(move |d| d.code == code)
    }

    /// Renders the collection as a JSON array (no external dependencies;
    /// spans render as `line`/`col`, absent fields as `null`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(&d.severity.to_string());
            out.push_str("\",\"message\":");
            json_string(&mut out, &d.message);
            out.push_str(",\"condition\":");
            match d.condition {
                Some(c) => out.push_str(&c.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"line\":");
            match d.span {
                Some(s) => out.push_str(&s.line.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"col\":");
            match d.span {
                Some(s) => out.push_str(&s.col.to_string()),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

impl fmt::Display for Diagnostics {
    /// One diagnostic per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// Appends `s` to `out` as a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(DiagnosticCode::Unsatisfiable.as_str(), "SES001");
        assert_eq!(DiagnosticCode::RedundantCondition.as_str(), "SES002");
        assert_eq!(DiagnosticCode::FilterDowngraded.as_str(), "SES003");
        assert_eq!(DiagnosticCode::ComplexityBound.as_str(), "SES004");
        assert_eq!(DiagnosticCode::SchemaMismatch.as_str(), "SES005");
        assert_eq!(DiagnosticCode::EquivalentPatterns.as_str(), "SES006");
        assert_eq!(DiagnosticCode::SubsumedPattern.as_str(), "SES007");
        assert_eq!(DiagnosticCode::SharedPrefix.as_str(), "SES008");
    }

    #[test]
    fn default_severities() {
        assert_eq!(
            DiagnosticCode::Unsatisfiable.default_severity(),
            Severity::Error
        );
        assert_eq!(
            DiagnosticCode::RedundantCondition.default_severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagnosticCode::EquivalentPatterns.default_severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagnosticCode::SubsumedPattern.default_severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagnosticCode::SharedPrefix.default_severity(),
            Severity::Info
        );
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn human_rendering() {
        let d = Diagnostic::new(DiagnosticCode::Unsatisfiable, "a.V > 10 ∧ a.V < 5")
            .with_span(Span { line: 2, col: 14 });
        assert_eq!(d.to_string(), "error[SES001]: a.V > 10 ∧ a.V < 5 (at 2:14)");
        let d = Diagnostic::new(DiagnosticCode::ComplexityBound, "set V1 is O(3!)");
        assert_eq!(d.to_string(), "warning[SES004]: set V1 is O(3!)");
    }

    #[test]
    fn collection_queries() {
        let mut ds = Diagnostics::new();
        assert!(ds.is_empty());
        assert!(!ds.has_errors());
        ds.push(Diagnostic::new(DiagnosticCode::RedundantCondition, "dup"));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::new(DiagnosticCode::Unsatisfiable, "empty"));
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.with_code(DiagnosticCode::Unsatisfiable).count(), 1);
        let text = ds.to_string();
        assert!(text.contains("warning[SES002]: dup\n"), "{text}");
        assert!(text.contains("error[SES001]: empty\n"), "{text}");
    }

    #[test]
    fn json_rendering_escapes() {
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::new(DiagnosticCode::RedundantCondition, "says \"hi\"\n")
                .with_condition(3)
                .with_span(Span { line: 1, col: 9 }),
        );
        let json = ds.to_json();
        assert_eq!(
            json,
            "[{\"code\":\"SES002\",\"severity\":\"warning\",\
             \"message\":\"says \\\"hi\\\"\\n\",\"condition\":3,\
             \"line\":1,\"col\":9}]"
        );
        assert_eq!(Diagnostics::new().to_json(), "[]");
    }
}
