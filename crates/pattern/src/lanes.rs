//! Columnar-friendly enumeration of constant-condition admission lanes.
//!
//! [`PatternIndex`](crate::PatternIndex) derives one *admission group*
//! per positive variable and per negation — the conjunction of its
//! constant conditions — to decide which events a pattern must see at
//! all. The columnar evaluation layer in `ses-core` needs exactly the
//! same derivation, but in a batch-friendly shape: a deduplicated list
//! of distinct `(attr, op, constant)` **lanes**, each evaluated once
//! per event over a whole batch, plus per-group lane-index lists that
//! recombine lane bits into group admission bits.
//!
//! [`AdmissionLanes`] is that shared shape. Both consumers build from
//! it, so the group semantics cannot drift apart:
//!
//! * `PatternIndex` materializes each group's `(attr, op, value)`
//!   triples from its lane list (see `index.rs`).
//! * `ses-core`'s `columnar` module evaluates each lane into a bitmask
//!   vector and ANDs a group's lanes word-by-word.
//!
//! Deduplication is sound because two lanes merge only when they agree
//! on attribute and operator and their constants are *same-variant*
//! equal (`f64 ==` for floats): such constants produce identical
//! [`Value::compare`] outcomes against every event value. Notably
//! `-0.0`/`0.0` merge (they compare identically under every operator)
//! while `NaN` never merges with anything — mirroring the discipline
//! `PatternIndex` applies to Float point pins. Cross-variant numeric
//! pairs like `Int(3)`/`Float(3.0)` are deliberately *not* merged:
//! integer comparison is exact while the float path rounds through
//! `f64`, so their outcomes can diverge on extreme integers.

use ses_event::{AttrId, CmpOp, Event, Value};

use crate::negation::CompiledNegRhs;
use crate::{CompiledPattern, CompiledRhs, VarId};

/// One distinct constant condition `attr ⟨op⟩ constant`, evaluated
/// against the event's own attributes (no bindings involved).
#[derive(Debug, Clone)]
pub struct ConstLane {
    /// Attribute the lane reads.
    pub attr: AttrId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant right-hand side.
    pub value: Value,
}

impl ConstLane {
    /// Evaluates the lane against one event — the scalar reference
    /// semantics every batched evaluation must reproduce bit-for-bit.
    pub fn eval(&self, event: &Event) -> bool {
        event.value(self.attr).compare(self.op, &self.value)
    }
}

/// What an admission group guards: a positive variable's bindability or
/// a negation's potential to kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneOwner {
    /// Group of positive variable `v`: an event can bind to `v` only
    /// if every lane holds.
    Var(VarId),
    /// Group of the pattern's `i`-th negation (in
    /// [`CompiledPattern::negations`] order): an event can violate it
    /// only if every lane holds.
    Negation(usize),
}

/// One admission group: the conjunction of the listed lanes.
///
/// An empty lane list means the owner is unconstrained — the group
/// holds on **every** event (`PatternIndex` classifies such patterns
/// `Every`; the columnar layer admits all batch positions).
#[derive(Debug, Clone)]
pub struct AdmissionGroup {
    /// Who the group admits for.
    pub owner: LaneOwner,
    /// Indices into [`AdmissionLanes::lanes`]; deduplicated, in first-
    /// occurrence order.
    pub lanes: Vec<usize>,
}

/// The full lane enumeration of one compiled pattern: distinct constant
/// conditions plus the per-variable / per-negation groups over them.
///
/// Group order is fixed: one group per positive variable in `VarId`
/// order, then one per negation in declaration order — the same order
/// `PatternIndex::classify` walks.
#[derive(Debug, Clone)]
pub struct AdmissionLanes {
    lanes: Vec<ConstLane>,
    groups: Vec<AdmissionGroup>,
    num_vars: usize,
}

impl AdmissionLanes {
    /// Enumerates `cp`'s lanes and admission groups.
    pub fn of(cp: &CompiledPattern) -> AdmissionLanes {
        let num_vars = cp.pattern().num_vars();
        let mut lanes: Vec<ConstLane> = Vec::new();
        let mut groups: Vec<AdmissionGroup> = Vec::with_capacity(num_vars);
        for v in 0..num_vars as u16 {
            let var = VarId(v);
            let mut group = AdmissionGroup {
                owner: LaneOwner::Var(var),
                lanes: Vec::new(),
            };
            for &ci in cp.const_conditions_of(var) {
                let c = cp.condition(ci);
                match &c.rhs {
                    CompiledRhs::Const(value) => {
                        push_lane(&mut lanes, &mut group.lanes, c.lhs_attr, c.op, value);
                    }
                    CompiledRhs::Attr { .. } => unreachable!("const_conditions_of is constant"),
                }
            }
            groups.push(group);
        }
        for (i, neg) in cp.negations().iter().enumerate() {
            let mut group = AdmissionGroup {
                owner: LaneOwner::Negation(i),
                lanes: Vec::new(),
            };
            for c in &neg.conditions {
                if let CompiledNegRhs::Const(value) = &c.rhs {
                    push_lane(&mut lanes, &mut group.lanes, c.attr, c.op, value);
                }
            }
            groups.push(group);
        }
        AdmissionLanes {
            lanes,
            groups,
            num_vars,
        }
    }

    /// The distinct constant-condition lanes, in first-occurrence order.
    pub fn lanes(&self) -> &[ConstLane] {
        &self.lanes
    }

    /// All admission groups: variables first (in `VarId` order), then
    /// negations (in declaration order).
    pub fn groups(&self) -> &[AdmissionGroup] {
        &self.groups
    }

    /// Number of positive variables (the first `num_vars` groups).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The admission group of positive variable `v`.
    pub fn var_group(&self, v: VarId) -> &AdmissionGroup {
        &self.groups[v.0 as usize]
    }

    /// The negation groups, in declaration order.
    pub fn negation_groups(&self) -> &[AdmissionGroup] {
        &self.groups[self.num_vars..]
    }

    /// `true` iff group `g` holds on `event` — every lane satisfied
    /// (vacuously true when the group has no lanes).
    pub fn group_holds(&self, g: &AdmissionGroup, event: &Event) -> bool {
        g.lanes.iter().all(|&i| self.lanes[i].eval(event))
    }
}

/// Appends the lane for `(attr, op, value)` to `group`, interning it in
/// `lanes` (linear scan — lane counts are small) and deduplicating
/// repeats within the group itself.
fn push_lane(
    lanes: &mut Vec<ConstLane>,
    group: &mut Vec<usize>,
    attr: AttrId,
    op: CmpOp,
    value: &Value,
) {
    let idx = lanes
        .iter()
        .position(|l| l.attr == attr && l.op == op && lane_value_eq(&l.value, value))
        .unwrap_or_else(|| {
            lanes.push(ConstLane {
                attr,
                op,
                value: value.clone(),
            });
            lanes.len() - 1
        });
    if !group.contains(&idx) {
        group.push(idx);
    }
}

/// Same-variant constant equality: merged constants must yield
/// identical `Value::compare` outcomes for every event value. `f64 ==`
/// gives exactly that for floats (merges `-0.0`/`0.0`, never `NaN`);
/// cross-variant numeric equality is rejected (see the module docs).
fn lane_value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pattern;
    use ses_event::{AttrType, Duration, Schema, Timestamp};

    fn schema() -> Schema {
        Schema::builder()
            .attr("L", AttrType::Str)
            .attr("ID", AttrType::Int)
            .build()
            .unwrap()
    }

    fn event(l: &str, id: i64) -> Event {
        Event::new(Timestamp::new(0), vec![Value::from(l), Value::from(id)])
    }

    #[test]
    fn shared_constants_dedup_into_one_lane() {
        // Both variables demand L = 'A'; only `a` adds ID > 3.
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("a", "ID", CmpOp::Gt, 3)
            .cond_const("b", "L", CmpOp::Eq, "A")
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let lanes = AdmissionLanes::of(&p);
        assert_eq!(lanes.lanes().len(), 2);
        assert_eq!(lanes.num_vars(), 2);
        let a = lanes.var_group(VarId(0));
        let b = lanes.var_group(VarId(1));
        assert_eq!(a.lanes.len(), 2);
        assert_eq!(b.lanes.len(), 1);
        // The shared L = 'A' lane is literally the same index.
        assert!(a.lanes.contains(&b.lanes[0]));
        assert!(lanes.group_holds(a, &event("A", 5)));
        assert!(!lanes.group_holds(a, &event("A", 1)));
        assert!(lanes.group_holds(b, &event("A", 1)));
        assert!(!lanes.group_holds(b, &event("B", 5)));
    }

    #[test]
    fn unconstrained_variable_has_empty_group() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let lanes = AdmissionLanes::of(&p);
        assert!(lanes.var_group(VarId(1)).lanes.is_empty());
        // Vacuous conjunction: holds on anything.
        assert!(lanes.group_holds(lanes.var_group(VarId(1)), &event("Z", 0)));
    }

    #[test]
    fn negation_constants_form_trailing_groups() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .negate("x")
            .set(|s| s.var("b"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .neg_cond_const("x", "L", CmpOp::Eq, "X")
            .neg_cond_vars("x", "ID", CmpOp::Eq, "a", "ID")
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let lanes = AdmissionLanes::of(&p);
        assert_eq!(lanes.negation_groups().len(), 1);
        let neg = &lanes.negation_groups()[0];
        assert_eq!(neg.owner, LaneOwner::Negation(0));
        // Only the constant condition contributes a lane; the
        // correlated one is binding-dependent.
        assert_eq!(neg.lanes.len(), 1);
        assert!(lanes.group_holds(neg, &event("X", 9)));
        assert!(!lanes.group_holds(neg, &event("Y", 9)));
    }

    #[test]
    fn float_zero_spellings_merge_nan_does_not() {
        let fschema = Schema::builder()
            .attr("V", AttrType::Float)
            .build()
            .unwrap();
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "V", CmpOp::Eq, 0.0)
            .cond_const("b", "V", CmpOp::Eq, -0.0)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&fschema)
            .unwrap();
        let lanes = AdmissionLanes::of(&p);
        // -0.0 == 0.0 compare identically under every operator: one lane.
        assert_eq!(lanes.lanes().len(), 1);

        // NaN never equals itself: two NaN constants must not merge
        // (the compiler rejects NaN literals, so check the key directly).
        assert!(!lane_value_eq(
            &Value::from(f64::NAN),
            &Value::from(f64::NAN)
        ));
        // Cross-variant numeric equality is rejected by the key too.
        assert!(!lane_value_eq(&Value::from(3), &Value::from(3.0)));
    }

    #[test]
    fn cross_variant_numeric_constants_stay_distinct() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .cond_const("a", "ID", CmpOp::Eq, 3)
            .cond_const("b", "ID", CmpOp::Eq, 3.0)
            .within(Duration::ticks(5))
            .build()
            .unwrap()
            .compile(&schema())
            .unwrap();
        let lanes = AdmissionLanes::of(&p);
        assert_eq!(lanes.lanes().len(), 2);
    }
}
