//! Static pattern analysis: mutual exclusion (Definition 6) and the
//! complexity classes of Theorems 1–3.
//!
//! The analysis is **conservative in the sound direction**: when it reports
//! two variables as mutually exclusive, no single event can satisfy both
//! variables' constant conditions; when it cannot prove exclusion it says
//! "not exclusive" (e.g. over discrete integer domains where `> 5 ∧ < 6`
//! is in fact unsatisfiable, we assume density and report satisfiable).
//! This errs toward predicting *more* nondeterminism, never less.

use std::cmp::Ordering;
use std::fmt;

use ses_event::{CmpOp, Value};

use crate::compiled::{CompiledCondition, CompiledRhs};
use crate::{Pattern, VarId};

/// Upper bound on the number of simultaneous automaton instances
/// contributed by one event set pattern (Theorems 1–3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComplexityClass {
    /// Theorem 1: all variables pairwise mutually exclusive → `O(1)`.
    Constant,
    /// Theorem 2: not mutually exclusive, no group variable → `O(n!)`.
    Factorial {
        /// `n = |Vi|`.
        n: usize,
    },
    /// Theorem 3, `k = 1`: one group variable → `O((n−1)!·W^n)`.
    GroupPolynomial {
        /// `n = |Vi|`.
        n: usize,
    },
    /// Theorem 3, `k > 1`: `k` group variables → `O(k·(n−1)!·k^(W·n))`.
    GroupExponential {
        /// `n = |Vi|`.
        n: usize,
        /// Number of group variables.
        k: usize,
    },
}

impl ComplexityClass {
    /// Evaluates the bound for a concrete window size `W`, saturating at
    /// `u64::MAX`. Useful for plotting predicted vs measured |Ω|.
    pub fn bound(&self, window: u64) -> u64 {
        fn fact(n: u64) -> u64 {
            (1..=n)
                .try_fold(1u64, |a, b| a.checked_mul(b))
                .unwrap_or(u64::MAX)
        }
        fn pow(b: u64, e: u64) -> u64 {
            let e = u32::try_from(e).unwrap_or(u32::MAX);
            b.checked_pow(e).unwrap_or(u64::MAX)
        }
        match *self {
            ComplexityClass::Constant => 1,
            ComplexityClass::Factorial { n } => fact(n as u64),
            ComplexityClass::GroupPolynomial { n } => {
                fact(n as u64 - 1).saturating_mul(pow(window, n as u64))
            }
            ComplexityClass::GroupExponential { n, k } => (k as u64)
                .checked_mul(fact(n as u64 - 1))
                .and_then(|x| x.checked_mul(pow(k as u64, window.saturating_mul(n as u64))))
                .unwrap_or(u64::MAX),
        }
    }

    /// `true` for the factorial and exponential classes (Theorems 2–3) —
    /// the ones the static analyzer lints with `SES004`.
    pub fn is_superpolynomial(&self) -> bool {
        matches!(
            self,
            ComplexityClass::Factorial { .. } | ComplexityClass::GroupExponential { .. }
        )
    }
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ComplexityClass::Constant => write!(f, "O(1)"),
            ComplexityClass::Factorial { n } => write!(f, "O({n}!)"),
            ComplexityClass::GroupPolynomial { n } => write!(f, "O({}!·W^{n})", n - 1),
            ComplexityClass::GroupExponential { n, k } => {
                write!(f, "O({k}·{}!·{k}^(W·{n}))", n - 1)
            }
        }
    }
}

/// The result of statically analyzing a compiled pattern.
#[derive(Debug, Clone)]
pub struct PatternAnalysis {
    num_vars: usize,
    /// Row `i` holds a bitmask of the variables mutually exclusive with
    /// variable `i`.
    exclusive: Vec<u64>,
    per_set: Vec<ComplexityClass>,
}

impl PatternAnalysis {
    pub(crate) fn analyze(pattern: &Pattern, conditions: &[CompiledCondition]) -> PatternAnalysis {
        let n = pattern.num_vars();
        let mut exclusive = vec![0u64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if vars_mutually_exclusive(VarId(i as u16), VarId(j as u16), conditions) {
                    exclusive[i] |= 1 << j;
                    exclusive[j] |= 1 << i;
                }
            }
        }
        let analysis = PatternAnalysis {
            num_vars: n,
            exclusive,
            per_set: Vec::new(),
        };
        let per_set = (0..pattern.num_sets())
            .map(|s| analysis.classify_set(pattern, s))
            .collect();
        PatternAnalysis {
            per_set,
            ..analysis
        }
    }

    fn classify_set(&self, pattern: &Pattern, set_idx: usize) -> ComplexityClass {
        let set = pattern.set(set_idx);
        let n = set.len();
        if self.set_pairwise_exclusive(set) {
            return ComplexityClass::Constant;
        }
        let k = pattern.group_count(set_idx);
        match k {
            0 => ComplexityClass::Factorial { n },
            1 => ComplexityClass::GroupPolynomial { n },
            _ => ComplexityClass::GroupExponential { n, k },
        }
    }

    fn set_pairwise_exclusive(&self, set: &[VarId]) -> bool {
        set.iter()
            .all(|&u| set.iter().all(|&v| u == v || self.is_exclusive(u, v)))
    }

    /// `true` iff variables `u` and `v` are provably mutually exclusive
    /// (Definition 6): some pair of constant conditions on the same
    /// attribute cannot be satisfied by a single event.
    pub fn is_exclusive(&self, u: VarId, v: VarId) -> bool {
        u != v && (self.exclusive[u.index()] >> v.index()) & 1 == 1
    }

    /// `true` iff all variables of event set pattern `set_idx` are pairwise
    /// mutually exclusive (the premise of Theorem 1).
    pub fn all_pairwise_mutually_exclusive(&self, set_idx: usize) -> bool {
        self.per_set[set_idx] == ComplexityClass::Constant
    }

    /// The complexity class of event set pattern `set_idx`.
    pub fn set_class(&self, set_idx: usize) -> ComplexityClass {
        self.per_set[set_idx]
    }

    /// Per-set complexity classes in sequence order.
    pub fn set_classes(&self) -> &[ComplexityClass] {
        &self.per_set
    }

    /// The worst per-set bound evaluated at window size `W` — the
    /// `|Ω|max` of the paper's overall bound `O(W · |Ω|max^m)`.
    pub fn worst_set_bound(&self, window: u64) -> u64 {
        self.per_set
            .iter()
            .map(|c| c.bound(window))
            .max()
            .unwrap_or(1)
    }

    /// Number of variables analyzed.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }
}

/// Definition 6: `v` and `v'` are mutually exclusive iff there exist
/// constant conditions `v.A φ C` and `v'.A φ' C'` (same attribute `A`)
/// that no single event can satisfy simultaneously.
fn vars_mutually_exclusive(u: VarId, v: VarId, conditions: &[CompiledCondition]) -> bool {
    let consts_of = |var: VarId| {
        conditions
            .iter()
            .filter(move |c| c.lhs_var == var && c.is_constant())
    };
    for cu in consts_of(u) {
        for cv in consts_of(v) {
            if cu.lhs_attr != cv.lhs_attr {
                continue;
            }
            let (CompiledRhs::Const(a), CompiledRhs::Const(b)) = (&cu.rhs, &cv.rhs) else {
                continue;
            };
            if constraints_incompatible(cu.op, a, cv.op, b) {
                return true;
            }
        }
    }
    false
}

/// Decides whether `x φ1 c1 ∧ x φ2 c2` is unsatisfiable over a dense,
/// totally ordered domain (sound under-approximation for discrete domains).
pub(crate) fn constraints_incompatible(op1: CmpOp, c1: &Value, op2: CmpOp, c2: &Value) -> bool {
    use CmpOp::*;
    let Some(ord) = c1.try_cmp(c2) else {
        // Incomparable constant types: an equality against each cannot both
        // hold; anything else we conservatively call satisfiable.
        return op1 == Eq && op2 == Eq;
    };
    match (op1, op2) {
        (Eq, Eq) => ord != Ordering::Equal,
        (Eq, Ne) | (Ne, Eq) => ord == Ordering::Equal,
        (Eq, _) => !op2.eval(ord),           // c1 must satisfy φ2 vs c2
        (_, Eq) => !op1.eval(ord.reverse()), // c2 must satisfy φ1 vs c1
        (Ne, _) | (_, Ne) => false,          // rays minus a point are never empty (dense)
        _ => {
            // Two rays. Empty iff one is a lower ray, the other an upper
            // ray, and they do not overlap.
            let lower = |op: CmpOp| matches!(op, Lt | Le);
            let strict = |op: CmpOp| matches!(op, Lt | Gt);
            if lower(op1) == lower(op2) {
                return false; // same direction always overlaps
            }
            // Normalize: `lo_bound` from the upper ray (x > / ≥ bound),
            // `hi_bound` from the lower ray (x < / ≤ bound).
            let (hi, hi_op, lo, lo_op) = if lower(op1) {
                (c1, op1, c2, op2)
            } else {
                (c2, op2, c1, op1)
            };
            match lo.try_cmp(hi) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => strict(lo_op) || strict(hi_op),
                _ => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pattern;
    use ses_event::{AttrType, Duration, Schema};

    fn schema() -> Schema {
        Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .attr("V", AttrType::Float)
            .build()
            .unwrap()
    }

    #[test]
    fn incompatible_equalities() {
        let a = Value::from("C");
        let b = Value::from("D");
        assert!(constraints_incompatible(CmpOp::Eq, &a, CmpOp::Eq, &b));
        assert!(!constraints_incompatible(CmpOp::Eq, &a, CmpOp::Eq, &a));
    }

    #[test]
    fn eq_vs_ne() {
        let a = Value::from(5);
        assert!(constraints_incompatible(CmpOp::Eq, &a, CmpOp::Ne, &a));
        assert!(constraints_incompatible(CmpOp::Ne, &a, CmpOp::Eq, &a));
        assert!(!constraints_incompatible(
            CmpOp::Eq,
            &a,
            CmpOp::Ne,
            &Value::from(6)
        ));
    }

    #[test]
    fn eq_vs_ranges() {
        let five = Value::from(5);
        let ten = Value::from(10);
        // x = 10 ∧ x < 5 → unsat
        assert!(constraints_incompatible(CmpOp::Eq, &ten, CmpOp::Lt, &five));
        // x = 3 ∧ x < 5 → sat
        assert!(!constraints_incompatible(
            CmpOp::Eq,
            &Value::from(3),
            CmpOp::Lt,
            &five
        ));
        // x > 10 ∧ x = 5 → unsat (Eq on the right)
        assert!(constraints_incompatible(CmpOp::Gt, &ten, CmpOp::Eq, &five));
        // x ≥ 5 ∧ x = 5 → sat
        assert!(!constraints_incompatible(
            CmpOp::Ge,
            &five,
            CmpOp::Eq,
            &five
        ));
        // x < 5 ∧ x = 5 → unsat
        assert!(constraints_incompatible(CmpOp::Lt, &five, CmpOp::Eq, &five));
    }

    #[test]
    fn opposite_rays() {
        let five = Value::from(5);
        let ten = Value::from(10);
        // x < 5 ∧ x > 10 → unsat
        assert!(constraints_incompatible(CmpOp::Lt, &five, CmpOp::Gt, &ten));
        // x > 10 ∧ x < 5 (swapped) → unsat
        assert!(constraints_incompatible(CmpOp::Gt, &ten, CmpOp::Lt, &five));
        // x < 5 ∧ x ≥ 5 → unsat (touching, one strict)
        assert!(constraints_incompatible(CmpOp::Lt, &five, CmpOp::Ge, &five));
        // x ≤ 5 ∧ x ≥ 5 → sat (both inclusive)
        assert!(!constraints_incompatible(
            CmpOp::Le,
            &five,
            CmpOp::Ge,
            &five
        ));
        // x ≤ 10 ∧ x ≥ 5 → sat (overlap)
        assert!(!constraints_incompatible(CmpOp::Le, &ten, CmpOp::Ge, &five));
        // same direction always sat
        assert!(!constraints_incompatible(CmpOp::Lt, &five, CmpOp::Le, &ten));
        assert!(!constraints_incompatible(CmpOp::Gt, &five, CmpOp::Ge, &ten));
    }

    #[test]
    fn ne_with_rays_is_satisfiable() {
        let five = Value::from(5);
        assert!(!constraints_incompatible(
            CmpOp::Ne,
            &five,
            CmpOp::Lt,
            &five
        ));
        assert!(!constraints_incompatible(
            CmpOp::Ne,
            &five,
            CmpOp::Ne,
            &five
        ));
    }

    #[test]
    fn incomparable_constants_only_exclude_equalities() {
        let s = Value::from("x");
        let i = Value::from(1);
        assert!(constraints_incompatible(CmpOp::Eq, &s, CmpOp::Eq, &i));
        assert!(!constraints_incompatible(CmpOp::Lt, &s, CmpOp::Gt, &i));
    }

    fn classify(p: &Pattern) -> PatternAnalysis {
        p.compile(&schema()).unwrap().analysis().clone()
    }

    #[test]
    fn theorem1_mutually_exclusive_pattern() {
        // Paper P1: distinct L values per variable.
        let p = Pattern::builder()
            .set(|s| s.var("c").var("d").var("p"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_const("d", "L", CmpOp::Eq, "D")
            .cond_const("p", "L", CmpOp::Eq, "P")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::hours(264))
            .build()
            .unwrap();
        let a = classify(&p);
        assert!(a.is_exclusive(VarId(0), VarId(1)));
        assert!(!a.is_exclusive(VarId(0), VarId(0)));
        assert_eq!(a.set_class(0), ComplexityClass::Constant);
        assert_eq!(a.set_class(1), ComplexityClass::Constant);
        assert!(a.all_pairwise_mutually_exclusive(0));
        assert_eq!(a.worst_set_bound(1000), 1);
    }

    #[test]
    fn theorem2_same_type_pattern() {
        // Paper P2/P4: all V1 variables match the same L value.
        let p = Pattern::builder()
            .set(|s| s.var("c").var("d").var("p"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "M")
            .cond_const("d", "L", CmpOp::Eq, "M")
            .cond_const("p", "L", CmpOp::Eq, "M")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .build()
            .unwrap();
        let a = classify(&p);
        assert_eq!(a.set_class(0), ComplexityClass::Factorial { n: 3 });
        assert_eq!(a.set_class(0).bound(0), 6);
        assert!(!a.all_pairwise_mutually_exclusive(0));
    }

    #[test]
    fn theorem3_single_group_var() {
        // Paper P3: {c, d, p+} with identical types.
        let p = Pattern::builder()
            .set(|s| s.var("c").var("d").plus("p"))
            .cond_const("c", "L", CmpOp::Eq, "M")
            .cond_const("d", "L", CmpOp::Eq, "M")
            .cond_const("p", "L", CmpOp::Eq, "M")
            .build()
            .unwrap();
        let a = classify(&p);
        assert_eq!(a.set_class(0), ComplexityClass::GroupPolynomial { n: 3 });
        // (3-1)! · W^3 at W=10 → 2000
        assert_eq!(a.set_class(0).bound(10), 2000);
    }

    #[test]
    fn theorem3_multiple_group_vars() {
        let p = Pattern::builder()
            .set(|s| s.plus("a").plus("b").var("c"))
            .cond_const("a", "L", CmpOp::Eq, "M")
            .cond_const("b", "L", CmpOp::Eq, "M")
            .cond_const("c", "L", CmpOp::Eq, "M")
            .build()
            .unwrap();
        let a = classify(&p);
        assert_eq!(
            a.set_class(0),
            ComplexityClass::GroupExponential { n: 3, k: 2 }
        );
        assert_eq!(a.set_class(0).bound(64), u64::MAX); // saturates
    }

    #[test]
    fn group_vars_with_exclusive_types_are_constant() {
        // Mutual exclusion wins even with a group variable present
        // (Theorem 1 has no caveat about quantifiers).
        let p = Pattern::builder()
            .set(|s| s.var("c").plus("p"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_const("p", "L", CmpOp::Eq, "P")
            .build()
            .unwrap();
        assert_eq!(classify(&p).set_class(0), ComplexityClass::Constant);
    }

    #[test]
    fn range_based_exclusion() {
        let p = Pattern::builder()
            .set(|s| s.var("small").var("big"))
            .cond_const("small", "V", CmpOp::Lt, 10.0)
            .cond_const("big", "V", CmpOp::Ge, 10.0)
            .build()
            .unwrap();
        let a = classify(&p);
        assert!(a.is_exclusive(VarId(0), VarId(1)));
        assert_eq!(a.set_class(0), ComplexityClass::Constant);
    }

    #[test]
    fn display_bounds() {
        assert_eq!(ComplexityClass::Constant.to_string(), "O(1)");
        assert_eq!(ComplexityClass::Factorial { n: 4 }.to_string(), "O(4!)");
        assert_eq!(
            ComplexityClass::GroupPolynomial { n: 3 }.to_string(),
            "O(2!·W^3)"
        );
        assert_eq!(
            ComplexityClass::GroupExponential { n: 3, k: 2 }.to_string(),
            "O(2·2!·2^(W·3))"
        );
    }
}
