//! Sequenced event set (SES) patterns.
//!
//! Implements Definition 1 of *Cadonna, Gamper, Böhlen: Sequenced Event Set
//! Pattern Matching (EDBT 2011)*: a pattern
//!
//! ```text
//! P = (⟨V1, …, Vm⟩, Θ, τ)
//! ```
//!
//! where each `Vi` is a set of pairwise distinct **event variables**
//! (singleton `v` or group `v+` with Kleene plus), `Θ` is a set of
//! comparison **conditions** over variable attributes, and `τ` is the
//! maximal duration between the first and last matching event.
//!
//! A [`Pattern`] is schema-independent: conditions reference attributes by
//! name. [`Pattern::compile`] resolves names against a
//! [`ses_event::Schema`], type-checks every condition, and produces a
//! [`CompiledPattern`] — the input of the automaton construction in
//! `ses-core`.
//!
//! # Example: the paper's Query Q1
//!
//! ```
//! use ses_event::{AttrType, CmpOp, Duration, Schema};
//! use ses_pattern::Pattern;
//!
//! let pattern = Pattern::builder()
//!     .set(|s| s.var("c").plus("p").var("d"))
//!     .set(|s| s.var("b"))
//!     .cond_const("c", "L", CmpOp::Eq, "C")
//!     .cond_const("d", "L", CmpOp::Eq, "D")
//!     .cond_const("p", "L", CmpOp::Eq, "P")
//!     .cond_const("b", "L", CmpOp::Eq, "B")
//!     .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
//!     .cond_vars("c", "ID", CmpOp::Eq, "d", "ID")
//!     .cond_vars("d", "ID", CmpOp::Eq, "b", "ID")
//!     .within(Duration::hours(264))
//!     .build()
//!     .unwrap();
//!
//! assert_eq!(pattern.num_sets(), 2);
//! assert_eq!(pattern.num_vars(), 4);
//!
//! let schema = Schema::builder()
//!     .attr("ID", AttrType::Int)
//!     .attr("L", AttrType::Str)
//!     .build()
//!     .unwrap();
//! let compiled = pattern.compile(&schema).unwrap();
//! assert!(compiled.analysis().all_pairwise_mutually_exclusive(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod analyzer;
mod builder;
mod closure;
mod compiled;
mod condition;
mod diagnostics;
mod domain;
mod error;
mod index;
mod lanes;
mod negation;
mod pattern;
mod propagate;
mod relate;
mod variable;

pub use analysis::{ComplexityClass, PatternAnalysis};
pub use analyzer::{analyze, provably_unsatisfiable, Analysis};
pub use builder::{PatternBuilder, SetBuilder};
pub use closure::equality_closure;
pub use compiled::{CompiledCondition, CompiledPattern, CompiledRhs};
pub use condition::{AttrRef, Condition, Rhs};
pub use diagnostics::{Diagnostic, DiagnosticCode, Diagnostics, Severity, Span};
pub use domain::{Bound, Domain};
pub use error::PatternError;
pub use index::{IndexClass, PatternIndex};
pub use lanes::{AdmissionGroup, AdmissionLanes, ConstLane, LaneOwner};
pub use negation::{
    CompiledNegCondition, CompiledNegRhs, CompiledNegation, NegCondition, Negation,
};
pub use pattern::Pattern;
pub use propagate::{propagate, Propagation};
pub use relate::{relate, PatternRelation, PrefixGroup, ShareConstraint, ShareRole, SharingPlan};
pub use variable::{Quantifier, VarId, Variable};
