//! Order-and-constant propagation over the condition graph.
//!
//! Generalizes [`crate::equality_closure`] from `=` to the full ordering
//! fragment `{=, <, ≤, >, ≥}`: variable conditions induce ordering edges
//! between `(variable, attribute)` nodes, constant conditions seed each
//! node's [`Domain`], and a fixpoint pushes bounds along the edges:
//!
//! * `a.X ≤ b.X ∧ b.X < 5 ⟹ a.X < 5` — upper bounds flow *against* the
//!   order, lower bounds flow *with* it, strictness accumulates;
//! * `a.X = b.Y` — the two nodes share one domain (bounds *and* `≠`
//!   exclusions merge both ways);
//! * transitive chains `a < b ≤ c < 7` tighten every node on the path.
//!
//! The pass also decides **satisfiability**: an empty node domain, an
//! ordering cycle through a strict edge (`a.X < b.X ∧ b.X ≤ a.X`), or a
//! `≠` between provably equal nodes all make `Θ` unsatisfiable — no
//! substitution can pass conditions 1–3 of Definition 2, so the matcher
//! can refuse the pattern outright instead of scanning events.
//!
//! Every derived constant condition is *implied* by `Θ` for complete
//! substitutions (group variables included: a bound that holds for a
//! variable holds for every event bound to it), so adding it preserves
//! the Definition-2 answer exactly — the same soundness argument as the
//! equality closure.

use ses_event::CmpOp;

use crate::closure::NodeSet;
use crate::condition::Rhs;
use crate::domain::Domain;
use crate::{Condition, Pattern};

/// Result of the propagation pass over one pattern.
#[derive(Debug)]
pub struct Propagation {
    /// Proof of unsatisfiability (human-readable), if `Θ` admits no
    /// substitution.
    pub unsat: Option<String>,
    /// Constant conditions implied by `Θ` but not present in it, in node
    /// order. Empty when `unsat` is set.
    pub derived: Vec<Condition>,
}

/// Upper bound on fixpoint sweeps; the bound lattice is finite (bounds
/// only take values from the constant pool and strictness only rises), so
/// this is a safety net, not a tuning knob.
const MAX_SWEEPS: usize = 64;

/// Runs order-and-constant propagation over `pattern` (see the module
/// docs). Call on the [`crate::equality_closure`] of a pattern to also
/// pick up transitively implied equalities — the analyzer pipeline does.
pub fn propagate(pattern: &Pattern) -> Propagation {
    let mut nodes = NodeSet::new();
    // Ordering edges (from, to, strict): "from ≤/< to".
    let mut le_edges: Vec<(usize, usize, bool)> = Vec::new();
    let mut eq_edges: Vec<(usize, usize)> = Vec::new();
    let mut ne_edges: Vec<(usize, usize)> = Vec::new();
    // Constant conditions, resolved to node ids up front so the interner
    // is not touched again once `render` borrows it.
    let mut const_conds: Vec<(usize, CmpOp, &ses_event::Value)> = Vec::new();

    for c in pattern.conditions() {
        let a = nodes.intern(c.lhs.var, &c.lhs.attr);
        match &c.rhs {
            Rhs::Attr(r) => {
                let b = nodes.intern(r.var, &r.attr);
                match c.op {
                    CmpOp::Eq => eq_edges.push((a, b)),
                    CmpOp::Ne => ne_edges.push((a, b)),
                    CmpOp::Lt => le_edges.push((a, b, true)),
                    CmpOp::Le => le_edges.push((a, b, false)),
                    CmpOp::Gt => le_edges.push((b, a, true)),
                    CmpOp::Ge => le_edges.push((b, a, false)),
                }
            }
            Rhs::Const(v) => const_conds.push((a, c.op, v)),
        }
    }
    let n = nodes.len();

    let render = |i: usize| {
        let (var, attr) = nodes.get(i);
        format!("{}.{}", pattern.var(*var).name(), attr)
    };

    // --- Pure-order unsatisfiability: reachability with strictness.
    // reach[i][j] = Some(strict) means the conditions force
    // node_i ≤ node_j (strict: <). Equalities contribute both directions.
    let mut reach: Vec<Vec<Option<bool>>> = vec![vec![None; n]; n];
    let relax = |m: &mut Vec<Vec<Option<bool>>>, a: usize, b: usize, strict: bool| {
        let stronger = match m[a][b] {
            None => true,
            Some(s) => strict && !s,
        };
        if stronger {
            m[a][b] = Some(strict);
        }
    };
    for &(a, b, strict) in &le_edges {
        relax(&mut reach, a, b, strict);
    }
    for &(a, b) in &eq_edges {
        relax(&mut reach, a, b, false);
        relax(&mut reach, b, a, false);
    }
    for k in 0..n {
        for i in 0..n {
            let Some(s1) = reach[i][k] else { continue };
            for j in 0..n {
                let Some(s2) = reach[k][j] else { continue };
                relax(&mut reach, i, j, s1 || s2);
            }
        }
    }
    for (i, row) in reach.iter().enumerate() {
        if row[i] == Some(true) {
            return Propagation {
                unsat: Some(format!(
                    "ordering cycle forces {} < {}",
                    render(i),
                    render(i)
                )),
                derived: Vec::new(),
            };
        }
    }
    // `a ≠ b` with `a ≤ b` and `b ≤ a` (both non-strict, else the cycle
    // above fires): the order pins them equal, the `≠` forbids it.
    for &(a, b) in &ne_edges {
        if a == b {
            return Propagation {
                unsat: Some(format!("{} ≠ {} can never hold", render(a), render(a))),
                derived: Vec::new(),
            };
        }
        if reach[a][b].is_some() && reach[b][a].is_some() {
            return Propagation {
                unsat: Some(format!(
                    "{} and {} are forced equal by the ordering conditions but related by ≠",
                    render(a),
                    render(b)
                )),
                derived: Vec::new(),
            };
        }
    }

    // --- Seed domains from the explicit constant conditions.
    let mut domains: Vec<Domain> = vec![Domain::top(); n];
    for &(i, op, v) in &const_conds {
        domains[i].constrain(op, v);
    }

    // --- Fixpoint: bounds flow along edges until nothing changes. The
    // repeated pairwise `absorb` over the `=` edges converges to one
    // shared domain per equality class (`≠` exclusions included), so no
    // separate union-find pass is needed.
    let mut changed = true;
    let mut sweeps = 0;
    while changed && sweeps < MAX_SWEEPS {
        changed = false;
        sweeps += 1;
        // Equal nodes share one domain.
        for &(a, b) in &eq_edges {
            let d = domains[a].clone();
            changed |= domains[b].absorb(&d);
            let d = domains[b].clone();
            changed |= domains[a].absorb(&d);
        }
        // `from ≤ to`: upper bounds flow to `from`, lower bounds to `to`.
        for &(from, to, strict) in &le_edges {
            if let Some(hi) = domains[to].hi().cloned() {
                changed |= domains[from].tighten_hi(&hi.value, hi.strict || strict);
            }
            if let Some(lo) = domains[from].lo().cloned() {
                changed |= domains[to].tighten_lo(&lo.value, lo.strict || strict);
            }
        }
    }

    for (i, d) in domains.iter().enumerate() {
        if d.is_empty() {
            return Propagation {
                unsat: Some(format!(
                    "the constant conditions on {} admit no value",
                    render(i)
                )),
                derived: Vec::new(),
            };
        }
    }

    // --- Derived conditions: whatever the propagated domain knows beyond
    // the node's own explicit constant conditions.
    let mut explicit: Vec<Domain> = vec![Domain::top(); n];
    for &(i, op, v) in &const_conds {
        explicit[i].constrain(op, v);
    }
    let mut derived = Vec::new();
    for i in 0..n {
        for (op, value) in domains[i].to_constraints() {
            if explicit[i].implies(op, &value) {
                continue;
            }
            let (var, attr) = nodes.get(i);
            derived.push(Condition::constant(*var, attr.as_ref(), op, value));
        }
    }

    Propagation {
        unsat: None,
        derived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::Duration;

    fn pat(build: impl FnOnce(crate::PatternBuilder) -> crate::PatternBuilder) -> Pattern {
        build(
            Pattern::builder()
                .set(|s| s.var("a").var("b").var("c"))
                .within(Duration::ticks(100)),
        )
        .build()
        .unwrap()
    }

    fn derived_strings(p: &Pattern) -> Vec<String> {
        let prop = propagate(p);
        assert!(prop.unsat.is_none(), "{:?}", prop.unsat);
        let names = |v: crate::VarId| p.var(v).name().to_string();
        prop.derived
            .iter()
            .map(|c| crate::condition::display_condition(c, &names))
            .collect()
    }

    #[test]
    fn le_chain_pushes_upper_bound() {
        // a.X ≤ b.X ∧ b.X < 5 ⟹ a.X < 5 (the module-doc example).
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Le, "b", "X")
                .cond_const("b", "X", CmpOp::Lt, 5)
        });
        assert_eq!(derived_strings(&p), vec!["a.X < 5"]);
    }

    #[test]
    fn strictness_accumulates_along_edges() {
        // a.X < b.X ∧ b.X ≤ 5 ⟹ a.X < 5 (strict from the edge).
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Lt, "b", "X")
                .cond_const("b", "X", CmpOp::Le, 5)
        });
        assert_eq!(derived_strings(&p), vec!["a.X < 5"]);
    }

    #[test]
    fn transitive_chain_reaches_every_node() {
        // a < b ≤ c ∧ c < 7 ∧ a > 0: bounds propagate both ways.
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Lt, "b", "X")
                .cond_vars("b", "X", CmpOp::Le, "c", "X")
                .cond_const("c", "X", CmpOp::Lt, 7)
                .cond_const("a", "X", CmpOp::Gt, 0)
        });
        let d = derived_strings(&p);
        assert!(d.contains(&"a.X < 7".to_string()), "{d:?}");
        assert!(d.contains(&"b.X < 7".to_string()), "{d:?}");
        assert!(d.contains(&"b.X > 0".to_string()), "{d:?}");
        assert!(d.contains(&"c.X > 0".to_string()), "{d:?}");
    }

    #[test]
    fn constants_push_through_equalities_with_exclusions() {
        // a.X = b.X ∧ b.X ≥ 1 ∧ b.X ≠ 3 ⟹ a.X ≥ 1 ∧ a.X ≠ 3.
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Eq, "b", "X")
                .cond_const("b", "X", CmpOp::Ge, 1)
                .cond_const("b", "X", CmpOp::Ne, 3)
        });
        let d = derived_strings(&p);
        assert!(d.contains(&"a.X >= 1".to_string()), "{d:?}");
        assert!(d.contains(&"a.X != 3".to_string()), "{d:?}");
    }

    #[test]
    fn flipped_operators_normalize() {
        // b.X ≥ a.X is a ≤ b; with b.X < 2 the bound reaches a.
        let p = pat(|b| {
            b.cond_vars("b", "X", CmpOp::Ge, "a", "X")
                .cond_const("b", "X", CmpOp::Lt, 2)
        });
        assert_eq!(derived_strings(&p), vec!["a.X < 2"]);
    }

    #[test]
    fn interval_conflict_through_chain_is_unsat() {
        // a > 10 ∧ a ≤ b ∧ b < 5: a's domain becomes (10, 5) — empty.
        let p = pat(|b| {
            b.cond_const("a", "X", CmpOp::Gt, 10)
                .cond_vars("a", "X", CmpOp::Le, "b", "X")
                .cond_const("b", "X", CmpOp::Lt, 5)
        });
        assert!(propagate(&p).unsat.is_some());
    }

    #[test]
    fn strict_ordering_cycle_is_unsat() {
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Lt, "b", "X")
                .cond_vars("b", "X", CmpOp::Le, "a", "X")
        });
        let u = propagate(&p).unsat.unwrap();
        assert!(u.contains("ordering cycle"), "{u}");
        // Self-comparison `a.X < a.X` is the degenerate cycle.
        let p = pat(|b| b.cond_vars("a", "X", CmpOp::Lt, "a", "X"));
        assert!(propagate(&p).unsat.is_some());
        // Non-strict cycles are fine (they just force equality).
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Le, "b", "X")
                .cond_vars("b", "X", CmpOp::Le, "a", "X")
        });
        assert!(propagate(&p).unsat.is_none());
    }

    #[test]
    fn ne_between_forced_equal_nodes_is_unsat() {
        // a = b ∧ a ≠ b.
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Eq, "b", "X")
                .cond_vars("a", "X", CmpOp::Ne, "b", "X")
        });
        assert!(propagate(&p).unsat.is_some());
        // ≤ both ways + ≠ — equal through the order, not through `=`.
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Le, "b", "X")
                .cond_vars("b", "X", CmpOp::Le, "a", "X")
                .cond_vars("a", "X", CmpOp::Ne, "b", "X")
        });
        assert!(propagate(&p).unsat.is_some());
        // Self ≠ is trivially unsat.
        let p = pat(|b| b.cond_vars("a", "X", CmpOp::Ne, "a", "X"));
        assert!(propagate(&p).unsat.is_some());
        // Plain ≠ between unordered nodes is fine.
        let p = pat(|b| b.cond_vars("a", "X", CmpOp::Ne, "b", "X"));
        assert!(propagate(&p).unsat.is_none());
    }

    #[test]
    fn no_derivation_without_constants() {
        let p = pat(|b| b.cond_vars("a", "X", CmpOp::Lt, "b", "X"));
        let prop = propagate(&p);
        assert!(prop.unsat.is_none());
        assert!(prop.derived.is_empty());
    }

    #[test]
    fn explicitly_present_bounds_are_not_rederived() {
        // a ≤ b ∧ b < 5 ∧ a < 3: a already has the (stronger) bound.
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Le, "b", "X")
                .cond_const("b", "X", CmpOp::Lt, 5)
                .cond_const("a", "X", CmpOp::Lt, 3)
        });
        assert!(derived_strings(&p).is_empty());
    }

    #[test]
    fn idempotent_on_augmented_pattern() {
        // Adding the derived conditions and re-propagating derives
        // nothing new.
        let p = pat(|b| {
            b.cond_vars("a", "X", CmpOp::Le, "b", "X")
                .cond_const("b", "X", CmpOp::Lt, 5)
        });
        let prop = propagate(&p);
        let mut conds = p.conditions().to_vec();
        conds.extend(prop.derived.clone());
        let augmented = Pattern::from_parts(
            p.variables().to_vec(),
            p.sets().to_vec(),
            conds,
            p.negations().to_vec(),
            p.within(),
        );
        assert!(propagate(&augmented).derived.is_empty());
    }
}
