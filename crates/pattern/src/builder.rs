//! Fluent builder for [`Pattern`].

use std::collections::HashMap;
use std::sync::Arc;

use ses_event::{CmpOp, Duration, Value};

use crate::condition::{AttrRef, Rhs};
use crate::{Condition, Pattern, PatternError, Quantifier, VarId, Variable};

/// Builder for one event set pattern `Vi`; obtained through
/// [`PatternBuilder::set`].
#[derive(Debug, Default)]
pub struct SetBuilder {
    vars: Vec<(String, Quantifier)>,
}

impl SetBuilder {
    /// Adds a singleton variable `v`.
    pub fn var(&mut self, name: impl Into<String>) -> &mut Self {
        self.vars.push((name.into(), Quantifier::Singleton));
        self
    }

    /// Adds a group variable `v+` (Kleene plus).
    pub fn plus(&mut self, name: impl Into<String>) -> &mut Self {
        self.vars.push((name.into(), Quantifier::Plus));
        self
    }
}

/// Named (pre-resolution) condition as collected by the builder.
#[derive(Debug)]
struct RawCondition {
    lhs_var: String,
    lhs_attr: String,
    op: CmpOp,
    rhs: RawRhs,
}

#[derive(Debug)]
enum RawRhs {
    Const(Value),
    Attr { var: String, attr: String },
}

/// Named (pre-resolution) negation condition.
#[derive(Debug)]
struct RawNegCondition {
    neg: String,
    attr: String,
    op: CmpOp,
    rhs: RawRhs,
}

/// Fluent builder for [`Pattern`]; see the crate-level example.
#[derive(Debug, Default)]
pub struct PatternBuilder {
    sets: Vec<Vec<(String, Quantifier)>>,
    conditions: Vec<RawCondition>,
    /// `(name, after_set)` — declared between two `.set(…)` calls.
    negations: Vec<(String, usize)>,
    neg_conditions: Vec<RawNegCondition>,
    within: Option<Duration>,
}

impl PatternBuilder {
    pub(crate) fn new() -> PatternBuilder {
        PatternBuilder::default()
    }

    /// Appends an event set pattern, populated by the closure:
    ///
    /// ```
    /// # use ses_pattern::Pattern;
    /// # use ses_event::Duration;
    /// let p = Pattern::builder()
    ///     .set(|s| s.var("c").plus("p").var("d"))
    ///     .set(|s| s.var("b"))
    ///     .within(Duration::hours(264))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(p.num_sets(), 2);
    /// ```
    pub fn set(mut self, f: impl FnOnce(&mut SetBuilder) -> &mut SetBuilder) -> Self {
        let mut sb = SetBuilder::default();
        f(&mut sb);
        self.sets.push(sb.vars);
        self
    }

    /// Appends a constant condition `var.attr op value`.
    pub fn cond_const(
        mut self,
        var: impl Into<String>,
        attr: impl Into<String>,
        op: CmpOp,
        value: impl Into<Value>,
    ) -> Self {
        self.conditions.push(RawCondition {
            lhs_var: var.into(),
            lhs_attr: attr.into(),
            op,
            rhs: RawRhs::Const(value.into()),
        });
        self
    }

    /// Appends a variable condition `var.attr op other.other_attr`.
    pub fn cond_vars(
        mut self,
        var: impl Into<String>,
        attr: impl Into<String>,
        op: CmpOp,
        other: impl Into<String>,
        other_attr: impl Into<String>,
    ) -> Self {
        self.conditions.push(RawCondition {
            lhs_var: var.into(),
            lhs_attr: attr.into(),
            op,
            rhs: RawRhs::Attr {
                var: other.into(),
                attr: other_attr.into(),
            },
        });
        self
    }

    /// Declares a negated variable guarding the gap between the most
    /// recently declared set and the next one (extension beyond the
    /// paper; see [`crate::Negation`]). Must be called after at least one
    /// `.set(…)` and before the following one.
    ///
    /// ```
    /// # use ses_pattern::Pattern;
    /// # use ses_event::CmpOp;
    /// let p = Pattern::builder()
    ///     .set(|s| s.var("a"))
    ///     .negate("x")
    ///     .set(|s| s.var("b"))
    ///     .neg_cond_const("x", "L", CmpOp::Eq, "X")
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(p.negations().len(), 1);
    /// ```
    pub fn negate(mut self, name: impl Into<String>) -> Self {
        let after = self.sets.len().wrapping_sub(1);
        self.negations.push((name.into(), after));
        self
    }

    /// Appends a constant condition on a negated variable:
    /// `neg.attr op value`.
    pub fn neg_cond_const(
        mut self,
        neg: impl Into<String>,
        attr: impl Into<String>,
        op: CmpOp,
        value: impl Into<Value>,
    ) -> Self {
        self.neg_conditions.push(RawNegCondition {
            neg: neg.into(),
            attr: attr.into(),
            op,
            rhs: RawRhs::Const(value.into()),
        });
        self
    }

    /// Appends a condition relating a negated variable to a positive
    /// one: `neg.attr op var.var_attr`.
    pub fn neg_cond_vars(
        mut self,
        neg: impl Into<String>,
        attr: impl Into<String>,
        op: CmpOp,
        var: impl Into<String>,
        var_attr: impl Into<String>,
    ) -> Self {
        self.neg_conditions.push(RawNegCondition {
            neg: neg.into(),
            attr: attr.into(),
            op,
            rhs: RawRhs::Attr {
                var: var.into(),
                attr: var_attr.into(),
            },
        });
        self
    }

    /// Sets the maximal window `τ`.
    pub fn within(mut self, tau: Duration) -> Self {
        self.within = Some(tau);
        self
    }

    /// Validates and produces the pattern.
    ///
    /// Checks: at least one non-empty set, globally unique non-empty
    /// variable names, at most 64 variables, all condition variables
    /// declared, and a non-negative window (defaulting to
    /// [`Duration::MAX`], i.e. no window, when [`Self::within`] was not
    /// called).
    pub fn build(self) -> Result<Pattern, PatternError> {
        if self.sets.is_empty() {
            return Err(PatternError::NoSets);
        }
        let within = self.within.unwrap_or(Duration::MAX);
        if within.is_negative() {
            return Err(PatternError::NegativeWindow(within.as_ticks()));
        }

        let mut vars: Vec<Variable> = Vec::new();
        let mut sets: Vec<Vec<VarId>> = Vec::new();
        let mut by_name: HashMap<String, VarId> = HashMap::new();
        for (set_index, set) in self.sets.iter().enumerate() {
            if set.is_empty() {
                return Err(PatternError::EmptySet { set_index });
            }
            let mut ids = Vec::with_capacity(set.len());
            for (name, quant) in set {
                if name.is_empty() {
                    return Err(PatternError::EmptyVariableName);
                }
                let id = VarId(vars.len() as u16);
                if by_name.insert(name.clone(), id).is_some() {
                    return Err(PatternError::DuplicateVariable(name.clone()));
                }
                vars.push(Variable::new(Arc::from(name.as_str()), *quant, set_index));
                ids.push(id);
            }
            sets.push(ids);
        }
        if vars.len() > 64 {
            return Err(PatternError::TooManyVariables(vars.len()));
        }

        // Negations: unique names (also vs positive variables), declared
        // strictly between two sets.
        let mut negations: Vec<crate::Negation> = Vec::with_capacity(self.negations.len());
        for (name, after_set) in &self.negations {
            if name.is_empty() {
                return Err(PatternError::EmptyVariableName);
            }
            if by_name.contains_key(name) || negations.iter().any(|n| n.name() == name) {
                return Err(PatternError::DuplicateVariable(name.clone()));
            }
            if *after_set == usize::MAX {
                return Err(PatternError::NegationPosition {
                    name: name.clone(),
                    reason: "declared before any event set pattern".into(),
                });
            }
            if *after_set + 1 >= sets.len() {
                return Err(PatternError::NegationPosition {
                    name: name.clone(),
                    reason: "must be followed by another event set pattern".into(),
                });
            }
            negations.push(crate::Negation::new(Arc::from(name.as_str()), *after_set));
        }

        for rnc in self.neg_conditions {
            let neg = negations
                .iter_mut()
                .find(|n| n.name() == rnc.neg)
                .ok_or_else(|| PatternError::UnknownVariable(rnc.neg.clone()))?;
            let rhs = match rnc.rhs {
                RawRhs::Const(v) => Rhs::Const(v),
                RawRhs::Attr { var, attr } => {
                    let id = *by_name
                        .get(&var)
                        .ok_or_else(|| PatternError::UnknownVariable(var.clone()))?;
                    Rhs::Attr(AttrRef::new(id, attr))
                }
            };
            neg.push_condition(crate::negation::NegCondition {
                attr: Arc::from(rnc.attr.as_str()),
                op: rnc.op,
                rhs,
            });
        }

        let mut conditions = Vec::with_capacity(self.conditions.len());
        for rc in self.conditions {
            let lhs_var = *by_name
                .get(&rc.lhs_var)
                .ok_or_else(|| PatternError::UnknownVariable(rc.lhs_var.clone()))?;
            let rhs = match rc.rhs {
                RawRhs::Const(v) => Rhs::Const(v),
                RawRhs::Attr { var, attr } => {
                    let id = *by_name
                        .get(&var)
                        .ok_or_else(|| PatternError::UnknownVariable(var.clone()))?;
                    Rhs::Attr(AttrRef::new(id, attr))
                }
            };
            conditions.push(Condition {
                lhs: AttrRef::new(lhs_var, rc.lhs_attr),
                op: rc.op,
                rhs,
            });
        }

        Ok(Pattern::from_parts(
            vars, sets, conditions, negations, within,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_pattern() {
        assert!(matches!(
            Pattern::builder().build(),
            Err(PatternError::NoSets)
        ));
    }

    #[test]
    fn rejects_empty_set() {
        let err = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s)
            .build()
            .unwrap_err();
        assert!(matches!(err, PatternError::EmptySet { set_index: 1 }));
    }

    #[test]
    fn rejects_duplicate_variable_across_sets() {
        let err = Pattern::builder()
            .set(|s| s.var("a"))
            .set(|s| s.var("a"))
            .build()
            .unwrap_err();
        assert!(matches!(err, PatternError::DuplicateVariable(n) if n == "a"));
    }

    #[test]
    fn rejects_duplicate_variable_within_set() {
        let err = Pattern::builder()
            .set(|s| s.var("a").plus("a"))
            .build()
            .unwrap_err();
        assert!(matches!(err, PatternError::DuplicateVariable(_)));
    }

    #[test]
    fn rejects_unknown_condition_variable() {
        let err = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("zz", "L", CmpOp::Eq, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, PatternError::UnknownVariable(n) if n == "zz"));

        let err = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_vars("a", "L", CmpOp::Eq, "zz", "L")
            .build()
            .unwrap_err();
        assert!(matches!(err, PatternError::UnknownVariable(n) if n == "zz"));
    }

    #[test]
    fn rejects_negative_window() {
        let err = Pattern::builder()
            .set(|s| s.var("a"))
            .within(Duration::ticks(-1))
            .build()
            .unwrap_err();
        assert!(matches!(err, PatternError::NegativeWindow(-1)));
    }

    #[test]
    fn rejects_too_many_variables() {
        let mut b = Pattern::builder();
        b = b.set(|s| {
            // 65 variables in one set.
            s.var("v0");
            s
        });
        // Building sets via the closure: add the remaining 64 in a second set.
        b = b.set(|s| {
            for i in 1..=64 {
                s.var(format!("v{i}"));
            }
            s
        });
        assert!(matches!(b.build(), Err(PatternError::TooManyVariables(65))));
    }

    #[test]
    fn default_window_is_unbounded() {
        let p = Pattern::builder().set(|s| s.var("a")).build().unwrap();
        assert_eq!(p.within(), Duration::MAX);
    }

    #[test]
    fn var_ids_follow_declaration_order() {
        let p = Pattern::builder()
            .set(|s| s.var("c").plus("p").var("d"))
            .set(|s| s.var("b"))
            .build()
            .unwrap();
        assert_eq!(p.var_id("c"), Some(VarId(0)));
        assert_eq!(p.var_id("p"), Some(VarId(1)));
        assert_eq!(p.var_id("d"), Some(VarId(2)));
        assert_eq!(p.var_id("b"), Some(VarId(3)));
    }
}
