//! Equality-condition closure.
//!
//! Conditions like `c.ID = p.ID` and `c.ID = d.ID` imply `p.ID = d.ID`,
//! but the implied condition is *not* in `Θ` — and under the paper's
//! greedy skip-till-next-match execution that matters operationally: a
//! transition binding `d` from a state containing only `p` carries no
//! `ID` constraint, so the instance can absorb an unrelated event and
//! derail (see the `ses-workload::rfid` documentation).
//!
//! [`equality_closure`] computes the transitive closure of the `=`
//! conditions over `(variable, attribute)` nodes with a union–find and
//! returns a pattern whose `Θ` contains one equality per connected pair.
//! The closure is semantically conservative — every added condition is
//! implied by the originals, so conditions 1–3 of Definition 2 accept
//! exactly the same substitutions — but it makes every intermediate
//! transition fully constrained.

use std::sync::Arc;

use ses_event::CmpOp;

use crate::condition::{AttrRef, Rhs};
use crate::{Condition, Pattern, VarId};

/// An interner for the `(variable, attribute)` nodes the closure and
/// propagation passes reason over.
#[derive(Debug, Default)]
pub(crate) struct NodeSet {
    nodes: Vec<(VarId, Arc<str>)>,
}

impl NodeSet {
    pub(crate) fn new() -> NodeSet {
        NodeSet::default()
    }

    /// Interns `(var, attr)`, returning its dense id.
    pub(crate) fn intern(&mut self, var: VarId, attr: &Arc<str>) -> usize {
        if let Some(i) = self
            .nodes
            .iter()
            .position(|(v, a)| *v == var && a.as_ref() == attr.as_ref())
        {
            i
        } else {
            self.nodes.push((var, attr.clone()));
            self.nodes.len() - 1
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn get(&self, i: usize) -> &(VarId, Arc<str>) {
        &self.nodes[i]
    }
}

/// A plain union–find with path compression, over dense node ids.
#[derive(Debug)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    pub(crate) fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Returns an equivalent pattern with the equality conditions closed
/// under transitivity (see the module docs). Non-equality conditions,
/// negations, sets, and the window are untouched. Idempotent.
pub fn equality_closure(pattern: &Pattern) -> Pattern {
    // Collect the distinct (var, attr) nodes participating in `=`
    // var-var conditions.
    let mut nodes = NodeSet::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for c in pattern.conditions() {
        if c.op != CmpOp::Eq {
            continue;
        }
        if let Rhs::Attr(r) = &c.rhs {
            let a = nodes.intern(c.lhs.var, &c.lhs.attr);
            let b = nodes.intern(r.var, &r.attr);
            edges.push((a, b));
        }
    }
    if edges.is_empty() {
        return pattern.clone();
    }

    let mut uf = UnionFind::new(nodes.len());
    for (a, b) in edges {
        uf.union(a, b);
    }

    // Emit one equality per pair within each class, skipping pairs the
    // pattern already relates (in either orientation).
    let already_related = |a: &(VarId, Arc<str>), b: &(VarId, Arc<str>)| {
        pattern.conditions().iter().any(|c| {
            if c.op != CmpOp::Eq {
                return false;
            }
            let Rhs::Attr(r) = &c.rhs else { return false };
            let lhs = (c.lhs.var, c.lhs.attr.as_ref());
            let rhs = (r.var, r.attr.as_ref());
            (lhs == (a.0, a.1.as_ref()) && rhs == (b.0, b.1.as_ref()))
                || (lhs == (b.0, b.1.as_ref()) && rhs == (a.0, a.1.as_ref()))
        })
    };

    let mut conditions: Vec<Condition> = pattern.conditions().to_vec();
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            if uf.find(i) != uf.find(j) || already_related(nodes.get(i), nodes.get(j)) {
                continue;
            }
            let (iv, ia) = nodes.get(i).clone();
            let (jv, ja) = nodes.get(j).clone();
            conditions.push(Condition {
                lhs: AttrRef { var: iv, attr: ia },
                op: CmpOp::Eq,
                rhs: Rhs::Attr(AttrRef { var: jv, attr: ja }),
            });
        }
    }

    Pattern::from_parts(
        pattern.variables().to_vec(),
        pattern.sets().to_vec(),
        conditions,
        pattern.negations().to_vec(),
        pattern.within(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::Duration;

    fn star_pattern() -> Pattern {
        // c.ID = p.ID, c.ID = d.ID — p–d unrelated.
        Pattern::builder()
            .set(|s| s.var("c").var("p").var("d"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
            .cond_vars("c", "ID", CmpOp::Eq, "d", "ID")
            .within(Duration::ticks(10))
            .build()
            .unwrap()
    }

    fn equality_count(p: &Pattern) -> usize {
        p.conditions()
            .iter()
            .filter(|c| c.op == CmpOp::Eq && !c.is_constant())
            .count()
    }

    #[test]
    fn star_becomes_clique() {
        let p = star_pattern();
        assert_eq!(equality_count(&p), 2);
        let closed = equality_closure(&p);
        // c–p, c–d, + derived p–d.
        assert_eq!(equality_count(&closed), 3);
        // Sets, window, constants untouched.
        assert_eq!(closed.num_sets(), p.num_sets());
        assert_eq!(closed.within(), p.within());
        assert_eq!(
            closed
                .conditions()
                .iter()
                .filter(|c| c.is_constant())
                .count(),
            1
        );
    }

    #[test]
    fn closure_is_idempotent() {
        let once = equality_closure(&star_pattern());
        let twice = equality_closure(&once);
        assert_eq!(equality_count(&once), equality_count(&twice));
    }

    #[test]
    fn distinct_attributes_stay_separate() {
        // c.ID = p.ID and c.GROUP = d.GROUP are different attribute
        // classes; no p–d condition is implied.
        let p = Pattern::builder()
            .set(|s| s.var("c").var("p").var("d"))
            .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
            .cond_vars("c", "GROUP", CmpOp::Eq, "d", "GROUP")
            .build()
            .unwrap();
        let closed = equality_closure(&p);
        assert_eq!(equality_count(&closed), 2);
    }

    #[test]
    fn cross_attribute_equalities_chain() {
        // a.X = b.Y and b.Y = c.Z imply a.X = c.Z (the chain runs through
        // the shared (b, Y) node).
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b").var("c"))
            .cond_vars("a", "X", CmpOp::Eq, "b", "Y")
            .cond_vars("b", "Y", CmpOp::Eq, "c", "Z")
            .build()
            .unwrap();
        let closed = equality_closure(&p);
        assert_eq!(equality_count(&closed), 3);
    }

    #[test]
    fn non_equalities_are_ignored() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b").var("c"))
            .cond_vars("a", "X", CmpOp::Lt, "b", "X")
            .cond_vars("b", "X", CmpOp::Lt, "c", "X")
            .build()
            .unwrap();
        let closed = equality_closure(&p);
        // `<` is not closed (it would change nothing operationally and
        // a < b < c ⇒ a < c is *not* an equality edge).
        assert_eq!(closed.conditions().len(), 2);
    }

    #[test]
    fn no_var_conditions_is_a_clone() {
        let p = Pattern::builder()
            .set(|s| s.var("a"))
            .cond_const("a", "L", CmpOp::Eq, "A")
            .build()
            .unwrap();
        let closed = equality_closure(&p);
        assert_eq!(closed.conditions().len(), 1);
        assert_eq!(closed.to_string(), p.to_string());
    }

    #[test]
    fn negations_survive_closure() {
        let p = Pattern::builder()
            .set(|s| s.var("a").var("b"))
            .negate("x")
            .set(|s| s.var("z"))
            .cond_vars("a", "ID", CmpOp::Eq, "z", "ID")
            .cond_vars("b", "ID", CmpOp::Eq, "z", "ID")
            .neg_cond_const("x", "L", CmpOp::Eq, "X")
            .build()
            .unwrap();
        let closed = equality_closure(&p);
        assert_eq!(closed.negations().len(), 1);
        assert_eq!(equality_count(&closed), 3); // a–z, b–z, derived a–b
    }
}
